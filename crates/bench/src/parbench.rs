//! Parallel-engine benchmark suite: per-class sequential vs parallel
//! timings and the machine-readable `BENCH_<date>.json` report.
//!
//! The suite runs the five parallel-eligible classes (SSSP, CC, Reach,
//! Sim, LCC) on their dataset stand-ins and measures four numbers each:
//! sequential batch, parallel batch (`batch_par`: CSR snapshot + bucket
//! queue + sharded worklists), sequential incremental, and parallel
//! incremental (the same state with `set_threads` routing `resume`
//! through [`incgraph_core::ParEngine`]). With `threads = 1` the parallel
//! engine runs inline — no spawn, no barriers — so the speedup isolates
//! the algorithmic wins (O(1) bucket queue instead of a binary heap,
//! flat CSR scans instead of `Vec<Vec<_>>` rows); higher thread counts
//! add sharding on top. Shared by `benches/bench_par.rs` and the
//! `incgraph bench` subcommand.

use crate::report::measure_stats;
use incgraph_algos::{CcState, LccState, ReachState, SimState, SsspState};
use incgraph_workloads::{random_batch_pct, random_pattern, sample_sources, Dataset};
use std::fmt::Write as _;

/// Maximum edge weight for the weighted (SSSP) workload.
const MAX_WEIGHT: u32 = 100;

/// |ΔG| as a percentage of |G| for the incremental measurements.
const DELTA_PCT: f64 = 1.0;

/// Timings for one query class, in nanoseconds per operation.
#[derive(Clone, Debug)]
pub struct ClassResult {
    /// Query class tag (`sssp`, `cc`, `reach`, `sim`, `lcc`).
    pub class: &'static str,
    /// Dataset stand-in tag (LJ, DP, ...).
    pub dataset: &'static str,
    /// Node count of the benchmarked graph.
    pub nodes: usize,
    /// Edge count of the benchmarked graph.
    pub edges: usize,
    /// Sequential engine, batch fixpoint from scratch.
    pub seq_batch_ns: f64,
    /// Parallel engine, batch fixpoint from scratch.
    pub par_batch_ns: f64,
    /// Sequential engine, incremental resume over a 1% ΔG.
    pub seq_inc_ns: f64,
    /// Parallel engine, incremental resume over the same ΔG.
    pub par_inc_ns: f64,
    /// Fastest sequential batch sample (noise floor, see
    /// [`measure_stats`]).
    pub seq_batch_min_ns: f64,
    /// Fastest sequential incremental sample — the bench-regression
    /// gate metric: mins shed scheduler noise that inflates the means
    /// of µs-scale measurements.
    pub seq_inc_min_ns: f64,
    /// Fastest parallel batch sample.
    pub par_batch_min_ns: f64,
    /// Fastest parallel incremental sample.
    pub par_inc_min_ns: f64,
}

impl ClassResult {
    /// Sequential over parallel batch time (>1 means parallel is
    /// faster). Computed from the fastest samples: scheduler hiccups
    /// only ever add time, so a ratio of mins estimates the true engine
    /// ratio while a ratio of means compounds the noise of both sides.
    pub fn batch_speedup(&self) -> f64 {
        self.seq_batch_min_ns / self.par_batch_min_ns
    }

    /// Sequential over parallel incremental time (ratio of mins, as for
    /// [`batch_speedup`](Self::batch_speedup)).
    pub fn inc_speedup(&self) -> f64 {
        self.seq_inc_min_ns / self.par_inc_min_ns
    }
}

/// Runs the five-class suite at the given thread count. `scale`
/// multiplies the stand-in sizes (1.0 = the DESIGN.md base; Sim and LCC
/// use a reduced slice of it to keep their heavier kernels in budget),
/// `reps` is the repetition count per measurement (setup excluded).
pub fn run_suite(threads: usize, scale: f64, reps: usize) -> Vec<ClassResult> {
    let secs = |s: f64| s * 1e9;
    let mut out = Vec::new();

    // SSSP on the LiveJournal stand-in (directed, weighted).
    {
        let g0 = Dataset::LiveJournal.graph(true, scale);
        let delta = random_batch_pct(&g0, DELTA_PCT, MAX_WEIGHT, 42);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);
        let src = sample_sources(&g0, 1, 7)[0];
        let (seq_batch, seq_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(SsspState::batch(&g1, src));
            },
        );
        let (seq_inc, seq_inc_min) = measure_stats(
            reps,
            || SsspState::batch(&g0, src).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        let (par_batch, par_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(SsspState::batch_par(&g1, src, threads));
            },
        );
        let (par_inc, par_inc_min) = measure_stats(
            reps,
            || SsspState::batch_par(&g0, src, threads).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        out.push(ClassResult {
            class: "sssp",
            dataset: Dataset::LiveJournal.tag(),
            nodes: g1.node_count(),
            edges: g1.edge_count(),
            seq_batch_ns: secs(seq_batch),
            par_batch_ns: secs(par_batch),
            seq_inc_ns: secs(seq_inc),
            par_inc_ns: secs(par_inc),
            seq_batch_min_ns: secs(seq_batch_min),
            seq_inc_min_ns: secs(seq_inc_min),
            par_batch_min_ns: secs(par_batch_min),
            par_inc_min_ns: secs(par_inc_min),
        });
    }

    // CC on the LiveJournal stand-in (undirected).
    {
        let g0 = Dataset::LiveJournal.graph(false, scale);
        let delta = random_batch_pct(&g0, DELTA_PCT, 1, 43);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);
        let (seq_batch, seq_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(CcState::batch(&g1));
            },
        );
        let (seq_inc, seq_inc_min) = measure_stats(
            reps,
            || CcState::batch(&g0).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        let (par_batch, par_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(CcState::batch_par(&g1, threads));
            },
        );
        let (par_inc, par_inc_min) = measure_stats(
            reps,
            || CcState::batch_par(&g0, threads).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        out.push(ClassResult {
            class: "cc",
            dataset: Dataset::LiveJournal.tag(),
            nodes: g1.node_count(),
            edges: g1.edge_count(),
            seq_batch_ns: secs(seq_batch),
            par_batch_ns: secs(par_batch),
            seq_inc_ns: secs(seq_inc),
            par_inc_ns: secs(par_inc),
            seq_batch_min_ns: secs(seq_batch_min),
            seq_inc_min_ns: secs(seq_inc_min),
            par_batch_min_ns: secs(par_batch_min),
            par_inc_min_ns: secs(par_inc_min),
        });
    }

    // Reach on the DBPedia stand-in (directed).
    {
        let g0 = Dataset::DbPedia.graph(true, scale);
        let delta = random_batch_pct(&g0, DELTA_PCT, 1, 44);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);
        let src = sample_sources(&g0, 1, 9)[0];
        let (seq_batch, seq_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(ReachState::batch(&g1, src));
            },
        );
        let (seq_inc, seq_inc_min) = measure_stats(
            reps,
            || ReachState::batch(&g0, src).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        let (par_batch, par_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(ReachState::batch_par(&g1, src, threads));
            },
        );
        let (par_inc, par_inc_min) = measure_stats(
            reps,
            || ReachState::batch_par(&g0, src, threads).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        out.push(ClassResult {
            class: "reach",
            dataset: Dataset::DbPedia.tag(),
            nodes: g1.node_count(),
            edges: g1.edge_count(),
            seq_batch_ns: secs(seq_batch),
            par_batch_ns: secs(par_batch),
            seq_inc_ns: secs(seq_inc),
            par_inc_ns: secs(par_inc),
            seq_batch_min_ns: secs(seq_batch_min),
            seq_inc_min_ns: secs(seq_inc_min),
            par_batch_min_ns: secs(par_batch_min),
            par_inc_min_ns: secs(par_inc_min),
        });
    }

    // Sim on the DBPedia stand-in (directed, labeled; half scale — the
    // per-variable work is quadratic in pattern fan-in).
    {
        let g0 = Dataset::DbPedia.graph(true, scale * 0.5);
        let q = random_pattern(&g0, 4, 6, 11);
        let delta = random_batch_pct(&g0, DELTA_PCT, 1, 45);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);
        let (seq_batch, seq_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(SimState::batch(&g1, q.clone()));
            },
        );
        let (seq_inc, seq_inc_min) = measure_stats(
            reps,
            || SimState::batch(&g0, q.clone()).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        let (par_batch, par_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(SimState::batch_par(&g1, q.clone(), threads));
            },
        );
        let (par_inc, par_inc_min) = measure_stats(
            reps,
            || SimState::batch_par(&g0, q.clone(), threads).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        out.push(ClassResult {
            class: "sim",
            dataset: Dataset::DbPedia.tag(),
            nodes: g1.node_count(),
            edges: g1.edge_count(),
            seq_batch_ns: secs(seq_batch),
            par_batch_ns: secs(par_batch),
            seq_inc_ns: secs(seq_inc),
            par_inc_ns: secs(par_inc),
            seq_batch_min_ns: secs(seq_batch_min),
            seq_inc_min_ns: secs(seq_inc_min),
            par_batch_min_ns: secs(par_batch_min),
            par_inc_min_ns: secs(par_inc_min),
        });
    }

    // LCC on the LiveJournal stand-in (undirected; quarter scale — the
    // triangle kernel is O(Σ deg²)).
    {
        let g0 = Dataset::LiveJournal.graph(false, scale * 0.25);
        let delta = random_batch_pct(&g0, DELTA_PCT, 1, 46);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);
        let (seq_batch, seq_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(LccState::batch(&g1));
            },
        );
        let (seq_inc, seq_inc_min) = measure_stats(
            reps,
            || LccState::batch(&g0).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        let (par_batch, par_batch_min) = measure_stats(
            reps,
            || (),
            |_| {
                std::hint::black_box(LccState::batch_par(&g1, threads));
            },
        );
        let (par_inc, par_inc_min) = measure_stats(
            reps,
            || LccState::batch_par(&g0, threads).0,
            |s| {
                s.update(&g1, &applied);
            },
        );
        out.push(ClassResult {
            class: "lcc",
            dataset: Dataset::LiveJournal.tag(),
            nodes: g1.node_count(),
            edges: g1.edge_count(),
            seq_batch_ns: secs(seq_batch),
            par_batch_ns: secs(par_batch),
            seq_inc_ns: secs(seq_inc),
            par_inc_ns: secs(par_inc),
            seq_batch_min_ns: secs(seq_batch_min),
            seq_inc_min_ns: secs(seq_inc_min),
            par_batch_min_ns: secs(par_batch_min),
            par_inc_min_ns: secs(par_inc_min),
        });
    }

    out
}

/// Renders the suite as an aligned text table (one row per class).
pub fn render_table(results: &[ClassResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<4} {:>7} {:>8} {:>13} {:>13} {:>6} {:>13} {:>13} {:>6}",
        "class", "data", "|V|", "|E|", "seq_batch", "par_batch", "x", "seq_inc", "par_inc", "x"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<6} {:<4} {:>7} {:>8} {:>13} {:>13} {:>5.2}x {:>13} {:>13} {:>5.2}x",
            r.class,
            r.dataset,
            r.nodes,
            r.edges,
            fmt_ns(r.seq_batch_ns),
            fmt_ns(r.par_batch_ns),
            r.batch_speedup(),
            fmt_ns(r.seq_inc_ns),
            fmt_ns(r.par_inc_ns),
            r.inc_speedup(),
        );
    }
    out
}

/// Human-readable nanoseconds (`1.23ms`, `456µs`, ...).
pub(crate) fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Serializes the suite as the `BENCH_<date>.json` document.
pub fn to_json(date: &str, threads: usize, reps: usize, results: &[ClassResult]) -> String {
    let num = |x: f64| {
        if x.is_finite() {
            format!("{x:.1}")
        } else {
            "null".to_string()
        }
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"date\": \"{date}\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"samples\": {reps},");
    let _ = writeln!(json, "  \"delta_pct\": {DELTA_PCT},");
    json.push_str("  \"classes\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{ \"class\": \"{}\", \"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"seq_batch_ns\": {}, \"par_batch_ns\": {}, \"batch_speedup\": {:.3}, \
             \"seq_inc_ns\": {}, \"par_inc_ns\": {}, \"inc_speedup\": {:.3}, \
             \"seq_batch_min_ns\": {}, \"seq_inc_min_ns\": {}, \
             \"par_batch_min_ns\": {}, \"par_inc_min_ns\": {} }}",
            r.class,
            r.dataset,
            r.nodes,
            r.edges,
            num(r.seq_batch_ns),
            num(r.par_batch_ns),
            r.batch_speedup(),
            num(r.seq_inc_ns),
            num(r.par_inc_ns),
            r.inc_speedup(),
            num(r.seq_batch_min_ns),
            num(r.seq_inc_min_ns),
            num(r.par_batch_min_ns),
            num(r.par_inc_min_ns),
        );
    }
    json.push_str("\n  ]\n}\n");
    json
}

/// Serializes a multi-thread-count sweep as one JSON document with a
/// `"sweep"` array holding one `{ threads, classes }` entry per count.
/// Single-count runs keep the flat [`to_json`] shape for continuity
/// with the historical `BENCH_<date>.json` files.
pub fn to_json_sweep(date: &str, reps: usize, sweep: &[(usize, Vec<ClassResult>)]) -> String {
    if let [(threads, results)] = sweep {
        return to_json(date, *threads, reps, results);
    }
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"date\": \"{date}\",");
    let _ = writeln!(json, "  \"samples\": {reps},");
    let _ = writeln!(json, "  \"delta_pct\": {DELTA_PCT},");
    json.push_str("  \"sweep\": [");
    for (i, (threads, results)) in sweep.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        // Reuse the flat per-count document, reindented as an element.
        let inner = to_json(date, *threads, reps, results);
        json.push('\n');
        for (j, line) in inner.trim_end().lines().enumerate() {
            if j > 0 {
                json.push('\n');
            }
            json.push_str("    ");
            json.push_str(line);
        }
    }
    json.push_str("\n  ]\n}\n");
    json
}

/// One baseline row the regression gate compares against:
/// `(class, seq_inc_min_ns, seq_batch_min_ns)`.
type BaselineRow = (String, f64, f64);

/// Extracts the gate rows from a BENCH json document (flat or sweep
/// form). Handwritten scan — the files are machine written one
/// class-object per line, so no JSON dependency is needed. A class
/// appearing under several thread counts keeps its *first* occurrence
/// (the sweep writes ascending counts, so that is the single-thread
/// row — the one the regression gate tracks). Pre-min documents fall
/// back to the mean fields.
pub fn parse_baseline(json: &str) -> Vec<BaselineRow> {
    let mut out: Vec<BaselineRow> = Vec::new();
    for line in json.lines() {
        let Some(cls) = field_str(line, "\"class\": \"") else {
            continue;
        };
        let inc =
            field_num(line, "\"seq_inc_min_ns\": ").or_else(|| field_num(line, "\"seq_inc_ns\": "));
        let batch = field_num(line, "\"seq_batch_min_ns\": ")
            .or_else(|| field_num(line, "\"seq_batch_ns\": "));
        let (Some(inc), Some(batch)) = (inc, batch) else {
            continue;
        };
        if !out.iter().any(|(c, _, _)| c == cls) {
            out.push((cls.to_string(), inc, batch));
        }
    }
    out
}

pub(crate) fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(['"', ','])
        .unwrap_or_else(|| rest.trim_end().len());
    Some(&rest[..end])
}

pub(crate) fn field_num(line: &str, key: &str) -> Option<f64> {
    field_str(line, key)?
        .trim_end_matches([' ', '}'])
        .parse()
        .ok()
}

/// Compares fresh single-thread results against a committed baseline
/// document and returns one message per class whose incremental path
/// regressed beyond `threshold` (0.25 = 25% slower). Classes absent
/// from the baseline are ignored (new classes cannot fail the gate).
///
/// The compared metric is the *ratio* of the fastest incremental
/// sample to the fastest batch sample, not raw nanoseconds: the batch
/// fixpoint exercises the same kernels on the same machine, so
/// dividing by it cancels host speed and lets one committed baseline
/// gate runs on arbitrary CI hardware. Mins rather than means for
/// both, because scheduler noise only ever adds time and a single
/// inflated sample would otherwise dominate a µs-scale mean.
pub fn regressions(baseline_json: &str, results: &[ClassResult], threshold: f64) -> Vec<String> {
    let baseline = parse_baseline(baseline_json);
    let mut out = Vec::new();
    for r in results {
        let Some((_, base_inc, base_batch)) = baseline.iter().find(|(c, _, _)| c == r.class) else {
            continue;
        };
        if *base_inc <= 0.0 || *base_batch <= 0.0 || r.seq_batch_min_ns <= 0.0 {
            continue;
        }
        let base_ratio = base_inc / base_batch;
        let ratio = r.seq_inc_min_ns / r.seq_batch_min_ns;
        if ratio > base_ratio * (1.0 + threshold) {
            out.push(format!(
                "{}: seq_inc/seq_batch {:.5} (inc {} / batch {}) vs baseline {:.5} \
                 (+{:.0}%, limit +{:.0}%)",
                r.class,
                ratio,
                fmt_ns(r.seq_inc_min_ns),
                fmt_ns(r.seq_batch_min_ns),
                base_ratio,
                (ratio / base_ratio - 1.0) * 100.0,
                threshold * 100.0,
            ));
        }
    }
    out
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no external
/// date crates offline; civil-from-days per Howard Hinnant's algorithm).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days since 1970-01-01 to a (year, month, day) civil date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (yoe + era * 400 + i64::from(m <= 2), m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates_round_trip_known_points() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(20_671), (2026, 8, 6));
    }

    #[test]
    fn json_report_is_well_formed() {
        let r = ClassResult {
            class: "sssp",
            dataset: "LJ",
            nodes: 100,
            edges: 400,
            seq_batch_ns: 2000.0,
            par_batch_ns: 1000.0,
            seq_inc_ns: 300.0,
            par_inc_ns: 200.0,
            seq_batch_min_ns: 1900.0,
            seq_inc_min_ns: 300.0,
            par_batch_min_ns: 950.0,
            par_inc_min_ns: 200.0,
        };
        let json = to_json("2026-08-06", 4, 5, std::slice::from_ref(&r));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"batch_speedup\": 2.000"));
        assert!(json.contains("\"inc_speedup\": 1.500"));
        assert!((r.batch_speedup() - 2.0).abs() < 1e-9);
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
    }

    fn sample_result(class: &'static str, seq_inc_ns: f64) -> ClassResult {
        ClassResult {
            class,
            dataset: "LJ",
            nodes: 100,
            edges: 400,
            seq_batch_ns: 2000.0,
            par_batch_ns: 1000.0,
            seq_inc_ns,
            par_inc_ns: seq_inc_ns / 2.0,
            seq_batch_min_ns: 2000.0,
            seq_inc_min_ns: seq_inc_ns,
            par_batch_min_ns: 1000.0,
            par_inc_min_ns: seq_inc_ns / 2.0,
        }
    }

    #[test]
    fn sweep_json_has_one_entry_per_thread_count_and_round_trips() {
        let sweep = vec![
            (1, vec![sample_result("sssp", 300.0)]),
            (2, vec![sample_result("sssp", 200.0)]),
            (4, vec![sample_result("sssp", 150.0)]),
        ];
        let json = to_json_sweep("2026-08-08", 5, &sweep);
        assert_eq!(json.matches("\"threads\":").count(), 3, "{json}");
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
        // First occurrence wins: the single-thread row is the gate's.
        assert_eq!(
            parse_baseline(&json),
            vec![("sssp".to_string(), 300.0, 2000.0)]
        );
        // A single-count sweep keeps the historical flat shape.
        let flat = to_json_sweep("2026-08-08", 5, &sweep[..1]);
        assert!(flat.contains("\"classes\": ["), "{flat}");
        assert!(!flat.contains("\"sweep\""), "{flat}");
    }

    #[test]
    fn regression_gate_trips_only_past_threshold() {
        let baseline = to_json(
            "2026-08-08",
            1,
            5,
            &[sample_result("sssp", 1000.0), sample_result("cc", 1000.0)],
        );
        let fresh = [
            sample_result("sssp", 1200.0), // +20%: inside the 25% budget
            sample_result("cc", 1300.0),   // +30%: regression
            sample_result("lcc", 9999.0),  // not in baseline: ignored
        ];
        let bad = regressions(&baseline, &fresh, 0.25);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].starts_with("cc:"), "{bad:?}");
        // Pre-min baseline documents gate on the mean fields instead.
        let legacy: String = baseline
            .lines()
            .map(|l| {
                let cut = l.find(", \"seq_batch_min_ns\"").unwrap_or(l.len());
                if cut < l.len() {
                    format!(
                        "{} }}{}\n",
                        &l[..cut],
                        if l.ends_with(',') { "," } else { "" }
                    )
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        assert!(!legacy.contains("seq_inc_min_ns"), "{legacy}");
        let bad = regressions(&legacy, &fresh, 0.25);
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn suite_smoke_runs_tiny() {
        let results = run_suite(2, 0.02, 1);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.seq_batch_ns > 0.0 && r.par_batch_ns > 0.0, "{r:?}");
        }
    }
}
