//! Self-contained microbenchmark harness.
//!
//! The workspace builds on machines without crates.io access, so the
//! `benches/` targets cannot use Criterion. This module provides the
//! narrow slice they need: named groups, per-sample timing with either a
//! plain closure or a fresh-state-per-sample (`bench_batched`) shape, and
//! a median/min/mean report on stderr (progress and human-readable rows
//! never pollute stdout, which is reserved for machine-parseable
//! results). Sample count defaults to 10 and is overridable via
//! `INCGRAPH_BENCH_SAMPLES`.
//!
//! This is a smoke-level harness (no warm-up modeling, no outlier
//! rejection); for paper-grade numbers, raise the sample count and pin
//! the CPU frequency governor.

use std::time::{Duration, Instant};

/// A named group of benchmarks, printed as `group/name` rows.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// New group with the sample count from `INCGRAPH_BENCH_SAMPLES`
    /// (default 10).
    pub fn new(name: &str) -> Self {
        let samples = std::env::var("INCGRAPH_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        eprintln!("== {name} ({samples} samples) ==");
        Group {
            name: name.to_string(),
            samples,
        }
    }

    /// Times `f` over the group's sample count. The closure's return
    /// value is passed through `black_box` so the work is not elided.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let mut times = Vec::with_capacity(self.samples);
        // One untimed warm-up run to populate caches/allocator state.
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let t = Instant::now();
            let out = f();
            times.push(t.elapsed());
            std::hint::black_box(out);
        }
        self.report(name, &mut times);
    }

    /// Times `run` on a fresh product of `setup` per sample, excluding
    /// setup time — the replacement for Criterion's `iter_batched`.
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S) -> R,
    ) {
        let mut times = Vec::with_capacity(self.samples);
        std::hint::black_box(run(setup()));
        for _ in 0..self.samples {
            let s = setup();
            let t = Instant::now();
            let out = run(s);
            times.push(t.elapsed());
            std::hint::black_box(out);
        }
        self.report(name, &mut times);
    }

    fn report(&self, name: &str, times: &mut [Duration]) {
        times.sort_unstable();
        let median = times[times.len() / 2];
        let min = times[0];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        eprintln!(
            "{}/{name}: median {median:?}  min {min:?}  mean {mean:?}",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closures() {
        let mut g = Group::new("unit-test");
        let mut calls = 0u32;
        g.bench("plain", || {
            calls += 1;
            calls
        });
        assert!(calls >= 10, "warm-up + samples ran: {calls}");

        let mut setups = 0u32;
        let mut runs = 0u32;
        g.bench_batched(
            "batched",
            || {
                setups += 1;
            },
            |()| {
                runs += 1;
            },
        );
        assert_eq!(setups, runs, "one setup per run");
    }
}
