//! `incgraph stream`: sustained-stream SLO harness over a live durable
//! store with standing queries.
//!
//! Where the microbenches measure one-shot per-update cost, this harness
//! measures the *steady-state regime* the paper's boundedness results are
//! about: timestamped ΔGs arriving continuously at a target rate against
//! a WAL-durable store with standing queries over all seven classes. The
//! moving parts:
//!
//! * **Workload** — the Wiki-DE temporal stand-in
//!   ([`Dataset::temporal`]) on an *undirected* base (so the LCC/BC
//!   standing queries participate), replayed op by op on its
//!   generator-assigned admission ticks rescaled to a target mean
//!   ops/sec ([`rate_schedule`]).
//! * **Scheduler** — [`Scheduler`]: flush on size or deadline, drain at
//!   end of history, explicit backpressure ([`Scheduler::shift_tail`])
//!   when the consumer lags the schedule.
//! * **Store** — a [`DurableSession`] owning the standing states
//!   ([`standing_states`]); the WAL fsync is the ack point, and
//!   [`DurableOptions::micro_batch`] coalesces each flush's effective
//!   ops before propagation.
//! * **Latency** — each standing state is wrapped in a [`LatencyProbe`]
//!   recording per-class admission→completion nanoseconds into the obs
//!   log₂ histograms; p50/p99/p999 are read back from those histograms.
//! * **Oracles** — the run is checked, not just timed: the WAL is
//!   audited for exactly-once application of every acked flush
//!   ([`audit_wal`]) after any recovery *and* at end of run, and the
//!   final [`store_digest`] is a pure function of `(seed, schedule)` in
//!   virtual-time mode (pinned by `tests/stream_determinism.rs`).
//! * **RTO** — an optional injected kill ([`CrashPoint`]) mid-stream;
//!   recovery time (recover + re-apply of the in-flight flush when its
//!   fsync never landed) is measured and reported.
//!
//! Reports serialize to `results/STREAM_<date>.json` ([`to_json`]) with
//! a `--check-against` regression gate ([`stream_regressions`]) in the
//! spirit of the parbench gate: tail latency is compared as a *ratio*
//! to an in-run batch-recompute calibration, so one committed baseline
//! gates arbitrary CI hosts. docs/STREAMING.md specifies the SLO
//! definitions, the RTO methodology, and the JSON schema.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use incgraph_algos::IncrementalState;
use incgraph_core::audit::{AuditReport, FixpointAudit};
use incgraph_core::coalesce_batches;
use incgraph_core::engine::RunStats;
use incgraph_core::metrics::BoundednessReport;
use incgraph_durable::{recover, CrashPoint, DurableError, DurableOptions, DurableSession};
use incgraph_graph::{AppliedBatch, DynamicGraph, Update, UpdateBatch};
use incgraph_obs::Registry;
use incgraph_oracle::walcheck::{audit_wal, batch_fingerprint, AckedBatch, WalAuditFailure};
use incgraph_service::standing_states;
use incgraph_workloads::Dataset;

use crate::parbench::{field_num, field_str, fmt_ns, today_utc};
use crate::sched::{rate_schedule, FlushPolicy, Scheduler, Step};

/// Histogram name the latency probes record under (per-class scope).
pub const LATENCY_HIST: &str = "stream.latency_ns";

/// Injected kill: arm `point` on the first flush reaching `at_frac` of
/// the op stream, then recover and resume when it fires.
#[derive(Clone, Copy, Debug)]
pub struct StreamCrash {
    /// Where in the durability pipeline the kill fires.
    pub point: CrashPoint,
    /// Fraction of total ops replayed before arming (clamped so the arm
    /// always happens; checkpoint-path points still need a checkpoint to
    /// fire after arming).
    pub at_frac: f64,
}

/// Throughput-ceiling discovery: successive short real-time stages at
/// geometrically increasing rates until the deadline-miss rate exceeds
/// the threshold.
#[derive(Clone, Copy, Debug)]
pub struct RampConfig {
    /// Rate multiplier between stages.
    pub factor: f64,
    /// Maximum stages to attempt.
    pub stages: usize,
    /// A stage whose miss rate exceeds this ends the ramp.
    pub max_miss_rate: f64,
    /// Ops replayed per stage (a prefix of the history).
    pub ops_per_stage: usize,
}

impl Default for RampConfig {
    fn default() -> Self {
        RampConfig {
            factor: 2.0,
            stages: 5,
            max_miss_rate: 0.05,
            ops_per_stage: 2_000,
        }
    }
}

/// Full harness configuration. [`StreamConfig::new`] supplies defaults
/// sized for a laptop smoke run.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Durable store directory; must not already hold a live store.
    pub store: PathBuf,
    /// Sim-pattern seed for the standing queries (the workload topology
    /// keeps the dataset's own seed).
    pub seed: u64,
    /// Temporal windows to generate.
    pub windows: usize,
    /// Window size as percent of |G|.
    pub window_pct: f64,
    /// Dataset scale factor.
    pub scale: f64,
    /// Target mean admission rate.
    pub rate_ops_s: f64,
    /// Flush when this many ops are pending.
    pub flush_ops: usize,
    /// Flush when the oldest pending op has waited this long.
    pub flush_wait_ms: f64,
    /// Per-op SLO: admission→completion beyond this is a deadline miss.
    pub deadline_ms: f64,
    /// Backpressure bound: when the consumer lags the next scheduled
    /// arrival by more than this, the unadmitted tail is pushed forward.
    pub max_lag_ms: f64,
    /// Deterministic virtual clock: no sleeping, scheduling decisions
    /// never read the wall clock, processing takes zero virtual time.
    pub virtual_time: bool,
    /// Automatic checkpoint cadence, in flushes.
    pub checkpoint_every: Option<u64>,
    /// Replay only the first N ops of the history.
    pub max_ops: Option<usize>,
    /// Optional injected kill + recovery measurement.
    pub crash: Option<StreamCrash>,
    /// Optional throughput-ceiling ramp (real-time stages).
    pub ramp: Option<RampConfig>,
}

impl StreamConfig {
    /// Smoke-sized defaults: three Wiki-DE windows at quarter scale,
    /// 20k ops/s, flush at 64 ops or 5 ms, 50 ms per-op SLO.
    pub fn new(store: PathBuf) -> Self {
        StreamConfig {
            store,
            seed: 0x0D15_EA5E,
            windows: 3,
            window_pct: 1.9,
            scale: 0.25,
            rate_ops_s: 20_000.0,
            flush_ops: 64,
            flush_wait_ms: 5.0,
            deadline_ms: 50.0,
            max_lag_ms: 200.0,
            virtual_time: false,
            checkpoint_every: Some(32),
            max_ops: None,
            crash: None,
            ramp: None,
        }
    }
}

/// Per-class steady-state latency stats, from the obs log₂ histograms.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassStream {
    /// Class name (`sssp`, `cc`, …).
    pub class: String,
    /// Latency samples recorded (ops observed while probes were live).
    pub updates: u64,
    /// Median admission→completion latency.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Mean latency.
    pub mean_ns: f64,
    /// Guarded updates that fell back to batch recompute.
    pub fallbacks: u64,
}

/// Everything one stream run measured and verified.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReport {
    /// UTC date the run finished.
    pub date: String,
    /// Sim-pattern seed.
    pub seed: u64,
    /// Whether the deterministic virtual clock drove scheduling.
    pub virtual_time: bool,
    /// Target mean rate.
    pub rate_ops_s: f64,
    /// Flush-size trigger.
    pub flush_ops: usize,
    /// Flush-wait trigger.
    pub flush_wait_ms: f64,
    /// Per-op SLO.
    pub deadline_ms: f64,
    /// Unit updates replayed (every one acked).
    pub ops_total: usize,
    /// Flushes applied — each exactly one WAL record.
    pub batches: usize,
    /// Effective ops cancelled by micro-batch coalescing, summed over
    /// flushes.
    pub coalesced_ops: usize,
    /// Ops whose admission→completion exceeded the SLO.
    pub deadline_misses: usize,
    /// `deadline_misses / ops_total`.
    pub miss_rate: f64,
    /// Times the backpressure rule pushed the schedule forward.
    pub backpressure_events: usize,
    /// Total schedule delay injected by backpressure.
    pub backpressure_shift_ms: f64,
    /// Highest ramp-stage rate whose miss rate stayed under the
    /// threshold (`None`: ramp disabled, or the first stage already
    /// missed).
    pub throughput_ceiling_ops_s: Option<f64>,
    /// Measured recovery time after the injected kill.
    pub rto_ms: Option<f64>,
    /// Name of the injected crash point.
    pub crash_point: Option<String>,
    /// WAL records incrementally replayed during recovery.
    pub recovered_replayed: Option<usize>,
    /// Committed-but-unacked WAL records observed at the post-crash
    /// audit (the in-flight flush whose fsync landed but whose ack never
    /// returned; adopted into the ledger afterwards).
    pub committed_unacked: usize,
    /// CRC-32 over the final graph and every standing essence, `%08x`.
    /// A pure function of `(seed, schedule)` in virtual time.
    pub digest: String,
    /// Min wall time of one full standing-query rebuild (batch
    /// recompute of every class) on the final graph — the host-speed
    /// calibration the regression gate divides by.
    pub calib_batch_ns: f64,
    /// Per-class latency stats.
    pub classes: Vec<ClassStream>,
    /// Wall time of the whole run.
    pub wall_ms: f64,
}

/// Harness-level failure.
#[derive(Debug)]
pub enum StreamError {
    /// Bad configuration.
    Config(String),
    /// The durable layer failed (or refused the store directory).
    Durable(DurableError),
    /// The exactly-once WAL audit failed — the run is *incorrect*, not
    /// merely slow.
    Audit(WalAuditFailure),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Config(m) => write!(f, "stream config: {m}"),
            StreamError::Durable(e) => write!(f, "stream durable: {e}"),
            StreamError::Audit(e) => write!(f, "stream audit: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DurableError> for StreamError {
    fn from(e: DurableError) -> Self {
        StreamError::Durable(e)
    }
}

impl From<WalAuditFailure> for StreamError {
    fn from(e: WalAuditFailure) -> Self {
        StreamError::Audit(e)
    }
}

// ---------------------------------------------------------------------
// Latency probes
// ---------------------------------------------------------------------

/// Shared probe context: the stream epoch (rebased to the instant the
/// replay loop starts, so store setup never counts as lateness) and the
/// admission instants of the flush currently being applied.
struct ProbeShared {
    epoch: Mutex<Instant>,
    admissions: Mutex<Vec<u64>>,
}

impl ProbeShared {
    fn now_ns(&self) -> u64 {
        self.epoch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .elapsed()
            .as_nanos() as u64
    }
}

/// Transparent [`IncrementalState`] wrapper: byte-identical behaviour to
/// the wrapped state (essence, name, checkpoints), plus it records each
/// op's admission→completion latency into the class's obs histogram the
/// moment *this class's* incremental update finishes. Classes update
/// sequentially inside [`DurableSession::apply`], so each class's
/// latency honestly includes the WAL fsync and every class ahead of it —
/// the freshness a standing-query subscriber of that class observes.
struct LatencyProbe {
    inner: Box<dyn IncrementalState>,
    shared: Arc<ProbeShared>,
}

impl IncrementalState for LatencyProbe {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn total_vars(&self, g: &DynamicGraph) -> usize {
        self.inner.total_vars(g)
    }

    fn update(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> BoundednessReport {
        let report = self.inner.update(g, applied);
        if incgraph_obs::enabled() {
            let done = self.shared.now_ns();
            let _class = incgraph_obs::class_scope(self.inner.name());
            let admissions = self
                .shared
                .admissions
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for &at in admissions.iter() {
                incgraph_obs::observe(LATENCY_HIST, done.saturating_sub(at));
            }
        }
        report
    }

    fn recompute(&mut self, g: &DynamicGraph) -> RunStats {
        self.inner.recompute(g)
    }

    fn audit(&self, g: &DynamicGraph, audit: &FixpointAudit) -> AuditReport {
        self.inner.audit(g, audit)
    }

    fn set_work_budget(&mut self, budget: Option<u64>) {
        self.inner.set_work_budget(budget);
    }

    fn set_threads(&mut self, threads: usize) {
        self.inner.set_threads(threads);
    }

    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }

    fn save_state(&self) -> Vec<u8> {
        self.inner.save_state()
    }

    fn load_state(
        &mut self,
        g: &DynamicGraph,
        bytes: &[u8],
    ) -> Result<(), incgraph_algos::StateLoadError> {
        self.inner.load_state(g, bytes)
    }
}

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

/// Scheduling clock: virtual (jumps exactly where the scheduler asks,
/// processing is instantaneous) or real (wall clock, sleep+spin waits).
enum Clock {
    Virtual { now: u64 },
    Real { epoch: Instant },
}

impl Clock {
    fn now(&self) -> u64 {
        match self {
            Clock::Virtual { now } => *now,
            Clock::Real { epoch } => epoch.elapsed().as_nanos() as u64,
        }
    }

    fn advance_to(&mut self, target: u64) {
        match self {
            Clock::Virtual { now } => *now = target.max(*now),
            Clock::Real { epoch } => loop {
                let now = epoch.elapsed().as_nanos() as u64;
                if now >= target {
                    break;
                }
                let left = target - now;
                // Coarse sleep to within ~300µs of the target, then spin
                // for precision; low rates stay cheap on CPU.
                if left > 500_000 {
                    std::thread::sleep(std::time::Duration::from_nanos(left - 300_000));
                } else {
                    std::hint::spin_loop();
                }
            },
        }
    }
}

fn ms_to_ns(ms: f64) -> u64 {
    (ms * 1e6) as u64
}

// ---------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------

/// Runs one sustained-stream replay per `cfg`. Pass the CLI's installed
/// `--metrics` registry to have latencies land there (and in the
/// exported metrics file); with `None` a run-local registry is installed
/// for the duration and uninstalled afterwards.
pub fn run_stream(
    cfg: &StreamConfig,
    registry: Option<Arc<Registry>>,
) -> Result<StreamReport, StreamError> {
    if let Some(c) = cfg.crash {
        if !(0.0..=1.0).contains(&c.at_frac) {
            return Err(StreamError::Config(
                "crash fraction must be in [0,1]".into(),
            ));
        }
    }
    if cfg.rate_ops_s <= 0.0 || !cfg.rate_ops_s.is_finite() {
        return Err(StreamError::Config("rate must be positive".into()));
    }
    if cfg.flush_ops == 0 {
        return Err(StreamError::Config("flush size must be positive".into()));
    }
    let wall_start = Instant::now();

    // Workload: undirected base so all seven classes register.
    let t = Dataset::WikiDe.temporal(false, cfg.windows, cfg.window_pct, cfg.scale);
    let mut ops: Vec<Update> = t
        .windows
        .iter()
        .flat_map(|w| w.updates().iter().copied())
        .collect();
    let mut ticks: Vec<u64> = t.timestamps.iter().flatten().copied().collect();
    debug_assert_eq!(ops.len(), ticks.len());
    if let Some(cap) = cfg.max_ops {
        ops.truncate(cap);
        ticks.truncate(cap);
    }
    if ops.is_empty() {
        return Err(StreamError::Config("empty op history".into()));
    }
    let total_ops = ops.len();
    let policy = FlushPolicy::new(cfg.flush_ops, ms_to_ns(cfg.flush_wait_ms));
    let mut sched = Scheduler::new(rate_schedule(&ticks, cfg.rate_ops_s), policy);

    // Store with the standing queries, each behind a latency probe.
    let shared = Arc::new(ProbeShared {
        epoch: Mutex::new(Instant::now()),
        admissions: Mutex::new(Vec::new()),
    });
    let states: Vec<Box<dyn IncrementalState>> = standing_states(&t.initial, cfg.seed)
        .into_iter()
        .map(|inner| {
            Box::new(LatencyProbe {
                inner,
                shared: shared.clone(),
            }) as Box<dyn IncrementalState>
        })
        .collect();
    let class_names: Vec<&'static str> = states.iter().map(|s| s.name()).collect();
    let durable_options = DurableOptions {
        checkpoint_every: cfg.checkpoint_every,
        micro_batch: true,
        ..DurableOptions::default()
    };
    let mut session = DurableSession::create(
        &cfg.store,
        t.initial.clone(),
        states,
        durable_options.clone(),
    )?;

    // Telemetry sink for the probes.
    let local_registry = match &registry {
        Some(r) => r.clone(),
        None => {
            let r = Arc::new(Registry::new());
            incgraph_obs::install(r.clone());
            r
        }
    };
    // On any error past this point the local install must be torn down.
    let cleanup = |registry_provided: bool| {
        if !registry_provided {
            incgraph_obs::uninstall();
        }
    };

    // Rebase the stream epoch now: standing-state construction and the
    // genesis checkpoint are setup, not lateness.
    let epoch = Instant::now();
    *shared.epoch.lock().unwrap_or_else(|e| e.into_inner()) = epoch;
    let mut clock = if cfg.virtual_time {
        Clock::Virtual { now: 0 }
    } else {
        Clock::Real { epoch }
    };
    let lag_ns = ms_to_ns(cfg.max_lag_ms);
    let deadline_ns = ms_to_ns(cfg.deadline_ms);

    // Shadow graph for coalescing accounting: replays each flush to
    // recover the effective AppliedBatch the session saw, then counts
    // what the micro-batch pass cancelled. Kept outside the latency
    // window (after miss accounting) so probes never pay for it.
    let mut shadow = t.initial.clone();

    let mut acked: Vec<AckedBatch> = Vec::new();
    let mut fallbacks: Vec<u64> = vec![0; class_names.len()];
    let mut batches = 0usize;
    let mut coalesced_ops = 0usize;
    let mut misses = 0usize;
    let mut backpressure_events = 0usize;
    let mut backpressure_shift_ns = 0u64;
    let mut pending_crash = cfg.crash;
    let mut rto_ns: Option<u64> = None;
    let mut recovered_replayed: Option<usize> = None;
    let mut committed_unacked = 0usize;

    loop {
        let step = sched.step(clock.now());
        let (start, end) = match step {
            Step::Done => break,
            Step::WaitUntil(at) => {
                clock.advance_to(at);
                continue;
            }
            Step::Flush { start, end, .. } => (start, end),
        };
        batches += 1;
        if let Some(c) = pending_crash {
            let fire_at = ((c.at_frac * total_ops as f64) as usize).min(total_ops - 1);
            if end > fire_at {
                session.arm_crash(Some(c.point));
                pending_crash = None;
            }
        }
        let batch = UpdateBatch::from_updates(ops[start..end].to_vec());
        let fingerprint = batch_fingerprint(&batch);
        {
            // Admission instants for the probes: the scheduled arrival in
            // real mode; "now" in virtual mode, where latency therefore
            // isolates pure processing cost.
            let mut adm = shared.admissions.lock().unwrap_or_else(|e| e.into_inner());
            adm.clear();
            match &clock {
                Clock::Real { .. } => adm.extend((start..end).map(|i| sched.arrival(i))),
                Clock::Virtual { .. } => {
                    let now = shared.now_ns();
                    adm.extend((start..end).map(|_| now));
                }
            }
        }
        match session.apply(&batch) {
            Ok(reports) => {
                acked.push(AckedBatch {
                    seq: session.last_seq(),
                    fingerprint,
                });
                for (i, r) in reports.iter().enumerate() {
                    fallbacks[i] += r.fell_back() as u64;
                }
            }
            Err(DurableError::InjectedCrash(_)) => {
                // The process "died" mid-flush: drop the session, recover
                // from disk, audit exactly-once, resume the stream.
                drop(session);
                let down = Instant::now();
                let (recovered, rec_report) = recover(&cfg.store, durable_options.clone())
                    .inspect_err(|_| cleanup(registry.is_some()))?;
                session = recovered;
                let audit = audit_wal(&cfg.store, &acked, 1)
                    .inspect_err(|_| cleanup(registry.is_some()))?;
                committed_unacked += audit.committed_unacked;
                let pre_crash_seq = acked.len() as u64;
                if session.last_seq() == pre_crash_seq + 1 {
                    // The in-flight flush's fsync landed before the kill:
                    // it is durable and recovery already replayed it into
                    // the states — adopt the ack, never re-apply.
                    acked.push(AckedBatch {
                        seq: pre_crash_seq + 1,
                        fingerprint,
                    });
                } else {
                    // Died before the commit point: the flush left no
                    // (complete) record — by design it was never acked —
                    // so re-apply it on the recovered session. Recovered
                    // states are bare (no probes), so nothing double-
                    // records latency.
                    match session.apply(&batch) {
                        Ok(_) => acked.push(AckedBatch {
                            seq: session.last_seq(),
                            fingerprint,
                        }),
                        Err(e) => {
                            cleanup(registry.is_some());
                            return Err(e.into());
                        }
                    }
                }
                rto_ns = Some(down.elapsed().as_nanos() as u64);
                recovered_replayed = Some(rec_report.wal_records_replayed);
                if let Clock::Real { .. } = clock {
                    // Downtime shifts the remaining schedule — the
                    // producer reconnects after the outage. Ops already
                    // admitted keep their arrivals and eat their misses.
                    sched.shift_tail(clock.now());
                }
            }
            Err(e) => {
                cleanup(registry.is_some());
                return Err(e.into());
            }
        }
        // Deadline-miss accounting at flush completion, against the
        // *original* schedule the ops were admitted under.
        let done = clock.now();
        for i in start..end {
            if done.saturating_sub(sched.arrival(i)) > deadline_ns {
                misses += 1;
            }
        }
        // Coalescing win: effective ops the micro-batch pass cancelled.
        let applied = batch.apply(&mut shadow);
        let net = coalesce_batches(shadow.is_directed(), std::iter::once(&applied));
        coalesced_ops += applied.len() - net.len();
        // Explicit backpressure: a consumer lagging the next scheduled
        // arrival beyond the bound throttles the producer instead of
        // letting the queue grow without limit.
        if let Clock::Real { .. } = clock {
            if sched.flushed() < total_ops {
                let now = clock.now();
                let next = sched.arrival(sched.flushed());
                if now > next.saturating_add(lag_ns) {
                    let shift = sched.shift_tail(now);
                    if shift > 0 {
                        backpressure_events += 1;
                        backpressure_shift_ns += shift;
                    }
                }
            }
        }
    }

    // End-of-run oracle: every acked flush exactly once, no strays.
    if let Err(e) = audit_wal(&cfg.store, &acked, 0) {
        cleanup(registry.is_some());
        return Err(e.into());
    }
    debug_assert_eq!(acked.len(), batches);

    // Per-class latency stats out of the obs histograms.
    let snapshot = local_registry.snapshot();
    cleanup(registry.is_some());
    let classes: Vec<ClassStream> = class_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let hist = snapshot
                .hists
                .get(&((*name).to_string(), LATENCY_HIST.to_string()));
            let (updates, p50_ns, p99_ns, p999_ns, mean_ns) = match hist {
                Some(h) => (
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.mean(),
                ),
                None => (0, 0, 0, 0, 0.0),
            };
            ClassStream {
                class: (*name).to_string(),
                updates,
                p50_ns,
                p99_ns,
                p999_ns,
                mean_ns,
                fallbacks: fallbacks[i],
            }
        })
        .collect();

    // Throughput ceiling: short real-time stages at rising rates on
    // scratch stores, after the main run's telemetry is finalized (each
    // child installs and removes its own local registry).
    let mut throughput_ceiling_ops_s = None;
    if let Some(ramp) = cfg.ramp {
        let mut rate = cfg.rate_ops_s;
        for stage in 0..ramp.stages {
            let child = StreamConfig {
                store: cfg.store.join(format!("ramp-{stage}")),
                rate_ops_s: rate,
                max_ops: Some(ramp.ops_per_stage.max(cfg.flush_ops)),
                virtual_time: false,
                crash: None,
                ramp: None,
                ..cfg.clone()
            };
            let stage_report = run_stream(&child, None)?;
            let _ = std::fs::remove_dir_all(&child.store);
            if stage_report.miss_rate > ramp.max_miss_rate {
                break;
            }
            throughput_ceiling_ops_s = Some(rate);
            rate *= ramp.factor;
        }
        // The ramp children clobbered the global recorder; restore the
        // caller's registry if one was live.
        if let Some(r) = &registry {
            incgraph_obs::install(r.clone());
        }
    }

    // Host-speed calibration: min wall time of a full standing-query
    // rebuild (batch recompute of every class) on the final graph.
    let calib_batch_ns = {
        let g = session.graph();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            std::hint::black_box(standing_states(g, cfg.seed));
            best = best.min(t0.elapsed().as_nanos() as f64);
        }
        best
    };

    Ok(StreamReport {
        date: today_utc(),
        seed: cfg.seed,
        virtual_time: cfg.virtual_time,
        rate_ops_s: cfg.rate_ops_s,
        flush_ops: cfg.flush_ops,
        flush_wait_ms: cfg.flush_wait_ms,
        deadline_ms: cfg.deadline_ms,
        ops_total: total_ops,
        batches,
        coalesced_ops,
        deadline_misses: misses,
        miss_rate: misses as f64 / total_ops as f64,
        backpressure_events,
        backpressure_shift_ms: backpressure_shift_ns as f64 / 1e6,
        throughput_ceiling_ops_s,
        rto_ms: rto_ns.map(|ns| ns as f64 / 1e6),
        crash_point: cfg.crash.map(|c| c.point.name().to_string()),
        recovered_replayed,
        committed_unacked,
        digest: store_digest(&session),
        calib_batch_ns,
        classes,
        wall_ms: wall_start.elapsed().as_nanos() as f64 / 1e6,
    })
}

/// CRC-32 over the store's observable essence: directedness, node
/// count, every edge (sorted), and each standing state's `save_state`
/// bytes in registration order. Byte-identical across same-seed
/// virtual-time runs and across kill/recover (the recovered states see
/// the identical applied-flush sequence). Since the replication PR this
/// is [`DurableSession::digest`] — the same figure primary and replica
/// exchange for divergence detection — re-exported here so the pinned
/// STREAM baselines and the wire protocol can never drift apart.
pub fn store_digest(session: &DurableSession) -> String {
    session.digest()
}

// ---------------------------------------------------------------------
// JSON + regression gate
// ---------------------------------------------------------------------

/// Serializes a report as the `STREAM_<date>.json` document (schema
/// `incgraph-stream/1`; one class object per line so the line-scanning
/// baseline parser works, like the BENCH_*.json documents).
pub fn to_json(r: &StreamReport) -> String {
    let opt_num = |x: Option<f64>| match x {
        Some(v) if v.is_finite() => format!("{v:.3}"),
        _ => "null".to_string(),
    };
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"schema\": \"incgraph-stream/1\",");
    let _ = writeln!(j, "  \"date\": \"{}\",", r.date);
    let _ = writeln!(j, "  \"seed\": {},", r.seed);
    let _ = writeln!(j, "  \"virtual_time\": {},", r.virtual_time);
    let _ = writeln!(j, "  \"rate_ops_s\": {:.1},", r.rate_ops_s);
    let _ = writeln!(j, "  \"flush_ops\": {},", r.flush_ops);
    let _ = writeln!(j, "  \"flush_wait_ms\": {:.3},", r.flush_wait_ms);
    let _ = writeln!(j, "  \"deadline_ms\": {:.3},", r.deadline_ms);
    let _ = writeln!(j, "  \"ops_total\": {},", r.ops_total);
    let _ = writeln!(j, "  \"batches\": {},", r.batches);
    let _ = writeln!(j, "  \"coalesced_ops\": {},", r.coalesced_ops);
    let _ = writeln!(j, "  \"deadline_misses\": {},", r.deadline_misses);
    let _ = writeln!(j, "  \"miss_rate\": {:.6},", r.miss_rate);
    let _ = writeln!(j, "  \"backpressure_events\": {},", r.backpressure_events);
    let _ = writeln!(
        j,
        "  \"backpressure_shift_ms\": {:.3},",
        r.backpressure_shift_ms
    );
    let _ = writeln!(
        j,
        "  \"throughput_ceiling_ops_s\": {},",
        opt_num(r.throughput_ceiling_ops_s)
    );
    let _ = writeln!(j, "  \"rto_ms\": {},", opt_num(r.rto_ms));
    let _ = writeln!(
        j,
        "  \"crash_point\": {},",
        match &r.crash_point {
            Some(p) => format!("\"{p}\""),
            None => "null".to_string(),
        }
    );
    let _ = writeln!(
        j,
        "  \"recovered_replayed\": {},",
        r.recovered_replayed
            .map_or_else(|| "null".to_string(), |n| n.to_string())
    );
    let _ = writeln!(j, "  \"committed_unacked\": {},", r.committed_unacked);
    let _ = writeln!(j, "  \"digest\": \"{}\",", r.digest);
    let _ = writeln!(j, "  \"calib_batch_ns\": {:.1},", r.calib_batch_ns);
    let _ = writeln!(j, "  \"wall_ms\": {:.3},", r.wall_ms);
    j.push_str("  \"classes\": [");
    for (i, c) in r.classes.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        let _ = write!(
            j,
            "\n    {{ \"class\": \"{}\", \"updates\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"mean_ns\": {:.1}, \"fallbacks\": {} }}",
            c.class, c.updates, c.p50_ns, c.p99_ns, c.p999_ns, c.mean_ns, c.fallbacks
        );
    }
    j.push_str("\n  ]\n}\n");
    j
}

/// Gate rows parsed from a committed STREAM json.
struct StreamBaseline {
    ops_total: Option<f64>,
    batches: Option<f64>,
    miss_rate: Option<f64>,
    virtual_time: bool,
    calib_batch_ns: Option<f64>,
    /// `(class, p50_ns)` per class line.
    classes: Vec<(String, f64)>,
}

fn parse_stream_baseline(json: &str) -> StreamBaseline {
    let mut b = StreamBaseline {
        ops_total: None,
        batches: None,
        miss_rate: None,
        virtual_time: false,
        calib_batch_ns: None,
        classes: Vec::new(),
    };
    for line in json.lines() {
        if let Some(cls) = field_str(line, "\"class\": \"") {
            if let Some(p50) = field_num(line, "\"p50_ns\": ") {
                if !b.classes.iter().any(|(c, _)| c == cls) {
                    b.classes.push((cls.to_string(), p50));
                }
            }
            continue;
        }
        b.ops_total = b.ops_total.or_else(|| field_num(line, "\"ops_total\": "));
        b.batches = b.batches.or_else(|| field_num(line, "\"batches\": "));
        b.miss_rate = b.miss_rate.or_else(|| field_num(line, "\"miss_rate\": "));
        b.calib_batch_ns = b
            .calib_batch_ns
            .or_else(|| field_num(line, "\"calib_batch_ns\": "));
        if field_str(line, "\"virtual_time\": ").is_some_and(|v| v.trim() == "true") {
            b.virtual_time = true;
        }
    }
    b
}

/// Compares a fresh run against a committed STREAM baseline. Returns one
/// message per violated gate:
///
/// * **accounting** — when both runs are virtual-time, `ops_total` and
///   `batches` are pure functions of `(seed, rate, flush policy)`, so
///   any drift is a determinism regression (or a deliberate workload
///   change that must regenerate the baseline);
/// * **latency** — per class, `p50_ns / calib_batch_ns` against the
///   baseline's same ratio beyond `threshold` (0.5 = +50%). The rebuild
///   runs the same kernels on the same host, so the ratio cancels host
///   speed. The gate is on the *median* deliberately: per-op latency
///   includes the flush's WAL fsync, so a single disk hiccup lands in
///   p99 of every class (one slow batch holds the top ops of all of
///   them) — p99/p999 are reported for humans, but only a regression
///   broad enough to move the median fails CI. The log₂-histogram
///   quantization is why the default headroom is still wider than the
///   parbench gate's;
/// * **miss rate** — beyond baseline + 2 percentage points absolute.
pub fn stream_regressions(
    baseline_json: &str,
    report: &StreamReport,
    threshold: f64,
) -> Vec<String> {
    let base = parse_stream_baseline(baseline_json);
    let mut out = Vec::new();
    if base.virtual_time && report.virtual_time {
        if let Some(ops) = base.ops_total {
            if ops as usize != report.ops_total {
                out.push(format!(
                    "ops_total {} != baseline {} (virtual-time accounting must be exact)",
                    report.ops_total, ops as usize
                ));
            }
        }
        if let Some(batches) = base.batches {
            if batches as usize != report.batches {
                out.push(format!(
                    "batches {} != baseline {} (virtual-time flush partition must be exact)",
                    report.batches, batches as usize
                ));
            }
        }
    }
    if let Some(base_miss) = base.miss_rate {
        if report.miss_rate > base_miss + 0.02 {
            out.push(format!(
                "miss_rate {:.4} vs baseline {:.4} (+{:.2}pp, limit +2pp)",
                report.miss_rate,
                base_miss,
                (report.miss_rate - base_miss) * 100.0
            ));
        }
    }
    if let Some(base_calib) = base.calib_batch_ns.filter(|&c| c > 0.0) {
        if report.calib_batch_ns > 0.0 {
            for c in &report.classes {
                let Some((_, base_p50)) = base.classes.iter().find(|(n, _)| n == &c.class) else {
                    continue;
                };
                if *base_p50 <= 0.0 || c.p50_ns == 0 {
                    continue;
                }
                let base_ratio = base_p50 / base_calib;
                let ratio = c.p50_ns as f64 / report.calib_batch_ns;
                if ratio > base_ratio * (1.0 + threshold) {
                    out.push(format!(
                        "{}: p50/calib {:.5} vs baseline {:.5} (+{:.0}%, limit +{:.0}%)",
                        c.class,
                        ratio,
                        base_ratio,
                        (ratio / base_ratio - 1.0) * 100.0,
                        threshold * 100.0
                    ));
                }
            }
        }
    }
    out
}

/// Renders the human table printed after a run.
pub fn render_table(r: &StreamReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "stream: {} ops in {} batches @ {:.0} ops/s target ({}){}",
        r.ops_total,
        r.batches,
        r.rate_ops_s,
        if r.virtual_time {
            "virtual"
        } else {
            "real-time"
        },
        r.rto_ms
            .map_or_else(String::new, |ms| format!(", RTO {ms:.2} ms")),
    );
    let _ = writeln!(
        s,
        "deadline misses: {} ({:.3}%), coalesced: {} ops, backpressure: {} events / {:.1} ms",
        r.deadline_misses,
        r.miss_rate * 100.0,
        r.coalesced_ops,
        r.backpressure_events,
        r.backpressure_shift_ms
    );
    if let Some(c) = r.throughput_ceiling_ops_s {
        let _ = writeln!(s, "throughput ceiling: {c:.0} ops/s");
    }
    let _ = writeln!(s, "digest: {}", r.digest);
    let _ = writeln!(
        s,
        "{:<6} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "class", "updates", "p50", "p99", "p999", "fallbacks"
    );
    for c in &r.classes {
        let _ = writeln!(
            s,
            "{:<6} {:>9} {:>12} {:>12} {:>12} {:>10}",
            c.class,
            c.updates,
            fmt_ns(c.p50_ns as f64),
            fmt_ns(c.p99_ns as f64),
            fmt_ns(c.p999_ns as f64),
            c.fallbacks
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "incgraph-stream-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A tiny virtual-time config that finishes in well under a second.
    fn tiny(store: PathBuf) -> StreamConfig {
        let mut cfg = StreamConfig::new(store);
        cfg.scale = 0.05;
        cfg.virtual_time = true;
        cfg.flush_ops = 16;
        cfg.checkpoint_every = Some(4);
        cfg
    }

    /// Unit tests stay off the global obs recorder (parallel tests would
    /// race on it): passing a never-installed registry records nothing
    /// but keeps scheduling, digests, and audits fully live. The
    /// installed-recorder path is exercised single-threaded by
    /// tests/stream_determinism.rs and tests/stream_rto.rs.
    fn quiet_registry() -> Option<Arc<Registry>> {
        Some(Arc::new(Registry::new()))
    }

    #[test]
    fn virtual_replay_is_deterministic() {
        let (d1, d2) = (scratch("det-a"), scratch("det-b"));
        let a = run_stream(&tiny(d1.clone()), quiet_registry()).unwrap();
        let b = run_stream(&tiny(d2.clone()), quiet_registry()).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.ops_total, b.ops_total);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.coalesced_ops, b.coalesced_ops);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert!(a.batches > 1, "partition should have several flushes");
        // Undirected base: all seven classes stand.
        assert_eq!(a.classes.len(), 7);
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }

    #[test]
    fn crash_and_recover_preserves_digest_and_exactly_once() {
        let clean_dir = scratch("crash-clean");
        let clean = run_stream(&tiny(clean_dir.clone()), quiet_registry()).unwrap();
        for point in [CrashPoint::WalPreFsync, CrashPoint::WalPostFsync] {
            let dir = scratch("crash");
            let mut cfg = tiny(dir.clone());
            cfg.crash = Some(StreamCrash {
                point,
                at_frac: 0.5,
            });
            let crashed = run_stream(&cfg, quiet_registry()).unwrap();
            assert!(crashed.rto_ms.is_some(), "{point:?} never fired");
            assert_eq!(
                crashed.digest, clean.digest,
                "{point:?}: kill+recover must converge to the clean digest"
            );
            assert_eq!(crashed.ops_total, clean.ops_total);
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&clean_dir);
    }

    #[test]
    fn json_roundtrip_gates_clean_against_itself() {
        let dir = scratch("json");
        let report = run_stream(&tiny(dir.clone()), quiet_registry()).unwrap();
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"incgraph-stream/1\""));
        assert!(stream_regressions(&json, &report, 0.5).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_catches_accounting_and_tail_drift() {
        let dir = scratch("gate");
        let report = run_stream(&tiny(dir.clone()), quiet_registry()).unwrap();
        let json = to_json(&report);

        let mut drifted = report.clone();
        drifted.ops_total += 1;
        drifted.batches += 2;
        let msgs = stream_regressions(&json, &drifted, 0.5);
        assert!(msgs.iter().any(|m| m.contains("ops_total")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("batches")), "{msgs:?}");

        let mut missy = report.clone();
        missy.miss_rate = report.miss_rate + 0.5;
        assert!(stream_regressions(&json, &missy, 0.5)
            .iter()
            .any(|m| m.contains("miss_rate")));

        // Latency gate needs nonzero histograms on both sides; synthesize.
        let mut base = report.clone();
        base.calib_batch_ns = 1_000_000.0;
        for c in &mut base.classes {
            c.p50_ns = 10_000;
        }
        let base_json = to_json(&base);
        let mut slow = base.clone();
        slow.classes[0].p50_ns = 100_000;
        let msgs = stream_regressions(&base_json, &slow, 0.5);
        assert!(
            msgs.iter().any(|m| m.contains(&slow.classes[0].class)),
            "{msgs:?}"
        );
        assert!(stream_regressions(&base_json, &base, 0.5).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = tiny(scratch("bad"));
        cfg.rate_ops_s = 0.0;
        assert!(matches!(
            run_stream(&cfg, quiet_registry()),
            Err(StreamError::Config(_))
        ));
        cfg.rate_ops_s = 100.0;
        cfg.max_ops = Some(0);
        assert!(matches!(
            run_stream(&cfg, quiet_registry()),
            Err(StreamError::Config(_))
        ));
    }
}
