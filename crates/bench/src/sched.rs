//! Ingest scheduler for sustained-stream replay: pure, clock-agnostic
//! admission and flush decisions.
//!
//! The temporal generator stamps every unit update with an admission tick
//! ([`incgraph_graph::gen::TemporalGraph::timestamps`]); [`rate_schedule`]
//! maps those ticks onto a nanosecond arrival schedule whose *mean* rate
//! is a target ops/sec while preserving the history's relative burst
//! shape. [`Scheduler`] then turns arrivals into flush decisions under an
//! admission/batching policy — flush when the pending buffer reaches
//! `max_ops` **or** when its oldest op has waited `max_wait_ns` — plus a
//! drain rule at end of history.
//!
//! The scheduler never reads a clock: every decision is a pure function
//! of `(arrivals, policy, now_ns)`, so the same state machine drives both
//! the real-time soak (now = wall clock) and the deterministic
//! virtual-clock mode (now = the instant the scheduler itself asked to
//! wait for). That purity is what makes `incgraph stream --virtual-time`
//! replay byte-identically: with processing taking zero virtual time, the
//! flush partition depends only on the seed-derived arrivals and the
//! policy, which `tests/stream_determinism.rs` pins.
//!
//! Backpressure is explicit rather than an unbounded queue: when the
//! consumer falls behind the schedule by more than a configured lag, the
//! driver calls [`Scheduler::shift_tail`] to push every not-yet-admitted
//! arrival forward — the producer is throttled, the overload is counted,
//! and the deadline-miss accounting still charges the ops that already
//! slipped.

/// Admission/batching policy: a pending buffer flushes when it holds
/// `max_ops` updates or when its oldest update has waited `max_wait_ns`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush as soon as this many ops are pending (size trigger).
    pub max_ops: usize,
    /// Flush when the oldest pending op has waited this long (deadline
    /// trigger), even if the buffer is not full.
    pub max_wait_ns: u64,
}

impl FlushPolicy {
    /// A policy that always flushes a full buffer of `max_ops`; the wait
    /// bound keeps stragglers from idling at end of a burst.
    pub fn new(max_ops: usize, max_wait_ns: u64) -> Self {
        assert!(max_ops > 0, "flush size must be positive");
        FlushPolicy {
            max_ops,
            max_wait_ns,
        }
    }
}

/// Why a flush fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The pending buffer reached [`FlushPolicy::max_ops`].
    Size,
    /// The oldest pending op waited [`FlushPolicy::max_wait_ns`].
    Deadline,
    /// End of history: whatever is pending drains.
    Drain,
}

impl FlushTrigger {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FlushTrigger::Size => "size",
            FlushTrigger::Deadline => "deadline",
            FlushTrigger::Drain => "drain",
        }
    }
}

/// One scheduler decision at a given `now`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Apply ops `[start, end)` now. The scheduler has already marked
    /// them flushed; the driver must apply them before asking again.
    Flush {
        start: usize,
        end: usize,
        trigger: FlushTrigger,
    },
    /// Nothing to do until this instant (next arrival or oldest-pending
    /// deadline, whichever is sooner).
    WaitUntil(u64),
    /// Every op has been admitted and flushed.
    Done,
}

/// The admission state machine. See the module docs for the contract.
#[derive(Clone, Debug)]
pub struct Scheduler {
    arrivals: Vec<u64>,
    policy: FlushPolicy,
    /// Ops already handed out via [`Step::Flush`].
    flushed: usize,
    /// Ops admitted (arrival ≤ the last `now` seen); `flushed..admitted`
    /// is the pending buffer.
    admitted: usize,
}

impl Scheduler {
    /// A scheduler over a non-decreasing arrival schedule (ns since
    /// stream start).
    pub fn new(arrivals: Vec<u64>, policy: FlushPolicy) -> Self {
        debug_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        Scheduler {
            arrivals,
            policy,
            flushed: 0,
            admitted: 0,
        }
    }

    /// Total ops in the schedule.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Ops flushed so far.
    pub fn flushed(&self) -> usize {
        self.flushed
    }

    /// Scheduled arrival of op `i`, ns since stream start.
    pub fn arrival(&self, i: usize) -> u64 {
        self.arrivals[i]
    }

    /// The next decision at instant `now_ns`. A returned
    /// [`Step::Flush`] consumes its range immediately; the driver applies
    /// it (taking however long that takes) and calls `step` again with
    /// the new now.
    pub fn step(&mut self, now_ns: u64) -> Step {
        while self.admitted < self.arrivals.len() && self.arrivals[self.admitted] <= now_ns {
            self.admitted += 1;
        }
        let pending = self.admitted - self.flushed;
        if pending >= self.policy.max_ops {
            return self.take_flush(FlushTrigger::Size);
        }
        if pending > 0 {
            let oldest = self.arrivals[self.flushed];
            if now_ns.saturating_sub(oldest) >= self.policy.max_wait_ns {
                return self.take_flush(FlushTrigger::Deadline);
            }
            if self.admitted == self.arrivals.len() {
                // End of history: nothing further can arrive, so waiting
                // for the buffer to fill is pointless — drain now.
                return self.take_flush(FlushTrigger::Drain);
            }
            return Step::WaitUntil(
                (oldest + self.policy.max_wait_ns).min(self.arrivals[self.admitted]),
            );
        }
        if self.admitted == self.arrivals.len() {
            return Step::Done;
        }
        Step::WaitUntil(self.arrivals[self.admitted])
    }

    fn take_flush(&mut self, trigger: FlushTrigger) -> Step {
        let start = self.flushed;
        // Overload can pile up more than max_ops between two driver
        // turns; hand the whole backlog to one coalesced flush rather
        // than dribbling it out a bucket at a time.
        let end = self.admitted;
        self.flushed = end;
        Step::Flush {
            start,
            end,
            trigger,
        }
    }

    /// Backpressure: delays every not-yet-admitted arrival so the next
    /// one is no earlier than `to_ns`, returning the shift applied (0 if
    /// the schedule was already beyond `to_ns`). Admitted ops keep their
    /// original arrivals — they were already late, and the deadline-miss
    /// accounting should say so.
    pub fn shift_tail(&mut self, to_ns: u64) -> u64 {
        let Some(&next) = self.arrivals.get(self.admitted) else {
            return 0;
        };
        let shift = to_ns.saturating_sub(next);
        if shift > 0 {
            for a in &mut self.arrivals[self.admitted..] {
                *a += shift;
            }
        }
        shift
    }
}

/// Maps admission ticks onto a nanosecond arrival schedule whose mean
/// rate is `rate_ops_s`: `n` ops span `n / rate` seconds, with each
/// arrival placed proportionally to its tick offset — relative bursts in
/// the tick history survive the rescale. Integer interpolation keeps the
/// schedule bit-exact for a given `(ticks, rate)`.
pub fn rate_schedule(ticks: &[u64], rate_ops_s: f64) -> Vec<u64> {
    assert!(
        rate_ops_s.is_finite() && rate_ops_s > 0.0,
        "rate must be positive"
    );
    let n = ticks.len();
    if n == 0 {
        return Vec::new();
    }
    let total_ns = (n as f64 / rate_ops_s * 1e9) as u128;
    let t0 = ticks[0];
    let span = ticks[n - 1] - t0;
    if span == 0 {
        return vec![0; n];
    }
    ticks
        .iter()
        .map(|&t| ((t - t0) as u128 * total_ns / span as u128) as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Virtual-clock driver: advances now exactly as the scheduler asks,
    /// with zero processing time, returning the flush partition.
    fn drive(arrivals: Vec<u64>, policy: FlushPolicy) -> Vec<(usize, usize, FlushTrigger)> {
        let mut s = Scheduler::new(arrivals, policy);
        let mut now = 0;
        let mut out = Vec::new();
        loop {
            match s.step(now) {
                Step::Flush {
                    start,
                    end,
                    trigger,
                } => out.push((start, end, trigger)),
                Step::WaitUntil(t) => {
                    assert!(t > now, "scheduler must make progress");
                    now = t;
                }
                Step::Done => break,
            }
        }
        out
    }

    #[test]
    fn size_trigger_partitions_evenly() {
        let arrivals: Vec<u64> = (0..10).map(|i| i * 100).collect();
        let flushes = drive(arrivals, FlushPolicy::new(4, u64::MAX / 2));
        assert_eq!(
            flushes,
            vec![
                (0, 4, FlushTrigger::Size),
                (4, 8, FlushTrigger::Size),
                (8, 10, FlushTrigger::Drain),
            ]
        );
    }

    #[test]
    fn deadline_trigger_flushes_stragglers() {
        // Two ops arrive close together, the third much later: the wait
        // bound fires before the buffer fills.
        let flushes = drive(vec![0, 10, 10_000], FlushPolicy::new(3, 100));
        assert_eq!(
            flushes,
            vec![(0, 2, FlushTrigger::Deadline), (2, 3, FlushTrigger::Drain)]
        );
    }

    #[test]
    fn empty_schedule_is_done_immediately() {
        let mut s = Scheduler::new(Vec::new(), FlushPolicy::new(8, 100));
        assert_eq!(s.step(0), Step::Done);
    }

    #[test]
    fn overload_backlog_flushes_as_one_batch() {
        let mut s = Scheduler::new(vec![0, 1, 2, 3, 4, 5], FlushPolicy::new(2, 1_000));
        // The driver was stuck until t=100: the whole backlog comes out
        // in one flush, not three buckets.
        assert_eq!(
            s.step(100),
            Step::Flush {
                start: 0,
                end: 6,
                trigger: FlushTrigger::Size
            }
        );
        assert_eq!(s.step(100), Step::Done);
    }

    #[test]
    fn virtual_drive_is_deterministic() {
        let arrivals: Vec<u64> = (0..50).map(|i| i * 37 % 1000 + i * 20).collect();
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let a = drive(sorted.clone(), FlushPolicy::new(7, 111));
        let b = drive(sorted, FlushPolicy::new(7, 111));
        assert_eq!(a, b);
    }

    #[test]
    fn shift_tail_delays_only_unadmitted_ops() {
        let mut s = Scheduler::new(vec![0, 10, 20, 1000, 1010], FlushPolicy::new(3, 500));
        assert!(matches!(
            s.step(25),
            Step::Flush {
                start: 0,
                end: 3,
                ..
            }
        ));
        let shifted = s.shift_tail(1500);
        assert_eq!(shifted, 500);
        assert_eq!(s.arrival(3), 1500);
        assert_eq!(s.arrival(4), 1510);
        // Already-admitted arrivals are untouched.
        assert_eq!(s.arrival(0), 0);
        assert_eq!(s.shift_tail(100), 0, "never pulls the schedule earlier");
    }

    #[test]
    fn rate_schedule_hits_the_mean_rate_and_keeps_shape() {
        // 11 ops at 1000 ops/s → 11 ms span.
        let ticks: Vec<u64> = (0..11).map(|i| 5000 + i * 100).collect();
        let ns = rate_schedule(&ticks, 1000.0);
        assert_eq!(ns[0], 0);
        assert_eq!(*ns.last().unwrap(), 11_000_000);
        // Uniform ticks stay uniform.
        for w in ns.windows(2) {
            assert_eq!(w[1] - w[0], 1_100_000);
        }
        // A burst stays a burst: equal tick gaps map to equal ns gaps.
        let bursty = vec![0, 1, 2, 1000];
        let ns = rate_schedule(&bursty, 2000.0);
        assert!(ns[1] - ns[0] < (ns[3] - ns[2]) / 100);
    }

    #[test]
    fn degenerate_schedules_are_safe() {
        assert!(rate_schedule(&[], 100.0).is_empty());
        assert_eq!(rate_schedule(&[42], 100.0), vec![0]);
        assert_eq!(rate_schedule(&[7, 7, 7], 100.0), vec![0, 0, 0]);
    }
}
