//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6), plus the ablations called out in DESIGN.md.
//!
//! Each experiment id maps to one function in [`exps`]; the binary
//! `experiments` dispatches on the id, runs the workload at the requested
//! scale, prints the same rows/series the paper reports, and dumps JSON
//! records under `results/`. See DESIGN.md §6 for the experiment index
//! and EXPERIMENTS.md for paper-vs-measured outcomes.

pub mod exps;
pub mod microbench;
pub mod parbench;
pub mod phasebench;
pub mod report;
pub mod sched;
pub mod stream;

pub use report::{measure, Ctx, Record, Sink};
