//! Criterion microbench: LCC batch vs deduced incremental vs the exact
//! and Bloom-approximate streaming baselines at |ΔG| = 1% on the LJ
//! stand-in (paper Fig. 7(f) in miniature).

use criterion::{criterion_group, criterion_main, Criterion};
use incgraph_algos::LccState;
use incgraph_baselines::{BloomLcc, DynLcc};
use incgraph_workloads::{random_batch_pct, Dataset};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g0 = Dataset::LiveJournal.graph(false, 0.15);
    let batch = random_batch_pct(&g0, 1.0, 1, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = c.benchmark_group("lcc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("batch_lcc_fp", |b| {
        b.iter(|| std::hint::black_box(LccState::batch(&g1)))
    });
    group.bench_function("inc_lcc", |b| {
        b.iter_batched(
            || LccState::batch(&g0).0,
            |mut state| {
                state.update(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("dynlcc_exact_unit_replay", |b| {
        b.iter_batched(
            || DynLcc::new(&g0),
            |mut state| {
                let mut g = g0.clone();
                for unit in batch.as_units() {
                    let applied = unit.apply(&mut g);
                    for op in applied.ops() {
                        state.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
                    }
                }
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("dynlcc_bloom_unit_replay", |b| {
        b.iter_batched(
            || BloomLcc::new(&g0),
            |mut state| {
                let mut g = g0.clone();
                for unit in batch.as_units() {
                    let applied = unit.apply(&mut g);
                    for op in applied.ops() {
                        state.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
                    }
                }
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
