//! Microbench: LCC batch vs deduced incremental vs the exact
//! and Bloom-approximate streaming baselines at |ΔG| = 1% on the LJ
//! stand-in (paper Fig. 7(f) in miniature).

use incgraph_algos::LccState;
use incgraph_baselines::{BloomLcc, DynLcc};
use incgraph_bench::microbench::Group;
use incgraph_workloads::{random_batch_pct, Dataset};

fn main() {
    let g0 = Dataset::LiveJournal.graph(false, 0.15);
    let batch = random_batch_pct(&g0, 1.0, 1, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = Group::new("lcc");

    group.bench("batch_lcc_fp", || {
        std::hint::black_box(LccState::batch(&g1))
    });
    group.bench_batched(
        "inc_lcc",
        || LccState::batch(&g0).0,
        |mut state| {
            state.update(&g1, &applied);
            state
        },
    );
    group.bench_batched(
        "dynlcc_exact_unit_replay",
        || DynLcc::new(&g0),
        |mut state| {
            let mut g = g0.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut g);
                for op in applied.ops() {
                    state.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
                }
            }
            state
        },
    );
    group.bench_batched(
        "dynlcc_bloom_unit_replay",
        || BloomLcc::new(&g0),
        |mut state| {
            let mut g = g0.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut g);
                for op in applied.ops() {
                    state.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
                }
            }
            state
        },
    );
}
