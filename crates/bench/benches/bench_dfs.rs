//! Criterion microbench: DFS batch vs deduced incremental vs DynDFS at a
//! small |ΔG| (0.25%), where the paper places IncDFS's winning regime.

use criterion::{criterion_group, criterion_main, Criterion};
use incgraph_algos::DfsState;
use incgraph_baselines::DynDfs;
use incgraph_workloads::{random_batch_pct, Dataset};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g0 = Dataset::Orkut.graph(true, 0.15);
    let batch = random_batch_pct(&g0, 0.25, 100, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = c.benchmark_group("dfs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("batch_dfs_fp", |b| {
        b.iter(|| std::hint::black_box(DfsState::batch(&g1)))
    });
    group.bench_function("inc_dfs", |b| {
        b.iter_batched(
            || DfsState::batch(&g0).0,
            |mut state| {
                state.update(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("dyndfs_unit_replay", |b| {
        b.iter_batched(
            || DynDfs::new(&g0),
            |mut state| {
                let mut g = g0.clone();
                for unit in batch.as_units() {
                    let applied = unit.apply(&mut g);
                    for op in applied.ops() {
                        state.apply_unit(&g, op.inserted, op.src, op.dst);
                    }
                }
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
