//! Microbench: DFS batch vs deduced incremental vs DynDFS at a
//! small |ΔG| (0.25%), where the paper places IncDFS's winning regime.

use incgraph_algos::DfsState;
use incgraph_baselines::DynDfs;
use incgraph_bench::microbench::Group;
use incgraph_workloads::{random_batch_pct, Dataset};

fn main() {
    let g0 = Dataset::Orkut.graph(true, 0.15);
    let batch = random_batch_pct(&g0, 0.25, 100, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = Group::new("dfs");

    group.bench("batch_dfs_fp", || {
        std::hint::black_box(DfsState::batch(&g1))
    });
    group.bench_batched(
        "inc_dfs",
        || DfsState::batch(&g0).0,
        |mut state| {
            state.update(&g1, &applied);
            state
        },
    );
    group.bench_batched(
        "dyndfs_unit_replay",
        || DynDfs::new(&g0),
        |mut state| {
            let mut g = g0.clone();
            for unit in batch.as_units() {
                let applied = unit.apply(&mut g);
                for op in applied.ops() {
                    state.apply_unit(&g, op.inserted, op.src, op.dst);
                }
            }
            state
        },
    );
}
