//! Criterion microbench: SSSP batch vs deduced incremental vs baselines
//! at |ΔG| = 1% on the LJ stand-in (paper Fig. 7(a,b) in miniature).

use criterion::{criterion_group, criterion_main, Criterion};
use incgraph_algos::SsspState;
use incgraph_baselines::DynDij;
use incgraph_workloads::{random_batch_pct, sample_sources, Dataset};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g0 = Dataset::LiveJournal.graph(true, 0.15);
    let src = sample_sources(&g0, 1, 1)[0];
    let batch = random_batch_pct(&g0, 1.0, 100, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = c.benchmark_group("sssp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("batch_dijkstra", |b| {
        b.iter(|| std::hint::black_box(SsspState::batch(&g1, src)))
    });
    group.bench_function("inc_sssp", |b| {
        b.iter_batched(
            || SsspState::batch(&g0, src).0,
            |mut state| {
                state.update(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("inc_sssp_pe_reset", |b| {
        b.iter_batched(
            || SsspState::batch(&g0, src).0,
            |mut state| {
                state.update_pe_reset(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("dyndij", |b| {
        b.iter_batched(
            || DynDij::new(&g0, src),
            |mut state| {
                state.apply_batch(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
