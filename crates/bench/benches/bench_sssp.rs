//! Microbench: SSSP batch vs deduced incremental vs baselines
//! at |ΔG| = 1% on the LJ stand-in (paper Fig. 7(a,b) in miniature).

use incgraph_algos::SsspState;
use incgraph_baselines::DynDij;
use incgraph_bench::microbench::Group;
use incgraph_workloads::{random_batch_pct, sample_sources, Dataset};

fn main() {
    let g0 = Dataset::LiveJournal.graph(true, 0.15);
    let src = sample_sources(&g0, 1, 1)[0];
    let batch = random_batch_pct(&g0, 1.0, 100, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = Group::new("sssp");

    group.bench("batch_dijkstra", || {
        std::hint::black_box(SsspState::batch(&g1, src))
    });
    group.bench_batched(
        "inc_sssp",
        || SsspState::batch(&g0, src).0,
        |mut state| {
            state.update(&g1, &applied);
            state
        },
    );
    group.bench_batched(
        "inc_sssp_pe_reset",
        || SsspState::batch(&g0, src).0,
        |mut state| {
            state.update_pe_reset(&g1, &applied);
            state
        },
    );
    group.bench_batched(
        "dyndij",
        || DynDij::new(&g0, src),
        |mut state| {
            state.apply_batch(&g1, &applied);
            state
        },
    );
}
