//! Criterion microbench: cost split between the initial scope function
//! `h` and the resumed step function (the paper's Exp-2(2d) measures h's
//! share of total incremental cost). The full update is measured against
//! a variant that is forced to do everything through `h`'s conservative
//! sibling (PE reset), isolating how much the bounded scope saves.

use criterion::{criterion_group, criterion_main, Criterion};
use incgraph_algos::sssp::SsspSpec;
use incgraph_algos::SsspState;
use incgraph_core::run_fixpoint;
use incgraph_core::Status;
use incgraph_workloads::{random_batch_pct, sample_sources, Dataset};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g0 = Dataset::WikiDe.graph(true, 0.15);
    let src = sample_sources(&g0, 1, 1)[0];
    let batch = random_batch_pct(&g0, 1.0, 100, 9);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = c.benchmark_group("scope");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("inc_update_total", |b| {
        b.iter_batched(
            || SsspState::batch(&g0, src).0,
            |mut state| {
                state.update(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    // Step-function-only lower bound: re-run the fixpoint from the true
    // final status with an empty scope (pure engine setup cost).
    group.bench_function("engine_resume_empty_scope", |b| {
        let spec = SsspSpec::new(&g1, src);
        let (final_state, _) = SsspState::batch(&g1, src);
        b.iter_batched(
            || Status::from_values(final_state.distances().to_vec()),
            |mut status| {
                run_fixpoint(&spec, &mut status, std::iter::empty());
                status
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
