//! Microbench: cost split between the initial scope function
//! `h` and the resumed step function (the paper's Exp-2(2d) measures h's
//! share of total incremental cost). The full update is measured against
//! a variant that is forced to do everything through `h`'s conservative
//! sibling (PE reset), isolating how much the bounded scope saves.

use incgraph_algos::sssp::SsspSpec;
use incgraph_algos::SsspState;
use incgraph_bench::microbench::Group;
use incgraph_core::run_fixpoint;
use incgraph_core::Status;
use incgraph_workloads::{random_batch_pct, sample_sources, Dataset};

fn main() {
    let g0 = Dataset::WikiDe.graph(true, 0.15);
    let src = sample_sources(&g0, 1, 1)[0];
    let batch = random_batch_pct(&g0, 1.0, 100, 9);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = Group::new("scope");

    group.bench_batched(
        "inc_update_total",
        || SsspState::batch(&g0, src).0,
        |mut state| {
            state.update(&g1, &applied);
            state
        },
    );
    // Step-function-only lower bound: re-run the fixpoint from the true
    // final status with an empty scope (pure engine setup cost).
    let spec = SsspSpec::new(&g1, src);
    let (final_state, _) = SsspState::batch(&g1, src);
    group.bench_batched(
        "engine_resume_empty_scope",
        || Status::from_values(final_state.distances().to_vec()),
        |mut status| {
            run_fixpoint(&spec, &mut status, std::iter::empty());
            status
        },
    );
}
