//! Microbench: CC batch vs deduced incremental (timestamped and
//! PE-reset strategies) vs the HDT baseline at |ΔG| = 1% on the OKT
//! stand-in (paper Fig. 7(c) in miniature).

use incgraph_algos::CcState;
use incgraph_baselines::DynCc;
use incgraph_bench::microbench::Group;
use incgraph_workloads::{random_batch_pct, Dataset};

fn main() {
    let g0 = Dataset::Orkut.graph(false, 0.15);
    let batch = random_batch_pct(&g0, 1.0, 1, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = Group::new("cc");

    group.bench("batch_cc_fp", || std::hint::black_box(CcState::batch(&g1)));
    group.bench_batched(
        "inc_cc",
        || CcState::batch(&g0).0,
        |mut state| {
            state.update(&g1, &applied);
            state
        },
    );
    group.bench_batched(
        "inc_cc_pe_reset",
        || CcState::batch(&g0).0,
        |mut state| {
            state.update_pe_reset(&g1, &applied);
            state
        },
    );
    group.bench_batched(
        "dyncc_hdt",
        || DynCc::new(&g0),
        |mut state| {
            state.apply_batch(&applied);
            std::hint::black_box(state.components());
            state
        },
    );
}
