//! Criterion microbench: CC batch vs deduced incremental (timestamped and
//! PE-reset strategies) vs the HDT baseline at |ΔG| = 1% on the OKT
//! stand-in (paper Fig. 7(c) in miniature).

use criterion::{criterion_group, criterion_main, Criterion};
use incgraph_algos::CcState;
use incgraph_baselines::DynCc;
use incgraph_workloads::{random_batch_pct, Dataset};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g0 = Dataset::Orkut.graph(false, 0.15);
    let batch = random_batch_pct(&g0, 1.0, 1, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = c.benchmark_group("cc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("batch_cc_fp", |b| {
        b.iter(|| std::hint::black_box(CcState::batch(&g1)))
    });
    group.bench_function("inc_cc", |b| {
        b.iter_batched(
            || CcState::batch(&g0).0,
            |mut state| {
                state.update(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("inc_cc_pe_reset", |b| {
        b.iter_batched(
            || CcState::batch(&g0).0,
            |mut state| {
                state.update_pe_reset(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("dyncc_hdt", |b| {
        b.iter_batched(
            || DynCc::new(&g0),
            |mut state| {
                state.apply_batch(&applied);
                std::hint::black_box(state.components());
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
