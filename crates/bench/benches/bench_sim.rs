//! Microbench: Sim batch vs deduced incremental vs IncMatch at
//! |ΔG| = 1% on the DP stand-in (paper Fig. 7(d,e) in miniature).

use incgraph_algos::SimState;
use incgraph_baselines::IncMatch;
use incgraph_bench::microbench::Group;
use incgraph_workloads::{random_batch_pct, random_pattern, Dataset};

fn main() {
    let g0 = Dataset::DbPedia.graph(true, 0.15);
    let q = random_pattern(&g0, 4, 6, 7);
    let batch = random_batch_pct(&g0, 1.0, 100, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = Group::new("sim");

    group.bench("batch_sim_fp", || {
        std::hint::black_box(SimState::batch(&g1, q.clone()))
    });
    group.bench_batched(
        "inc_sim",
        || SimState::batch(&g0, q.clone()).0,
        |mut state| {
            state.update(&g1, &applied);
            state
        },
    );
    group.bench_batched(
        "inc_sim_pe_reset",
        || SimState::batch(&g0, q.clone()).0,
        |mut state| {
            state.update_pe_reset(&g1, &applied);
            state
        },
    );
    group.bench_batched(
        "incmatch",
        || IncMatch::new(&g0, q.clone()),
        |mut state| {
            state.apply_batch(&g1, &applied);
            state
        },
    );
}
