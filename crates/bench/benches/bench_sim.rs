//! Criterion microbench: Sim batch vs deduced incremental vs IncMatch at
//! |ΔG| = 1% on the DP stand-in (paper Fig. 7(d,e) in miniature).

use criterion::{criterion_group, criterion_main, Criterion};
use incgraph_algos::SimState;
use incgraph_baselines::IncMatch;
use incgraph_workloads::{random_batch_pct, random_pattern, Dataset};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g0 = Dataset::DbPedia.graph(true, 0.15);
    let q = random_pattern(&g0, 4, 6, 7);
    let batch = random_batch_pct(&g0, 1.0, 100, 42);
    let mut g1 = g0.clone();
    let applied = batch.apply(&mut g1);

    let mut group = c.benchmark_group("sim");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("batch_sim_fp", |b| {
        b.iter(|| std::hint::black_box(SimState::batch(&g1, q.clone())))
    });
    group.bench_function("inc_sim", |b| {
        b.iter_batched(
            || SimState::batch(&g0, q.clone()).0,
            |mut state| {
                state.update(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("inc_sim_pe_reset", |b| {
        b.iter_batched(
            || SimState::batch(&g0, q.clone()).0,
            |mut state| {
                state.update_pe_reset(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("incmatch", |b| {
        b.iter_batched(
            || IncMatch::new(&g0, q.clone()),
            |mut state| {
                state.apply_batch(&g1, &applied);
                state
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
