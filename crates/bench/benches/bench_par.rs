//! Microbench: sequential engine (binary heap over `Vec<Vec<_>>` rows)
//! vs the parallel engine (bucket queue + epoch bitmaps over flat CSR),
//! batch and incremental, plus a CSR-overlay variant that patches ΔG
//! onto an immutable snapshot instead of re-flattening the graph.
//!
//! Thread count comes from `INCGRAPH_BENCH_THREADS` (default 1; with 1
//! shard the parallel engine runs inline, isolating the bucket-queue and
//! CSR gains from the sharding itself).

use incgraph_algos::cc::CcSpec;
use incgraph_algos::{CcState, LccState, SsspState};
use incgraph_bench::microbench::Group;
use incgraph_core::{FixpointSpec, ParEngine, Status};
use incgraph_graph::{CsrOverlay, CsrSnapshot};
use incgraph_workloads::{random_batch_pct, sample_sources, Dataset};

fn threads() -> usize {
    std::env::var("INCGRAPH_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

fn main() {
    let t = threads();
    println!("threads: {t}");

    // SSSP: directed, weighted.
    {
        let g0 = Dataset::LiveJournal.graph(true, 1.0);
        let delta = random_batch_pct(&g0, 1.0, 100, 42);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);
        let src = sample_sources(&g0, 1, 7)[0];

        let mut group = Group::new("sssp");
        group.bench("batch_seq", || SsspState::batch(&g1, src));
        group.bench("batch_par", || SsspState::batch_par(&g1, src, t));
        group.bench_batched(
            "inc_seq",
            || SsspState::batch(&g0, src).0,
            |mut s| {
                s.update(&g1, &applied);
                s
            },
        );
        group.bench_batched(
            "inc_par",
            || SsspState::batch_par(&g0, src, t).0,
            |mut s| {
                s.update(&g1, &applied);
                s
            },
        );
    }

    // CC: undirected, plus the ΔG-overlay variant of the parallel batch.
    {
        let g0 = Dataset::LiveJournal.graph(false, 1.0);
        let delta = random_batch_pct(&g0, 1.0, 1, 43);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);
        let csr0 = CsrSnapshot::new(&g0);

        let mut group = Group::new("cc");
        group.bench("batch_seq", || CcState::batch(&g1));
        group.bench("batch_par", || CcState::batch_par(&g1, t));
        // Same fixpoint over base-snapshot + ΔG patch rows: the overlay
        // skips the O(|G|) CSR rebuild that `batch_par` pays on g1.
        group.bench("batch_par_overlay", || {
            let mut ov = CsrOverlay::new(&csr0);
            ov.apply(&applied);
            let spec = CcSpec::new(&ov);
            let mut status = Status::init(&spec, true);
            let mut par = ParEngine::new(spec.num_vars(), t);
            par.run(&spec, &mut status, 0..spec.num_vars());
            status
        });
        group.bench_batched(
            "inc_seq",
            || CcState::batch(&g0).0,
            |mut s| {
                s.update(&g1, &applied);
                s
            },
        );
        group.bench_batched(
            "inc_par",
            || CcState::batch_par(&g0, t).0,
            |mut s| {
                s.update(&g1, &applied);
                s
            },
        );
    }

    // LCC: undirected, triangle-heavy; smaller slice.
    {
        let g0 = Dataset::LiveJournal.graph(false, 0.25);
        let delta = random_batch_pct(&g0, 1.0, 1, 44);
        let mut g1 = g0.clone();
        let applied = delta.apply(&mut g1);

        let mut group = Group::new("lcc");
        group.bench("batch_seq", || LccState::batch(&g1));
        group.bench("batch_par", || LccState::batch_par(&g1, t));
        group.bench_batched(
            "inc_seq",
            || LccState::batch(&g0).0,
            |mut s| {
                s.update(&g1, &applied);
                s
            },
        );
        group.bench_batched(
            "inc_par",
            || LccState::batch_par(&g0, t).0,
            |mut s| {
                s.update(&g1, &applied);
                s
            },
        );
    }
}
