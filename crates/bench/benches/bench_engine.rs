//! Microbench: fixpoint-engine overhead — the generic engine
//! running batch Dijkstra / CC versus hand-rolled implementations (the
//! RR/DynDij constructors double as the hand-rolled references).

use incgraph_algos::{CcState, SsspState};
use incgraph_baselines::RrSssp;
use incgraph_bench::microbench::Group;
use incgraph_workloads::{sample_sources, Dataset};

fn main() {
    let g = Dataset::LiveJournal.graph(true, 0.15);
    let gu = Dataset::LiveJournal.graph(false, 0.15);
    let src = sample_sources(&g, 1, 1)[0];

    let mut group = Group::new("engine");

    group.bench("generic_engine_dijkstra", || {
        std::hint::black_box(SsspState::batch(&g, src))
    });
    group.bench("handrolled_dijkstra", || {
        std::hint::black_box(RrSssp::new(&g, src))
    });
    group.bench("generic_engine_cc", || {
        std::hint::black_box(CcState::batch(&gu))
    });
}
