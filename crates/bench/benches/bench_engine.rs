//! Criterion microbench: fixpoint-engine overhead — the generic engine
//! running batch Dijkstra / CC versus hand-rolled implementations (the
//! RR/DynDij constructors double as the hand-rolled references).

use criterion::{criterion_group, criterion_main, Criterion};
use incgraph_algos::{CcState, SsspState};
use incgraph_baselines::RrSssp;
use incgraph_workloads::{sample_sources, Dataset};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g = Dataset::LiveJournal.graph(true, 0.15);
    let gu = Dataset::LiveJournal.graph(false, 0.15);
    let src = sample_sources(&g, 1, 1)[0];

    let mut group = c.benchmark_group("engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("generic_engine_dijkstra", |b| {
        b.iter(|| std::hint::black_box(SsspState::batch(&g, src)))
    });
    group.bench_function("handrolled_dijkstra", |b| {
        b.iter(|| std::hint::black_box(RrSssp::new(&g, src)))
    });
    group.bench_function("generic_engine_cc", |b| {
        b.iter(|| std::hint::black_box(CcState::batch(&gu)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
