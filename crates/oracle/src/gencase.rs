//! Seeded case generation: one `u64` seed deterministically expands into
//! a full [`Case`] — topology, labels, query parameters, and a long
//! schedule of *effective* update batches (a live mirror of the graph is
//! maintained so inserts hit absent edges and deletes hit present ones,
//! matching the paper's experimental ΔG mixes instead of degenerating
//! into no-ops).
//!
//! All randomness comes from [`SplitMix64`] — the repository's single
//! sanctioned PRNG — so a seed printed in a fuzz report reproduces the
//! identical case on any machine, offline, forever.

use crate::case::Case;
use crate::runner::ClassId;
use incgraph_graph::rng::SplitMix64;
use incgraph_graph::{gen, DynamicGraph, Label, NodeId, UpdateBatch, Weight};
use incgraph_workloads::random_pattern;

/// Size knobs for generated cases. The defaults keep a single case in the
/// low milliseconds (every round recomputes seven batch fixpoints), so a
/// 200-case smoke run fits a CI budget.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Upper bound on node count (lower bound is 6).
    pub max_nodes: usize,
    /// Upper bound on batches per schedule (lower bound is 2).
    pub max_batches: usize,
    /// Upper bound on unit updates per batch (lower bound is 1).
    pub max_batch_ops: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_nodes: 36,
            max_batches: 6,
            max_batch_ops: 5,
        }
    }
}

/// Topology families the generator rotates through.
const TOPOLOGIES: [&str; 3] = ["uniform", "powerlaw", "grid"];

/// Expands `seed` into a complete case under `cfg`. Deterministic:
/// identical `(seed, cfg)` always yields the identical case.
pub fn gen_case(seed: u64, cfg: &GenConfig) -> Case {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let topology = TOPOLOGIES[rng.gen_range(0..TOPOLOGIES.len())];
    let max_weight: Weight = rng.gen_range(1..=8u32);
    let alphabet: u32 = rng.gen_range(2..=4u32);

    let g = match topology {
        "grid" => {
            let rows = rng.gen_range(2..=6usize);
            let cols = rng.gen_range(2..=(cfg.max_nodes / rows).clamp(2, 6));
            gen::grid(rows, cols, max_weight, rng.next_u64())
        }
        "powerlaw" => {
            let n = rng.gen_range(6..=cfg.max_nodes);
            let m = n * rng.gen_range(1..=3usize);
            let gamma = 2.1 + rng.next_f64() * 0.7;
            let directed = rng.gen_bool(0.5);
            gen::power_law(n, m, gamma, directed, max_weight, alphabet, rng.next_u64())
        }
        _ => {
            let n = rng.gen_range(6..=cfg.max_nodes);
            let m = n * rng.gen_range(1..=3usize);
            let directed = rng.gen_bool(0.5);
            gen::uniform(n, m, directed, max_weight, alphabet, rng.next_u64())
        }
    };

    let nodes = g.node_count();
    let directed = g.is_directed();
    let labels: Vec<Label> = (0..nodes as NodeId).map(|v| g.label(v)).collect();
    let edges: Vec<(NodeId, NodeId, Weight)> = g.edges().collect();

    // Source: prefer a node with outgoing edges so SSSP/Reach are
    // non-degenerate; clamp to 0 on isolated graphs.
    let source = {
        let mut pick = 0;
        for _ in 0..32 {
            let v = rng.gen_range(0..nodes) as NodeId;
            if g.out_degree(v) > 0 {
                pick = v;
                break;
            }
        }
        pick
    };

    // Sim pattern: small shapes, labels drawn from the live graph.
    let pn = rng.gen_range(2..=3usize);
    let pe = rng.gen_range((pn - 1)..=pn);
    let pattern = Some(random_pattern(&g, pn, pe, rng.next_u64()));

    // Effective schedule against a live mirror: an insert-heavy, a
    // delete-heavy, or a mixed regime per case.
    let insert_bias = [0.8, 0.5, 0.25][rng.gen_range(0..3usize)];
    let mut mirror = g.clone();
    let n_batches = rng.gen_range(2..=cfg.max_batches);
    let mut schedule = Vec::with_capacity(n_batches);
    for _ in 0..n_batches {
        let mut batch = UpdateBatch::new();
        let ops = rng.gen_range(1..=cfg.max_batch_ops);
        for _ in 0..ops {
            let live: Vec<(NodeId, NodeId, Weight)> = mirror.edges().collect();
            let do_insert = live.is_empty() || rng.gen_bool(insert_bias);
            if do_insert {
                // Rejection-sample an absent pair; give up after a few
                // tries on dense graphs (the op is then skipped).
                for _ in 0..16 {
                    let u = rng.gen_range(0..nodes) as NodeId;
                    let v = rng.gen_range(0..nodes) as NodeId;
                    if u != v && !mirror.has_edge(u, v) {
                        let w = rng.gen_range(1..=max_weight);
                        batch.insert(u, v, w);
                        mirror.insert_edge(u, v, w);
                        break;
                    }
                }
            } else {
                let (u, v, _) = live[rng.gen_range(0..live.len())];
                batch.delete(u, v);
                mirror.delete_edge(u, v);
            }
        }
        if !batch.is_empty() {
            schedule.push(batch);
        }
    }
    if schedule.is_empty() {
        // Degenerate roll: force one effective op so every case steps.
        let mut batch = UpdateBatch::new();
        match mirror.edges().next() {
            Some((u, v, _)) => {
                batch.delete(u, v);
            }
            None => {
                batch.insert(0, 1, 1);
            }
        }
        schedule.push(batch);
    }

    Case {
        seed,
        directed,
        nodes,
        labels: Some(labels),
        edges,
        schedule,
        // LCC and BC are only defined on undirected graphs; directed
        // cases exercise the other five (a campaign mixes both, so all
        // seven classes get coverage).
        classes: ClassId::ALL
            .into_iter()
            .filter(|c| !directed || !c.requires_undirected())
            .collect(),
        source,
        pattern,
        threads: vec![1, 2, 4],
        fault: None,
        crash_at: None,
        coalesce: false,
        plan: None,
    }
}

/// Expands `seed` into a small random `incgraph-plan/1` program valid
/// for `case`: sources respect directedness (no `lcc`/`bc` on directed
/// graphs), `sim` is always available because generated cases carry a
/// pattern, and every program ends in an aggregate so views stay small.
/// Deterministic in `(seed, case topology)` like the case generator.
pub fn gen_plan(seed: u64, case: &Case) -> String {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xDA7A_F107);
    let mut sources: Vec<String> = vec![
        format!("sssp(source={})", case.source),
        format!("reach(source={})", case.source),
        "cc".into(),
        "dfs".into(),
        "sim".into(),
        "labels".into(),
    ];
    if !case.directed {
        sources.push("lcc".into());
        sources.push("bc".into());
    }
    let mut text = format!("a = {}", sources[rng.gen_range(0..sources.len())]);
    let mut cur = "a";
    // Optional row-level operator over the first source.
    match rng.gen_range(0..3usize) {
        0 => {
            let cmp = ["<", "<=", ">", ">=", "!="][rng.gen_range(0..5usize)];
            let k = rng.gen_range(0..8u64);
            text.push_str(&format!("; b = filter({cur}, val {cmp} {k})"));
            cur = "b";
        }
        1 => {
            let op = ["+", "*", "&", ">>"][rng.gen_range(0..4usize)];
            let k = 1 + rng.gen_range(0..4u64);
            text.push_str(&format!("; b = map({cur}, val {op} {k})"));
            cur = "b";
        }
        _ => {}
    }
    // Optional bilinear join against a second source.
    if rng.gen_bool(0.5) {
        let s2 = sources[rng.gen_range(0..sources.len())].clone();
        let val = ["left", "right", "sum", "min", "max"][rng.gen_range(0..5usize)];
        text.push_str(&format!("; c = {s2}; d = join({cur}, c, val={val})"));
        cur = "d";
    }
    // Terminal: an aggregate, or a threshold feeding a count.
    match rng.gen_range(0..5usize) {
        0 => text.push_str(&format!("; z = sum({cur})")),
        1 => text.push_str(&format!("; z = min({cur})")),
        2 => text.push_str(&format!("; z = max({cur})")),
        3 => {
            let k = rng.gen_range(0..6u64);
            text.push_str(&format!("; t = threshold({cur}, val > {k}); z = count(t)"));
        }
        _ => text.push_str(&format!("; z = count({cur})")),
    }
    text
}

/// Convenience: rebuilds the mirror graph a prefix of the schedule leaves
/// behind — used by tests and the shrinker to reason about live edges.
pub fn graph_after(case: &Case, rounds: usize) -> DynamicGraph {
    let mut g = case.build_graph();
    for batch in case.schedule.iter().take(rounds) {
        batch.apply(&mut g);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = gen_case(99, &cfg);
        let b = gen_case(99, &cfg);
        assert_eq!(a.render(&[]), b.render(&[]));
    }

    #[test]
    fn seeds_cover_all_topology_regimes() {
        let cfg = GenConfig::default();
        let mut directed_seen = false;
        let mut undirected_seen = false;
        let mut delete_seen = false;
        for seed in 0..40 {
            let case = gen_case(seed, &cfg);
            assert!(case.nodes >= 4);
            assert!(!case.schedule.is_empty());
            assert_eq!(case.classes.len(), if case.directed { 5 } else { 7 });
            directed_seen |= case.directed;
            undirected_seen |= !case.directed;
            delete_seen |= case
                .schedule
                .iter()
                .any(|b| b.updates().iter().any(|u| !u.is_insert()));
        }
        assert!(directed_seen && undirected_seen && delete_seen);
    }

    #[test]
    fn generated_plans_parse_and_cover_all_class_sources() {
        use incgraph_dataflow::{Plan, Source};
        let cfg = GenConfig::default();
        let mut classes_seen = Vec::new();
        for seed in 0..60u64 {
            let case = gen_case(seed, &cfg);
            let text = gen_plan(seed, &case);
            assert_eq!(text, gen_plan(seed, &case), "plan gen is deterministic");
            let plan = Plan::parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}: {text}"));
            for s in plan.sources() {
                if let Source::Class { class, .. } = s {
                    assert!(
                        !case.directed || !class.requires_undirected(),
                        "seed {seed} put `{}` on a directed graph",
                        class.name()
                    );
                    if !classes_seen.contains(&class) {
                        classes_seen.push(class);
                    }
                }
            }
        }
        classes_seen.sort_unstable();
        assert_eq!(
            classes_seen,
            ClassId::ALL.to_vec(),
            "60 seeds must draw every class as a plan source"
        );
    }

    #[test]
    fn schedules_are_effective() {
        // Every generated unit update must actually change the graph.
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let case = gen_case(seed, &cfg);
            let mut g = case.build_graph();
            for (i, batch) in case.schedule.iter().enumerate() {
                let applied = batch.apply(&mut g);
                assert_eq!(
                    applied.ops().len(),
                    batch.updates().len(),
                    "seed {seed} batch {i} contains ineffective ops"
                );
            }
        }
    }
}
