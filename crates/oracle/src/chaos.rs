//! Network chaos harness for the incremental graph service.
//!
//! Drives a real [`Server`] through a byte-level fault-injecting TCP
//! proxy while killing and restarting the server process-style (abrupt
//! [`ServerHandle::kill`] plus armed [`CrashPoint`]s firing mid-commit),
//! then audits the survivors' claims against the WAL itself:
//!
//! 1. **No accepted-then-lost**: every batch a client holds an `ACK` for
//!    is present in the recovered WAL.
//! 2. **No double-apply**: no batch appears in the WAL twice, no matter
//!    how many times disconnects forced the client to retry it.
//! 3. **Recovery equals genesis replay**: the essence
//!    ([`IncrementalState::save_state`]) of every one of the seven query
//!    classes after real recovery is byte-identical to a fresh state fed
//!    the scanned WAL from an empty graph — checkpoints, incremental
//!    replay, and fallback recomputes may take any path, but they must
//!    all land on the same fixpoint.
//!
//! Batches are crafted so the audit is decidable offline: client `i`'s
//! batch `k` inserts exactly one edge unique to `(i, k)`, so a WAL scan
//! recovers the full application history without cooperation from the
//! server.
//!
//! [`IncrementalState::save_state`]: incgraph_algos::IncrementalState::save_state

use incgraph_durable::wal::Wal;
use incgraph_durable::{CrashPoint, DurableError, DurableOptions, WAL_NAME};
use incgraph_graph::{DynamicGraph, NodeId, Update, UpdateBatch};
use incgraph_service::client::{Client, ClientError};
use incgraph_service::server::{Server, ServerConfig, ServerHandle};
use incgraph_service::store::{standing_states, Store, StoreLimits, DURABLE_PATTERN_SEED};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Chaos-run parameters.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for every random decision (faults, kill timing).
    pub seed: u64,
    /// Concurrent client sessions.
    pub clients: usize,
    /// Batches each client must get acked.
    pub batches_per_client: usize,
    /// Abrupt server kill/restart cycles injected during the run.
    pub kills: usize,
    /// Whether the proxy cuts connections at random byte offsets (on top
    /// of the kills, which happen either way).
    pub proxy_faults: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            clients: 5,
            batches_per_client: 10,
            kills: 3,
            proxy_faults: true,
        }
    }
}

/// What the run survived, for reporting.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Batches acked across all clients (equals `clients × batches`).
    pub acked: usize,
    /// Duplicate acks observed (retries of already-committed batches).
    pub dup_acks: usize,
    /// Connections the clients had to rebuild.
    pub reconnects: usize,
    /// Abrupt server deaths (kills plus fired crash points).
    pub server_deaths: usize,
    /// Committed batches found in the WAL by the audit.
    pub wal_batches: usize,
    /// Unacked batches present in the WAL (committed, ack lost in
    /// flight): legal, and evidence the dropped-ack path was exercised.
    pub committed_unacked: usize,
    /// Query classes whose essences were verified against genesis replay.
    pub classes_verified: usize,
}

/// An audit violation — any of these is a real robustness bug.
#[derive(Clone, Debug)]
pub enum ChaosFailure {
    /// A client holds an ack for a batch the WAL does not contain.
    AckedButLost {
        /// Client index.
        client: usize,
        /// Client-side batch sequence.
        batch: u64,
    },
    /// A batch appears in the WAL more than once.
    DoubleApply {
        /// Client index.
        client: usize,
        /// Client-side batch sequence.
        batch: u64,
        /// Occurrences found.
        times: usize,
    },
    /// A WAL batch does not decode to any client's schedule.
    ForeignBatch {
        /// WAL sequence of the offending record.
        wal_seq: u64,
    },
    /// A recovered class essence differs from genesis replay.
    EssenceMismatch {
        /// Class name.
        class: &'static str,
    },
    /// Recovered graph shape differs from genesis replay.
    GraphMismatch,
    /// The harness itself could not finish (environment problem).
    Harness(String),
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosFailure::AckedButLost { client, batch } => {
                write!(
                    f,
                    "client {client} batch {batch}: acked but absent from WAL"
                )
            }
            ChaosFailure::DoubleApply {
                client,
                batch,
                times,
            } => write!(f, "client {client} batch {batch}: applied {times} times"),
            ChaosFailure::ForeignBatch { wal_seq } => {
                write!(f, "WAL record {wal_seq} matches no client batch")
            }
            ChaosFailure::EssenceMismatch { class } => {
                write!(f, "{class}: recovered essence differs from genesis replay")
            }
            ChaosFailure::GraphMismatch => write!(f, "recovered graph differs from replay"),
            ChaosFailure::Harness(s) => write!(f, "harness error: {s}"),
        }
    }
}

struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Xorshift(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const GRAPH: &str = "g0";

/// The unique edge encoding batch `k` (1-based) of client `i`: endpoints
/// are disjoint per client and per batch, so a WAL scan decodes the full
/// history. Weight is a function of the edge (benign on re-insert).
fn batch_edge(clients: usize, i: usize, k: u64) -> (NodeId, NodeId, u32) {
    let u = i as NodeId;
    let v = (clients as u64 + k) as NodeId;
    (u, v, 1 + ((u + v) % 7))
}

fn graph_nodes(cfg: &ChaosConfig) -> usize {
    cfg.clients + cfg.batches_per_client + 2
}

// ---------------------------------------------------------------------
// The fault-injecting proxy
// ---------------------------------------------------------------------

struct Proxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Proxy {
    /// Starts the proxy. Each accepted connection dials the *current*
    /// target (servers change ports across restarts) and is assigned a
    /// seeded fault: faithful, or cut at a byte offset in one or both
    /// directions — partial writes, dropped acks, and mid-batch
    /// disconnects all fall out of byte-offset cuts.
    fn start(seed: u64, target: Arc<Mutex<SocketAddr>>, faults: bool) -> io::Result<Proxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("chaos-proxy".into())
            .spawn(move || {
                let mut conn_idx = 0u64;
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    match listener.accept() {
                        Ok((client_side, _)) => {
                            conn_idx += 1;
                            let t = *target.lock().unwrap_or_else(|e| e.into_inner());
                            let server_side =
                                match TcpStream::connect_timeout(&t, Duration::from_millis(250)) {
                                    Ok(s) => s,
                                    Err(_) => continue, // server mid-restart
                                };
                            let mut rng =
                                Xorshift::new(seed ^ conn_idx.wrapping_mul(0x9E3779B97F4A7C15));
                            // 0 = faithful; otherwise cut a direction
                            // (or both) after 5..=404 bytes.
                            let style = if faults { rng.below(4) } else { 0 };
                            let cut = |rng: &mut Xorshift| Some(5 + rng.below(400) as usize);
                            let (c2s_cut, s2c_cut) = match style {
                                1 => (cut(&mut rng), None),
                                2 => (None, cut(&mut rng)),
                                3 => (cut(&mut rng), cut(&mut rng)),
                                _ => (None, None),
                            };
                            pump_pair(client_side, server_side, c2s_cut, s2c_cut, &stop2);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;
        Ok(Proxy {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn pump_pair(
    client_side: TcpStream,
    server_side: TcpStream,
    c2s_cut: Option<usize>,
    s2c_cut: Option<usize>,
    stop: &Arc<AtomicBool>,
) {
    let c2 = client_side.try_clone();
    let s2 = server_side.try_clone();
    let (Ok(c2), Ok(s2)) = (c2, s2) else { return };
    let stop_a = Arc::clone(stop);
    let stop_b = Arc::clone(stop);
    // Detached pumps: they exit on EOF, cut, error, or harness stop.
    let _ = thread::Builder::new()
        .name("chaos-c2s".into())
        .stack_size(64 * 1024)
        .spawn(move || pump(client_side, server_side, c2s_cut, stop_a));
    let _ = thread::Builder::new()
        .name("chaos-s2c".into())
        .stack_size(64 * 1024)
        .spawn(move || pump(s2, c2, s2c_cut, stop_b));
}

/// Copies bytes `from` → `to` until EOF, error, or the cut budget runs
/// out; a cut resets both directions so the client sees a raw drop.
fn pump(mut from: TcpStream, mut to: TcpStream, mut budget: Option<usize>, stop: Arc<AtomicBool>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let mut buf = [0u8; 1024];
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let allowed = match budget {
                    Some(b) => n.min(b),
                    None => n,
                };
                if to.write_all(&buf[..allowed]).is_err() {
                    break;
                }
                if let Some(b) = &mut budget {
                    *b -= allowed;
                    if allowed < n || *b == 0 {
                        break; // the cut fires
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------
// The chaos run
// ---------------------------------------------------------------------

fn durable_options() -> DurableOptions {
    DurableOptions {
        // Frequent automatic checkpoints put MidCheckpoint/PostRename
        // crash points in the line of fire during the run.
        checkpoint_every: Some(3),
        ..DurableOptions::default()
    }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        read_poll: Duration::from_millis(10),
        idle_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    }
}

fn open_server(dir: &Path, nodes: usize) -> Result<ServerHandle, ChaosFailure> {
    // The previous incarnation's lock releases when its store drops;
    // retry briefly to absorb scheduling slack.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Store::open_durable(
            dir,
            GRAPH,
            nodes,
            false,
            durable_options(),
            StoreLimits::default(),
        ) {
            Ok(store) => {
                return Server::start(store, server_config())
                    .map_err(|e| ChaosFailure::Harness(format!("server start: {e}")));
            }
            Err(DurableError::StoreBusy { .. }) if Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(ChaosFailure::Harness(format!("open store: {e}"))),
        }
    }
}

/// Runs the full chaos schedule against `dir` (which must be an empty or
/// fresh directory) and audits the outcome. Returns the report, or the
/// first violation found.
pub fn run_chaos(dir: &Path, cfg: &ChaosConfig) -> Result<ChaosReport, ChaosFailure> {
    std::fs::create_dir_all(dir).map_err(|e| ChaosFailure::Harness(format!("create dir: {e}")))?;
    let nodes = graph_nodes(cfg);
    let server = Arc::new(Mutex::new(Some(open_server(dir, nodes)?)));
    let target = {
        let guard = server.lock().unwrap_or_else(|e| e.into_inner());
        Arc::new(Mutex::new(guard.as_ref().expect("just started").addr()))
    };
    let mut proxy = Proxy::start(cfg.seed, Arc::clone(&target), cfg.proxy_faults)
        .map_err(|e| ChaosFailure::Harness(format!("proxy: {e}")))?;
    let proxy_addr = proxy.addr;

    let acked: Arc<Mutex<HashSet<(usize, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let dup_acks = Arc::new(AtomicUsize::new(0));
    let reconnects = Arc::new(AtomicUsize::new(0));
    let clients_done = Arc::new(AtomicUsize::new(0));

    // Client threads: push every batch until acked, reconnecting through
    // whatever the network does to them.
    let mut workers = Vec::new();
    for i in 0..cfg.clients {
        let cfg = cfg.clone();
        let acked = Arc::clone(&acked);
        let dup_acks = Arc::clone(&dup_acks);
        let reconnects = Arc::clone(&reconnects);
        let clients_done = Arc::clone(&clients_done);
        workers.push(
            thread::Builder::new()
                .name(format!("chaos-cl{i}"))
                .spawn(move || {
                    let r = chaos_client(i, proxy_addr, &cfg, &acked, &dup_acks, &reconnects);
                    clients_done.fetch_add(1, Ordering::Relaxed);
                    r
                })
                .map_err(|e| ChaosFailure::Harness(format!("spawn client: {e}")))?,
        );
    }

    // The executioner: kill/restart cycles while clients are live. Even
    // cycles arm a crash point (death mid-commit); odd cycles kill
    // outright. Every death is abrupt: no checkpoint, no goodbyes.
    let mut rng = Xorshift::new(cfg.seed ^ 0xDEAD);
    let mut deaths = 0usize;
    for cycle in 0..cfg.kills {
        if clients_done.load(Ordering::Relaxed) == cfg.clients {
            break;
        }
        thread::sleep(Duration::from_millis(40 + rng.below(120)));
        let mut guard = server.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(mut handle) = guard.take() {
            if cycle % 2 == 0 {
                let point = CrashPoint::ALL[rng.below(CrashPoint::ALL.len() as u64) as usize];
                handle.arm_crash(GRAPH, point);
                // Give a commit a moment to walk into it; kill anyway if
                // no client happened to write.
                let deadline = Instant::now() + Duration::from_millis(400);
                while !handle.is_stopped() && Instant::now() < deadline {
                    thread::sleep(Duration::from_millis(10));
                }
                if !handle.is_stopped() {
                    handle.kill();
                } else {
                    handle.wait();
                }
            } else {
                handle.kill();
            }
            deaths += 1;
            let next = open_server(dir, nodes)?;
            *target.lock().unwrap_or_else(|e| e.into_inner()) = next.addr();
            *guard = Some(next);
        }
    }

    let mut failure: Option<ChaosFailure> = None;
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(f)) => failure = failure.or(Some(f)),
            Err(_) => failure = failure.or(Some(ChaosFailure::Harness("client panicked".into()))),
        }
    }
    proxy.stop();
    // Graceful final shutdown: drain + checkpoint, then release the dir.
    if let Some(mut handle) = server.lock().unwrap_or_else(|e| e.into_inner()).take() {
        handle.shutdown();
    }
    if let Some(f) = failure {
        return Err(f);
    }

    let acked = Arc::try_unwrap(acked)
        .map_err(|_| ChaosFailure::Harness("acked set still shared".into()))?
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let mut report = ChaosReport {
        acked: acked.len(),
        dup_acks: dup_acks.load(Ordering::Relaxed),
        reconnects: reconnects.load(Ordering::Relaxed),
        server_deaths: deaths,
        ..ChaosReport::default()
    };
    audit(dir, cfg, &acked, &mut report)?;
    Ok(report)
}

fn chaos_client(
    i: usize,
    proxy_addr: SocketAddr,
    cfg: &ChaosConfig,
    acked: &Mutex<HashSet<(usize, u64)>>,
    dup_acks: &AtomicUsize,
    reconnects: &AtomicUsize,
) -> Result<(), ChaosFailure> {
    let token = format!("chaos-{i}");
    let mut client: Option<Client> = None;
    for k in 1..=cfg.batches_per_client as u64 {
        let (u, v, w) = batch_edge(cfg.clients, i, k);
        let mut batch = UpdateBatch::new();
        batch.insert(u, v, w);
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if attempts > 500 {
                return Err(ChaosFailure::Harness(format!(
                    "client {i} gave up on batch {k}"
                )));
            }
            let c = match client.as_mut() {
                Some(c) => c,
                None => {
                    reconnects.fetch_add(1, Ordering::Relaxed);
                    match Client::connect_timeout(proxy_addr, &token, Duration::from_secs(2)) {
                        Ok(c) => client.insert(c),
                        Err(_) => {
                            thread::sleep(Duration::from_millis(20));
                            continue;
                        }
                    }
                }
            };
            match c.update(GRAPH, k, &batch) {
                Ok(ack) => {
                    if ack.dup {
                        dup_acks.fetch_add(1, Ordering::Relaxed);
                    }
                    acked
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert((i, k));
                    break;
                }
                Err(ClientError::Busy { retry_after_ms }) => {
                    thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 100)));
                }
                Err(ClientError::Server { code, detail }) => {
                    // `readonly` clears on restart; anything else is a
                    // protocol-level bug worth failing loudly on.
                    if code == "readonly" {
                        thread::sleep(Duration::from_millis(50));
                    } else {
                        return Err(ChaosFailure::Harness(format!(
                            "client {i} batch {k}: unexpected ERR {code} {detail}"
                        )));
                    }
                }
                Err(_) => {
                    // Disconnect, goodbye, timeout, torn reply — rebuild
                    // the connection and retry the same sequence number.
                    client = None;
                    thread::sleep(Duration::from_millis(15));
                }
            }
        }
    }
    if let Some(c) = client.take() {
        let _ = c.bye();
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The audit
// ---------------------------------------------------------------------

fn audit(
    dir: &Path,
    cfg: &ChaosConfig,
    acked: &HashSet<(usize, u64)>,
    report: &mut ChaosReport,
) -> Result<(), ChaosFailure> {
    // 1 + 2: decode the WAL and count each client batch's occurrences.
    let opened = Wal::open(&dir.join(WAL_NAME))
        .map_err(|e| ChaosFailure::Harness(format!("wal open: {e}")))?;
    let records = opened.records;
    report.wal_batches = records.len();

    let mut index: HashMap<(NodeId, NodeId), (usize, u64)> = HashMap::new();
    for i in 0..cfg.clients {
        for k in 1..=cfg.batches_per_client as u64 {
            let (u, v, _) = batch_edge(cfg.clients, i, k);
            index.insert((u, v), (i, k));
        }
    }
    let mut seen: HashMap<(usize, u64), usize> = HashMap::new();
    for rec in &records {
        let ups = rec.batch.updates();
        let key = match ups {
            [Update::Insert { src, dst, .. }] => index.get(&(*src, *dst)),
            _ => None,
        };
        match key {
            Some(&ik) => *seen.entry(ik).or_insert(0) += 1,
            None => return Err(ChaosFailure::ForeignBatch { wal_seq: rec.seq }),
        }
    }
    for (&(i, k), &times) in &seen {
        if times > 1 {
            return Err(ChaosFailure::DoubleApply {
                client: i,
                batch: k,
                times,
            });
        }
        if !acked.contains(&(i, k)) {
            // Committed but the ack never made it back — legal (the
            // client retried into a dup ack, or gave up is impossible
            // since all clients finished), and proof the dropped-ack
            // path ran.
            report.committed_unacked += 1;
        }
    }
    for &(i, k) in acked {
        if !seen.contains_key(&(i, k)) {
            return Err(ChaosFailure::AckedButLost {
                client: i,
                batch: k,
            });
        }
    }

    // 3: real recovery vs genesis replay, essence by essence.
    let (session, _report) = incgraph_durable::recover(dir, durable_options())
        .map_err(|e| ChaosFailure::Harness(format!("recover: {e}")))?;
    let mut replay_graph = DynamicGraph::new(false, graph_nodes(cfg));
    let mut replay_states = standing_states(&replay_graph, DURABLE_PATTERN_SEED);
    for rec in &records {
        let applied = rec
            .batch
            .apply_validated(&mut replay_graph)
            .map_err(|e| ChaosFailure::Harness(format!("replay: {e:?}")))?;
        for s in replay_states.iter_mut() {
            s.update(&replay_graph, &applied);
        }
    }
    let g = session.graph();
    if g.node_count() != replay_graph.node_count() || g.edge_count() != replay_graph.edge_count() {
        return Err(ChaosFailure::GraphMismatch);
    }
    let recovered = session.states();
    if recovered.len() != replay_states.len() {
        return Err(ChaosFailure::Harness("state count mismatch".into()));
    }
    for (a, b) in recovered.iter().zip(replay_states.iter()) {
        if a.save_state() != b.save_state() {
            return Err(ChaosFailure::EssenceMismatch { class: a.name() });
        }
        report.classes_verified += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("incgraph-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn quiet_network_run_is_clean() {
        let dir = temp_dir("quiet");
        let report = run_chaos(
            &dir,
            &ChaosConfig {
                seed: 11,
                clients: 3,
                batches_per_client: 4,
                kills: 0,
                proxy_faults: false,
            },
        )
        .expect("quiet run must be clean");
        assert_eq!(report.acked, 12);
        assert_eq!(report.wal_batches, 12);
        assert_eq!(report.server_deaths, 0);
        assert_eq!(report.classes_verified, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaotic_run_survives_and_audits_clean() {
        let dir = temp_dir("full");
        let report = run_chaos(
            &dir,
            &ChaosConfig {
                seed: 0xFEED,
                clients: 4,
                batches_per_client: 8,
                kills: 3,
                proxy_faults: true,
            },
        )
        .unwrap_or_else(|f| panic!("chaos audit failed: {f}"));
        assert_eq!(report.acked, 32, "{report:?}");
        assert!(report.server_deaths >= 1, "{report:?}");
        assert_eq!(report.classes_verified, 7, "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
