//! Greedy ddmin-style case minimization.
//!
//! Given a failing [`Case`], the shrinker searches for the smallest case
//! that still trips *the same oracle on the same class* (the failure's
//! fingerprint — chasing a different bug mid-shrink would produce a
//! misleading corpus entry). Reduction passes, cheapest first:
//!
//! 1. truncate the schedule right after the failing round;
//! 2. narrow the class list to the failing class (dropping the Sim
//!    pattern when Sim leaves the list);
//! 3. narrow the thread list (a seq-vs-par failure keeps `[1, t]`,
//!    everything else drops to `[1]`);
//! 4. ddmin over schedule batches;
//! 5. ddmin over the remaining unit updates (batch boundaries kept,
//!    emptied batches dropped);
//! 6. ddmin over base-graph edges;
//! 7. flatten labels to all-zero and trim unreferenced trailing nodes.
//!
//! Every candidate is re-run through the full oracle stack
//! ([`run_case`]), so a minimized case is a *certified* reproducer, and
//! the total number of oracle runs is reported in [`ShrinkStats`].

use crate::case::Case;
use crate::runner::{run_case, ClassId, Fault, OracleFailure, OracleKind};
use incgraph_graph::{Update, UpdateBatch};

/// Work accounting for one shrink.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkStats {
    /// Oracle runs attempted.
    pub attempts: usize,
    /// Attempts that still reproduced the failure (accepted reductions).
    pub successes: usize,
}

/// The failure fingerprint a candidate must reproduce, plus the attempt
/// budget that bounds shrink time on pathological cases.
struct Shrinker {
    fault: Option<Fault>,
    class: ClassId,
    kind: OracleKind,
    stats: ShrinkStats,
    max_attempts: usize,
}

impl Shrinker {
    /// Whether `candidate` still fails the same way.
    fn holds(&mut self, candidate: &Case) -> bool {
        if self.stats.attempts >= self.max_attempts {
            return false;
        }
        self.stats.attempts += 1;
        let ok = match run_case(candidate, self.fault).failure {
            Some(f) => f.class == self.class && f.kind.same_kind(&self.kind),
            None => false,
        };
        if ok {
            self.stats.successes += 1;
        }
        ok
    }

    /// Greedy complement reduction over `items`: try dropping chunks
    /// (halving the chunk size down to single items, rescanning after
    /// every acceptance) and keep the smallest list whose rebuilt case
    /// still reproduces. `rebuild` may return `None` for candidates that
    /// would be structurally invalid.
    fn minimize_list<T: Clone>(
        &mut self,
        items: Vec<T>,
        rebuild: &dyn Fn(Vec<T>) -> Option<Case>,
    ) -> Vec<T> {
        let mut cur = items;
        if cur.is_empty() {
            return cur;
        }
        let mut chunk = (cur.len() / 2).max(1);
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < cur.len() {
                let end = (i + chunk).min(cur.len());
                let mut smaller = cur.clone();
                smaller.drain(i..end);
                let accepted = match rebuild(smaller.clone()) {
                    Some(c) => self.holds(&c),
                    None => false,
                };
                if accepted {
                    cur = smaller;
                    progressed = true;
                    // Rescan the same position: the next chunk slid in.
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                if !progressed {
                    break;
                }
            } else {
                chunk = (chunk / 2).max(1);
            }
        }
        cur
    }
}

/// Flattened schedule entry: `(batch index, unit update)`.
type FlatOp = (usize, Update);

/// Regroups flattened ops into batches, dropping emptied ones.
fn regroup(ops: &[FlatOp]) -> Vec<UpdateBatch> {
    let mut schedule: Vec<UpdateBatch> = Vec::new();
    let mut last_batch = usize::MAX;
    for &(b, u) in ops {
        if b != last_batch {
            schedule.push(UpdateBatch::new());
            last_batch = b;
        }
        let batch = schedule.last_mut().expect("just pushed");
        match u {
            Update::Insert { src, dst, weight } => {
                batch.insert(src, dst, weight);
            }
            Update::Delete { src, dst } => {
                batch.delete(src, dst);
            }
        }
    }
    schedule
}

/// Shrinks `case` while preserving `failure`'s fingerprint under `fault`.
/// `case` itself must reproduce the failure; the result is the smallest
/// reproducer found within the attempt budget.
pub fn shrink_case(
    case: &Case,
    fault: Option<Fault>,
    failure: &OracleFailure,
) -> (Case, ShrinkStats) {
    let mut sh = Shrinker {
        fault,
        class: failure.class,
        kind: failure.kind.clone(),
        stats: ShrinkStats::default(),
        max_attempts: 4000,
    };
    let mut best = case.clone();

    // 1. Truncate the schedule after the failing round.
    if let Some(r) = failure.round {
        if r + 1 < best.schedule.len() {
            let mut c = best.clone();
            c.schedule.truncate(r + 1);
            if sh.holds(&c) {
                best = c;
            }
        }
    }

    // 2. Narrow to the failing class; Sim's pattern goes with it —
    //    unless the dataflow plan still reads the `sim` source, which
    //    needs the pattern to build.
    if best.classes.len() > 1 {
        let mut c = best.clone();
        c.classes = vec![failure.class];
        let plan_needs_pattern = c.plan.as_deref().is_some_and(|p| p.contains("sim"));
        if failure.class != ClassId::Sim && !plan_needs_pattern {
            c.pattern = None;
        }
        if sh.holds(&c) {
            best = c;
        }
    }

    // 3. Narrow the thread list.
    let wanted = match failure.kind {
        OracleKind::SeqVsPar { threads } => vec![1, threads],
        _ => vec![1],
    };
    if best.threads != wanted {
        let mut c = best.clone();
        c.threads = wanted;
        if sh.holds(&c) {
            best = c;
        }
    }

    // 4. ddmin over whole batches.
    {
        let base = best.clone();
        let batches = sh.minimize_list(best.schedule.clone(), &|schedule| {
            let mut c = base.clone();
            c.schedule = schedule;
            Some(c)
        });
        best.schedule = batches;
    }

    // 5. ddmin over unit updates, preserving batch boundaries.
    {
        let base = best.clone();
        let flat: Vec<FlatOp> = best
            .schedule
            .iter()
            .enumerate()
            .flat_map(|(b, batch)| batch.updates().iter().map(move |&u| (b, u)))
            .collect();
        let flat = sh.minimize_list(flat, &|ops| {
            let mut c = base.clone();
            c.schedule = regroup(&ops);
            Some(c)
        });
        best.schedule = regroup(&flat);
    }

    // 6. ddmin over base-graph edges.
    {
        let base = best.clone();
        let edges = sh.minimize_list(best.edges.clone(), &|edges| {
            let mut c = base.clone();
            c.edges = edges;
            Some(c)
        });
        best.edges = edges;
    }

    // 7. Cosmetic reductions: all-zero labels, trim unreferenced tail
    //    nodes (ids are not renumbered, so only the tail can go).
    if best.labels.is_some() {
        let mut c = best.clone();
        c.labels = None;
        if sh.holds(&c) {
            best = c;
        }
    }
    {
        let mut max_ref = best.source as usize;
        for &(u, v, _) in &best.edges {
            max_ref = max_ref.max(u as usize).max(v as usize);
        }
        for batch in &best.schedule {
            for u in batch.updates() {
                max_ref = max_ref.max(u.src() as usize).max(u.dst() as usize);
            }
        }
        let trimmed = max_ref + 1;
        if trimmed < best.nodes {
            let mut c = best.clone();
            c.nodes = trimmed;
            if let Some(labels) = &mut c.labels {
                labels.truncate(trimmed);
            }
            if sh.holds(&c) {
                best = c;
            }
        }
    }

    (best, sh.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gencase::{gen_case, GenConfig};

    /// An injected skip-op fault must shrink to a handful of updates —
    /// the ISSUE's acceptance bar is ≤ 10 — and stay a certified
    /// reproducer.
    #[test]
    fn injected_fault_shrinks_small() {
        let cfg = GenConfig::default();
        let mut shrunk_one = false;
        for seed in 0..20u64 {
            let case = gen_case(seed, &cfg);
            let outcome = run_case(&case, Some(Fault::SkipOp));
            let Some(failure) = outcome.failure else {
                continue; // fault happened to be benign for this seed
            };
            let (small, stats) = shrink_case(&case, Some(Fault::SkipOp), &failure);
            assert!(stats.attempts > 0);
            assert!(
                small.schedule_len() <= 10,
                "seed {seed}: shrunk to {} updates",
                small.schedule_len()
            );
            assert!(small.schedule_len() <= case.schedule_len());
            assert!(small.edges.len() <= case.edges.len());
            // Certified: the minimized case still reproduces.
            let re = run_case(&small, Some(Fault::SkipOp));
            let refail = re.failure.expect("minimized case must still fail");
            assert_eq!(refail.class, failure.class);
            assert!(refail.kind.same_kind(&failure.kind));
            shrunk_one = true;
            break;
        }
        assert!(shrunk_one, "no seed in 0..20 tripped the injected fault");
    }

    #[test]
    fn regroup_preserves_order_and_drops_empty() {
        let ops = vec![
            (
                0,
                Update::Insert {
                    src: 0,
                    dst: 1,
                    weight: 2,
                },
            ),
            (2, Update::Delete { src: 1, dst: 0 }),
            (
                2,
                Update::Insert {
                    src: 1,
                    dst: 2,
                    weight: 1,
                },
            ),
        ];
        let schedule = regroup(&ops);
        assert_eq!(schedule.len(), 2, "batch 1 vanished");
        assert_eq!(schedule[0].len(), 1);
        assert_eq!(schedule[1].len(), 2);
    }
}
