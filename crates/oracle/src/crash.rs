//! The crash-recovery oracle: kill the durable pipeline at every
//! injection point, recover from disk, and demand value-identity with an
//! uninterrupted run.
//!
//! Durability turns the paper's determinism into a testable contract.
//! Every algorithm here is a deterministic function of (essence, graph,
//! ΔG), so for any prefix of a case's schedule there is exactly one
//! correct world — and recovery must land on it bit-for-bit, no matter
//! where the process died:
//!
//! * crash **before** the WAL fsync of batch `r` → recovery must produce
//!   the world after `r` batches (the in-flight one was never committed);
//! * crash **after** the fsync → the world after `r + 1` batches (it was
//!   committed, so losing it would be data loss);
//! * crash **mid-checkpoint** or **between checkpoint rename and manifest
//!   update** → the world is unchanged by the failed/unannounced
//!   checkpoint and recovery still replays to the full logged history.
//!
//! [`run_crash_case`] sweeps `every round × every injection point` of a
//! [`Case`], comparing the recovered states' `SaveState` essences — the
//! strictest equality available, covering values, timestamps, and the
//! logical clock of the weakly deducible classes — plus the recovered
//! graph's edge set against an uninterrupted in-memory reference. A
//! mid-prefix checkpoint is taken on longer histories so recovery
//! exercises the checkpoint-plus-WAL-suffix path, not just full replay.

use crate::case::Case;
use incgraph_algos::{update_with, ExecOptions, IncrementalState, QueryClass, Session};
use incgraph_durable::{recover, CrashPoint, DurableError, DurableOptions, DurableSession};
use incgraph_graph::{DynamicGraph, NodeId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One crash-recovery violation.
#[derive(Clone, Debug)]
pub struct CrashFailure {
    /// Schedule round the crash was injected at (0-based).
    pub round: usize,
    /// The injection point.
    pub point: CrashPoint,
    /// Human-readable detail (which class/essence diverged, …).
    pub detail: String,
}

impl std::fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash-recovery oracle failed at round {} point {}: {}",
            self.round, self.point, self.detail
        )
    }
}

/// Outcome of one crash-recovery sweep.
#[derive(Debug)]
pub struct CrashOutcome {
    /// Kill-and-recover cycles performed.
    pub recoveries: u64,
    /// Individual equality checks performed.
    pub checks: u64,
    /// First violation, if any.
    pub failure: Option<CrashFailure>,
}

impl CrashOutcome {
    /// Whether every recovery was value-identical.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Clamps an out-of-range source to node 0 (mirrors the runner).
fn clamp_source(source: NodeId, nodes: usize) -> NodeId {
    if (source as usize) < nodes {
        source
    } else {
        0
    }
}

/// Fresh sequential batch states for the case's classes, in case order —
/// one [`Session::builder`] call per class instead of a local seven-way
/// `match`. Sessions delegate `save_state`, so the durable essences are
/// byte-identical to the bare states' the pipeline used to box.
fn build_states(case: &Case, g: &DynamicGraph, source: NodeId) -> Vec<Box<dyn IncrementalState>> {
    case.classes
        .iter()
        .map(|&c| -> Box<dyn IncrementalState> {
            let mut builder = Session::builder(c);
            if c.source_rooted() {
                builder = builder.source(source);
            }
            if c == QueryClass::Sim {
                let p = case.pattern.as_ref().expect("sim case without a pattern");
                builder = builder.pattern(p.clone());
            }
            Box::new(builder.build(g).expect("session build"))
        })
        .collect()
}

fn essences(states: &[Box<dyn IncrementalState>]) -> Vec<Vec<u8>> {
    states.iter().map(|s| s.save_state()).collect()
}

fn sorted_edges(g: &DynamicGraph) -> Vec<(NodeId, NodeId, u32)> {
    let mut e: Vec<_> = g.edges().collect();
    e.sort_unstable();
    e
}

/// The uninterrupted reference: world snapshots after every prefix of the
/// schedule, computed through the exact pipeline the durable session
/// replays (`apply_validated` + `update_guarded`), so fallback decisions
/// are identical on both sides.
struct Reference {
    /// `essences[k]` = per-state essence after `k` *valid* batches.
    essences: Vec<Vec<Vec<u8>>>,
    /// `edges[k]` = sorted edge set after `k` batches.
    edges: Vec<Vec<(NodeId, NodeId, u32)>>,
    /// `valid[r]` = whether schedule batch `r` passed validation (invalid
    /// batches are rejected before logging, on both sides).
    valid: Vec<bool>,
    /// `committed[k]` = number of valid batches among the first `k`.
    committed: Vec<u64>,
}

fn build_reference(case: &Case, options: &DurableOptions) -> Reference {
    let mut g = case.build_graph();
    let source = clamp_source(case.source, case.nodes);
    let mut states = build_states(case, &g, source);
    let mut reference = Reference {
        essences: vec![essences(&states)],
        edges: vec![sorted_edges(&g)],
        valid: Vec::with_capacity(case.schedule.len()),
        committed: vec![0],
    };
    let mut committed = 0u64;
    for batch in &case.schedule {
        match batch.apply_validated(&mut g) {
            Ok(applied) => {
                let exec = ExecOptions {
                    policy: options.policy,
                    ..Default::default()
                };
                for s in states.iter_mut() {
                    update_with(s.as_mut(), &g, &applied, &exec);
                }
                committed += 1;
                reference.valid.push(true);
            }
            Err(_) => reference.valid.push(false),
        }
        reference.essences.push(essences(&states));
        reference.edges.push(sorted_edges(&g));
        reference.committed.push(committed);
    }
    reference
}

static SCRATCH_ID: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(round: usize, point: CrashPoint) -> PathBuf {
    std::env::temp_dir().join(format!(
        "incgraph-crash-{}-{}-r{round}-{point}",
        std::process::id(),
        SCRATCH_ID.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Sweeps kill-and-recover over the case's schedule: for every round `r`
/// and every injection point (or just `case.crash_at` when set), build a
/// durable session, apply `r` batches cleanly — taking a real checkpoint
/// halfway so recovery exercises suffix replay — inject the crash,
/// recover, and compare the recovered world against the uninterrupted
/// reference at the expected prefix length. Stops at the first violation.
pub fn run_crash_case(case: &Case) -> CrashOutcome {
    let options = DurableOptions::default();
    let reference = build_reference(case, &options);
    let points: Vec<CrashPoint> = match case.crash_at {
        Some(p) => vec![p],
        None => CrashPoint::ALL.to_vec(),
    };
    let source = clamp_source(case.source, case.nodes);
    let mut out = CrashOutcome {
        recoveries: 0,
        checks: 0,
        failure: None,
    };

    for round in 0..case.schedule.len() {
        for &point in &points {
            // WAL points crash *inside* the apply of batch `round`; a
            // batch that fails validation never reaches the log, so the
            // injection would not fire — skip the combination.
            if point.is_wal_point() && !reference.valid[round] {
                continue;
            }
            let dir = scratch_dir(round, point);
            let _ = std::fs::remove_dir_all(&dir);
            let g0 = case.build_graph();
            let states = build_states(case, &g0, source);
            let mut session = match DurableSession::create(&dir, g0, states, options.clone()) {
                Ok(s) => s,
                Err(e) => {
                    out.failure = Some(CrashFailure {
                        round,
                        point,
                        detail: format!("session create failed: {e}"),
                    });
                    return out;
                }
            };
            // Clean prefix, with a real checkpoint halfway through so the
            // recovery under test starts from it and replays the suffix.
            let mut failed = None;
            for (i, batch) in case.schedule[..round].iter().enumerate() {
                match session.apply(batch) {
                    Ok(_) | Err(DurableError::InvalidBatch(_)) => {}
                    Err(e) => {
                        failed = Some(format!("prefix apply {i} failed: {e}"));
                        break;
                    }
                }
                if round > 1 && i == round / 2 {
                    if let Err(e) = session.checkpoint() {
                        failed = Some(format!("mid-prefix checkpoint failed: {e}"));
                        break;
                    }
                }
            }
            if let Some(detail) = failed {
                out.failure = Some(CrashFailure {
                    round,
                    point,
                    detail,
                });
                let _ = std::fs::remove_dir_all(&dir);
                return out;
            }

            // The killing blow.
            session.arm_crash(Some(point));
            let crash_result = if point.is_wal_point() {
                session.apply(&case.schedule[round]).map(|_| ())
            } else {
                session.checkpoint().map(|_| ())
            };
            match crash_result {
                Err(DurableError::InjectedCrash(p)) if p == point => {}
                other => {
                    out.failure = Some(CrashFailure {
                        round,
                        point,
                        detail: format!("expected injected crash, got {other:?}"),
                    });
                    let _ = std::fs::remove_dir_all(&dir);
                    return out;
                }
            }
            drop(session);

            // The batch survives iff its WAL record was fsynced first.
            let expected_k = if point == CrashPoint::WalPostFsync {
                round + 1
            } else {
                round
            };
            let expected_seq = reference.committed[expected_k];

            out.recoveries += 1;
            let (recovered, _report) = match recover(&dir, options.clone()) {
                Ok(r) => r,
                Err(e) => {
                    out.failure = Some(CrashFailure {
                        round,
                        point,
                        detail: format!("recovery failed: {e}"),
                    });
                    let _ = std::fs::remove_dir_all(&dir);
                    return out;
                }
            };

            out.checks += 1;
            if recovered.last_seq() != expected_seq {
                out.failure = Some(CrashFailure {
                    round,
                    point,
                    detail: format!(
                        "recovered {} committed batches, expected {expected_seq}",
                        recovered.last_seq()
                    ),
                });
                let _ = std::fs::remove_dir_all(&dir);
                return out;
            }
            out.checks += 1;
            if sorted_edges(recovered.graph()) != reference.edges[expected_k] {
                out.failure = Some(CrashFailure {
                    round,
                    point,
                    detail: "recovered graph edge set diverges from reference".into(),
                });
                let _ = std::fs::remove_dir_all(&dir);
                return out;
            }
            let want = &reference.essences[expected_k];
            for (s, expected) in recovered.states().iter().zip(want) {
                out.checks += 1;
                if &s.save_state() != expected {
                    out.failure = Some(CrashFailure {
                        round,
                        point,
                        detail: format!(
                            "{}: recovered essence diverges from uninterrupted run",
                            s.name()
                        ),
                    });
                    let _ = std::fs::remove_dir_all(&dir);
                    return out;
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gencase::{gen_case, GenConfig};
    use crate::runner::ClassId;
    use incgraph_graph::{Pattern, UpdateBatch};

    fn small_case() -> Case {
        let mut b1 = UpdateBatch::new();
        b1.insert(0, 3, 2).delete(1, 2);
        let mut b2 = UpdateBatch::new();
        b2.insert(2, 4, 1).insert(4, 0, 3);
        let mut b3 = UpdateBatch::new();
        b3.delete(0, 3).insert(1, 2, 9);
        Case {
            seed: 21,
            directed: false,
            nodes: 5,
            labels: None,
            edges: vec![(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 4, 2)],
            schedule: vec![b1, b2, b3],
            classes: ClassId::ALL.to_vec(),
            source: 0,
            pattern: Some(Pattern::new(vec![0, 0], &[(0, 1)])),
            threads: vec![1],
            fault: None,
            crash_at: None,
            coalesce: false,
            plan: None,
        }
    }

    #[test]
    fn all_seven_classes_survive_every_round_and_point() {
        let outcome = run_crash_case(&small_case());
        assert!(outcome.passed(), "{}", outcome.failure.unwrap());
        // 3 rounds × 4 points, all batches valid.
        assert_eq!(outcome.recoveries, 12);
    }

    #[test]
    fn crash_at_restricts_the_sweep() {
        let mut case = small_case();
        case.crash_at = Some(CrashPoint::MidCheckpoint);
        let outcome = run_crash_case(&case);
        assert!(outcome.passed(), "{}", outcome.failure.unwrap());
        assert_eq!(outcome.recoveries, 3, "one point, three rounds");
    }

    #[test]
    fn generated_case_survives_the_sweep() {
        // A fuzzer-shaped case (random topology + schedule) through the
        // full sweep — the bridge between the generator and the crash
        // oracle that `incgraph fuzz --crash` walks at scale.
        let case = gen_case(0xC4A5, &GenConfig::default());
        let outcome = run_crash_case(&case);
        assert!(outcome.passed(), "{}", outcome.failure.unwrap());
        assert!(outcome.recoveries > 0);
    }
}
