//! Differential fuzzing oracle for the incremental graph engine.
//!
//! The paper's central claims — the incremental algorithm `A_Δ` computes
//! exactly the batch fixpoint (Theorems 1 & 3), parallel resumption is
//! schedule-independent under C2, and the work is bounded by the affected
//! area — are *differential* properties: each one equates two independent
//! computations. This crate turns them into executable oracles and hunts
//! for divergence with seeded random campaigns:
//!
//! * [`gencase`] expands one `u64` seed into a self-contained [`case::Case`]
//!   (graph topology, labels, query parameters, and a long schedule of
//!   effective `ΔG` batches);
//! * [`runner`] drives a case through all seven query classes, checking
//!   incremental-vs-batch value equality, sequential-vs-parallel equality
//!   at the case's thread counts, and boundedness-accounting invariants
//!   after every batch;
//! * [`crash`] sweeps kill-and-recover over a case's schedule at every
//!   durability injection point, demanding the recovered world is
//!   value-identical to an uninterrupted run (the determinism of the
//!   paper's algorithms makes recovery *verifiable*, not just plausible);
//! * [`shrink`] minimizes a failing case ddmin-style while preserving the
//!   failure fingerprint, producing a certified reproducer;
//! * [`fuzz`] is the campaign loop gluing these together and writing
//!   minimized cases — annotated with provenance and the engine-level
//!   [`CaseTrace`](incgraph_core::CaseTrace) — into a replayable corpus;
//! * [`chaos`] lifts the adversary to the network: it drives the real
//!   TCP service (crates/service) through a byte-cutting proxy and
//!   abrupt server kill/restart cycles, then audits the WAL for
//!   exactly-once application of every acknowledged batch and checks
//!   recovered per-class essences byte-for-byte against genesis replay;
//! * [`walcheck`] is the store-local form of that audit — a reusable
//!   exactly-once check of the WAL against an ingest-side ack ledger,
//!   run by the sustained-stream harness after every kill-and-recover;
//! * [`failover`] extends the adversary across *nodes*: a primary→replica
//!   replication pair is driven through a crash-point kill of the
//!   primary, replica promotion, and client redirect, then audited for
//!   exactly-once survival of every client-acked batch and genesis-replay
//!   equality of the failed-over store.
//!
//! The `incgraph fuzz` / `incgraph replay` subcommands (crates/bench) are
//! thin CLI shells over this crate; the corpus-replay integration test
//! re-runs every checked-in case on every build.

pub mod case;
pub mod chaos;
pub mod crash;
pub mod failover;
pub mod fuzz;
pub mod gencase;
pub mod runner;
pub mod shrink;
pub mod walcheck;

pub use case::{Case, CaseParseError};
pub use chaos::{run_chaos, ChaosConfig, ChaosFailure, ChaosReport};
pub use crash::{run_crash_case, CrashFailure, CrashOutcome};
pub use failover::{run_failover, FailoverConfig, FailoverFailure, FailoverReport};
pub use fuzz::{fuzz, CrashRecord, FailureRecord, FuzzConfig, FuzzReport};
pub use gencase::{gen_case, GenConfig};
pub use runner::{run_case, ClassId, Fault, OracleFailure, OracleKind, RunOutcome};
pub use shrink::{shrink_case, ShrinkStats};
pub use walcheck::{audit_wal, batch_fingerprint, AckedBatch, WalAuditFailure, WalAuditReport};
