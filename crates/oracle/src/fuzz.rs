//! The fuzzing campaign driver: seed → generate → oracle → shrink →
//! corpus.
//!
//! A campaign expands a master seed into per-case seeds with the shared
//! [`SplitMix64`](incgraph_graph::rng::SplitMix64) stream, runs every
//! case through [`run_case`], and on a violation minimizes the case with
//! [`shrink_case`] and renders a self-contained `.case` file annotated
//! with provenance and the engine-level [`CaseTrace`] of the minimized
//! run. Checked into `tests/corpus/`, such a file is re-run forever by
//! the corpus-replay integration test.
//!
//! `--inject-fault` campaigns doctor the ΔG presented to the states (see
//! [`Fault`]) to prove end-to-end that the oracles and the shrinker have
//! teeth; the driver treats "fault caught and minimized to a handful of
//! updates" as the *success* criterion for that mode.

use crate::case::Case;
use crate::crash::{run_crash_case, CrashFailure};
use crate::gencase::{gen_case, gen_plan, GenConfig};
use crate::runner::{run_case, ClassId, Fault, OracleFailure};
use crate::shrink::{shrink_case, ShrinkStats};
use incgraph_core::CaseTrace;
use incgraph_graph::rng::SplitMix64;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed; each case's seed is drawn from this stream.
    pub seed: u64,
    /// Maximum number of cases.
    pub cases: usize,
    /// Optional wall-clock budget; the campaign stops at whichever of
    /// `cases`/`time_budget` is hit first.
    pub time_budget: Option<Duration>,
    /// Doctored-ΔG fault to inject into every case (validation mode).
    pub inject_fault: Option<Fault>,
    /// Also sweep the crash-recovery oracle over every case: kill the
    /// durable pipeline at every (round, injection point) and verify the
    /// recovered world. Much slower per case; meant for the nightly job.
    pub crash: bool,
    /// Where to write minimized `.case` files; `None` disables writing.
    pub corpus_dir: Option<PathBuf>,
    /// Also drive the micro-batch coalescing oracle on every case (see
    /// [`Case::coalesce`]): a fourth session per class consumes the
    /// schedule merged into net batches and must match the ground truth.
    pub coalesce: bool,
    /// Also drive the dataflow oracle on every case: a random small
    /// `incgraph-plan/1` program ([`gen_plan`]) stands over the schedule
    /// and its incrementally maintained view must match a from-scratch
    /// plan evaluation after every batch.
    pub dataflow: bool,
    /// Case size knobs.
    pub gen: GenConfig,
}

impl FuzzConfig {
    /// A small default campaign under `seed`.
    pub fn new(seed: u64, cases: usize) -> Self {
        FuzzConfig {
            seed,
            cases,
            time_budget: None,
            inject_fault: None,
            crash: false,
            corpus_dir: None,
            coalesce: false,
            dataflow: false,
            gen: GenConfig::default(),
        }
    }
}

/// One caught-and-minimized violation.
#[derive(Debug)]
pub struct FailureRecord {
    /// Seed of the generated case that tripped the oracle.
    pub case_seed: u64,
    /// The violation, as observed on the *original* case.
    pub failure: OracleFailure,
    /// The minimized, certified reproducer.
    pub minimized: Case,
    /// Shrink work accounting.
    pub shrink: ShrinkStats,
    /// Corpus file the reproducer was written to, if writing is enabled.
    pub path: Option<PathBuf>,
}

/// One crash-recovery violation caught by a `--crash` campaign. Crash
/// failures are not shrunk — the differential shrinker re-checks
/// candidates through [`run_case`], which cannot reproduce a durability
/// divergence — so the full case is written to the corpus with its
/// `crash-at` point stamped for targeted replay.
#[derive(Debug)]
pub struct CrashRecord {
    /// Seed of the generated case that tripped the oracle.
    pub case_seed: u64,
    /// The violation.
    pub failure: CrashFailure,
    /// Corpus file the case was written to, if writing is enabled.
    pub path: Option<PathBuf>,
}

/// Campaign outcome.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases fully driven through the oracles.
    pub cases_run: usize,
    /// Total oracle comparisons across the campaign.
    pub checks: u64,
    /// Kill-and-recover cycles performed (crash campaigns only).
    pub recoveries: u64,
    /// Union of query classes exercised, in canonical order (directed
    /// cases skip the undirected-only classes, so coverage is a campaign
    /// property, not a per-case one).
    pub classes_exercised: Vec<ClassId>,
    /// Violations, in discovery order.
    pub failures: Vec<FailureRecord>,
    /// Crash-recovery violations, in discovery order.
    pub crash_failures: Vec<CrashRecord>,
}

impl FuzzReport {
    /// Whether the campaign saw no violations.
    pub fn clean(&self) -> bool {
        self.failures.is_empty() && self.crash_failures.is_empty()
    }
}

/// Runs a fuzzing campaign. Deterministic in `cfg.seed` (the time budget
/// can only truncate the case sequence, never reorder it). Failing cases
/// are minimized and, when `cfg.corpus_dir` is set, rendered to
/// `case-<class>-<oracle>-<seed>.case` in that directory; I/O errors
/// writing the corpus are reported on the record's `path: None` rather
/// than aborting the campaign.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let started = Instant::now();
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut report = FuzzReport::default();
    for _ in 0..cfg.cases {
        if let Some(budget) = cfg.time_budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        let case_seed = rng.next_u64();
        let mut case = gen_case(case_seed, &cfg.gen);
        case.coalesce = cfg.coalesce;
        if cfg.dataflow {
            case.plan = Some(gen_plan(case_seed, &case));
        }
        let outcome = run_case(&case, cfg.inject_fault);
        report.cases_run += 1;
        report.checks += outcome.checks;
        for &c in &case.classes {
            if !report.classes_exercised.contains(&c) {
                report.classes_exercised.push(c);
            }
        }
        report.classes_exercised.sort_unstable();
        if let Some(failure) = outcome.failure {
            let (minimized, shrink) = shrink_case(&case, cfg.inject_fault, &failure);
            let path = cfg
                .corpus_dir
                .as_ref()
                .and_then(|dir| write_corpus_file(dir, cfg, case_seed, &failure, &minimized));
            report.failures.push(FailureRecord {
                case_seed,
                failure,
                minimized,
                shrink,
                path,
            });
        }
        if cfg.crash {
            let crash = run_crash_case(&case);
            report.checks += crash.checks;
            report.recoveries += crash.recoveries;
            if let Some(failure) = crash.failure {
                let path = cfg
                    .corpus_dir
                    .as_ref()
                    .and_then(|dir| write_crash_corpus_file(dir, cfg, case_seed, &failure, &case));
                report.crash_failures.push(CrashRecord {
                    case_seed,
                    failure,
                    path,
                });
            }
        }
    }
    report
}

/// Renders a crash-oracle reproducer — the *unshrunk* case with the
/// failing injection point stamped as `crash-at` — and writes it under
/// `dir`.
fn write_crash_corpus_file(
    dir: &std::path::Path,
    cfg: &FuzzConfig,
    case_seed: u64,
    failure: &CrashFailure,
    case: &Case,
) -> Option<PathBuf> {
    let mut case = case.clone();
    case.crash_at = Some(failure.point);
    let comments = vec![
        format!("found by `incgraph fuzz --crash --seed {}`", cfg.seed),
        format!("case seed {case_seed}"),
        format!("failure: {failure}"),
    ];
    let name = format!("case-crash-{}-{case_seed:016x}.case", failure.point.name());
    let path = dir.join(name);
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    match std::fs::write(&path, case.render(&comments)) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

/// Renders `minimized` with full provenance comments — including the
/// engine-level trace of the minimized run — and writes it under `dir`.
fn write_corpus_file(
    dir: &std::path::Path,
    cfg: &FuzzConfig,
    case_seed: u64,
    failure: &OracleFailure,
    minimized: &Case,
) -> Option<PathBuf> {
    // Stamp the injected fault into the file so replay re-injects it
    // (and so its presence marks the case as expected-to-fail).
    let mut minimized = minimized.clone();
    minimized.fault = cfg.inject_fault;
    let minimized = &minimized;
    let mut comments = vec![
        format!(
            "found by `incgraph fuzz --seed {}{}{}`",
            cfg.seed,
            if cfg.coalesce { " --coalesce" } else { "" },
            if cfg.dataflow { " --dataflow" } else { "" }
        ),
        format!("case seed {case_seed}"),
        format!("failure: {failure}"),
    ];
    if let Some(fault) = cfg.inject_fault {
        comments.push(format!(
            "intentional fault `{}` — this case is EXPECTED to keep failing on replay",
            fault.name()
        ));
    }
    CaseTrace::start();
    let _ = run_case(minimized, cfg.inject_fault);
    let events = CaseTrace::finish();
    for e in events.iter().take(16) {
        comments.push(format!("trace: {}", e.summary()));
    }
    if events.len() > 16 {
        comments.push(format!("trace: … {} more engine runs", events.len() - 16));
    }

    let name = format!(
        "case-{}-{}-{case_seed:016x}.case",
        failure.class.name(),
        failure.kind.name()
    );
    let path = dir.join(name);
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    match std::fs::write(&path, minimized.render(&comments)) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_is_deterministic_and_covers_everything() {
        let cfg = FuzzConfig::new(1, 12);
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.cases_run, 12);
        assert_eq!(a.checks, b.checks, "campaigns are deterministic");
        assert!(
            a.clean(),
            "seed 1 must be a clean campaign, got {:?}",
            a.failures.first().map(|f| &f.failure)
        );
        assert_eq!(
            a.classes_exercised,
            ClassId::ALL.to_vec(),
            "a mixed campaign must exercise all seven classes"
        );
    }

    #[test]
    fn coalesce_campaign_is_clean_and_checks_more() {
        let plain = fuzz(&FuzzConfig::new(1, 6));
        let mut cfg = FuzzConfig::new(1, 6);
        cfg.coalesce = true;
        let coal = fuzz(&cfg);
        assert!(
            coal.clean(),
            "coalesce campaign violation: {}",
            coal.failures[0].failure
        );
        assert!(
            coal.checks > plain.checks,
            "coalesce mode must add oracle checks ({} vs {})",
            coal.checks,
            plain.checks
        );
    }

    #[test]
    fn dataflow_campaign_is_clean_and_checks_more() {
        let plain = fuzz(&FuzzConfig::new(1, 8));
        let mut cfg = FuzzConfig::new(1, 8);
        cfg.dataflow = true;
        let df = fuzz(&cfg);
        assert!(
            df.clean(),
            "dataflow campaign violation: {}",
            df.failures[0].failure
        );
        assert!(
            df.checks > plain.checks,
            "dataflow mode must add oracle checks ({} vs {})",
            df.checks,
            plain.checks
        );
    }

    #[test]
    fn injected_fault_campaign_catches_and_minimizes() {
        let dir = std::env::temp_dir().join(format!("incgraph-fuzz-test-{}", std::process::id()));
        let mut cfg = FuzzConfig::new(7, 30);
        cfg.inject_fault = Some(Fault::SkipOp);
        cfg.corpus_dir = Some(dir.clone());
        let report = fuzz(&cfg);
        assert!(
            !report.clean(),
            "a 30-case skip-op campaign must trip an oracle"
        );
        let rec = &report.failures[0];
        assert!(
            rec.minimized.schedule_len() <= 10,
            "minimized to {} updates",
            rec.minimized.schedule_len()
        );
        let path = rec.path.as_ref().expect("corpus file written");
        let text = std::fs::read_to_string(path).expect("readable corpus file");
        let parsed = Case::parse(&text).expect("corpus file parses");
        assert_eq!(parsed.schedule_len(), rec.minimized.schedule_len());
        assert!(text.contains("failure:"), "provenance comments present");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_campaign_is_clean_and_counts_recoveries() {
        let mut cfg = FuzzConfig::new(5, 2);
        cfg.crash = true;
        let report = fuzz(&cfg);
        assert!(
            report.clean(),
            "crash campaign violation: {}",
            report.crash_failures[0].failure
        );
        assert!(
            report.recoveries > 0,
            "the sweep must actually kill-and-recover"
        );
    }

    #[test]
    fn time_budget_truncates() {
        let mut cfg = FuzzConfig::new(3, 10_000);
        cfg.time_budget = Some(Duration::from_millis(50));
        let report = fuzz(&cfg);
        assert!(report.cases_run < 10_000, "budget must truncate the run");
        assert!(report.cases_run > 0);
    }
}
