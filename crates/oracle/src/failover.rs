//! Failover chaos oracle: primary→replica replication under crash-point
//! kills, promotion, and client redirect.
//!
//! For **each** injected [`CrashPoint`] the harness runs one full
//! failover cycle on fresh stores:
//!
//! 1. Start a primary and a replica (`--replica-of` style pairing) with
//!    the semi-sync ack timeout pinned far beyond the run, so every
//!    client `ACK` the primary releases *implies* the replica has
//!    fsynced that batch — the property the whole audit leans on.
//! 2. Drive concurrent clients with exactly-once retry tokens against
//!    the primary, then arm the crash point and let a commit walk into
//!    it (killing outright if the stream happens to idle). No
//!    checkpoint, no goodbyes — the primary is simply gone.
//! 3. Promote the replica (`PROMOTE` bumps its durable epoch) and
//!    redirect the clients, who retry unacked batches with the same
//!    token and sequence numbers against the new primary.
//! 4. After a graceful drain of the new primary, audit **offline**:
//!    - every client-acked batch exists **exactly once** in the new
//!      primary's WAL — acks released before the kill came from
//!      replicated batches, acks after it from locally committed ones,
//!      and no retry may have double-applied across the failover;
//!    - the replicated dedup table agrees (each token's last ack is the
//!      client's final sequence);
//!    - the recovered state of every query class is byte-identical to a
//!      genesis replay of the WAL — replication, snapshot-less tailing,
//!      promotion, and recovery must all land on the same fixpoint.
//!
//! Batches reuse the chaos harness's decodable shape: client `i`'s
//! batch `k` inserts exactly one `(i, k)`-unique edge, so the WAL scan
//! reconstructs the full application history offline.

use incgraph_durable::wal::Wal;
use incgraph_durable::{CrashPoint, DurableError, DurableOptions, WAL_NAME};
use incgraph_graph::{DynamicGraph, NodeId, Update, UpdateBatch};
use incgraph_service::client::{Client, ClientError};
use incgraph_service::dedup;
use incgraph_service::server::{Server, ServerConfig, ServerHandle};
use incgraph_service::store::{standing_states, Store, StoreLimits, DURABLE_PATTERN_SEED};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Failover-run parameters. One cycle runs per entry in `points`.
#[derive(Clone, Debug)]
pub struct FailoverConfig {
    /// Seed for every random decision (kill timing).
    pub seed: u64,
    /// Concurrent client sessions per cycle.
    pub clients: usize,
    /// Batches each client must get acked per cycle.
    pub batches_per_client: usize,
    /// Crash points to cycle through (default: every one).
    pub points: Vec<CrashPoint>,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            seed: 0xFA110,
            clients: 4,
            batches_per_client: 8,
            points: CrashPoint::ALL.to_vec(),
        }
    }
}

/// What the run survived, summed over all cycles.
#[derive(Clone, Debug, Default)]
pub struct FailoverReport {
    /// Failover cycles completed (one per crash point).
    pub cycles: usize,
    /// Batches acked across all clients and cycles.
    pub acked: usize,
    /// Duplicate acks (retries of batches that crossed the failover).
    pub dup_acks: usize,
    /// Connections the clients had to rebuild.
    pub reconnects: usize,
    /// Batches found in the new primaries' WALs.
    pub wal_batches: usize,
    /// Committed-but-unacked batches (ack lost in the kill): legal.
    pub committed_unacked: usize,
    /// Class essences verified against genesis replay (7 per cycle).
    pub classes_verified: usize,
}

/// An audit violation — any of these is a real replication bug.
#[derive(Clone, Debug)]
pub enum FailoverFailure {
    /// A client holds an ack for a batch the new primary's WAL lacks:
    /// the ack was released before the batch was replicated.
    AckedButLost {
        /// Crash point of the offending cycle.
        point: CrashPoint,
        /// Client index.
        client: usize,
        /// Client-side batch sequence.
        batch: u64,
    },
    /// A batch appears in the new primary's WAL more than once: the
    /// replicated dedup state failed to absorb a cross-failover retry.
    DoubleApply {
        /// Crash point of the offending cycle.
        point: CrashPoint,
        /// Client index.
        client: usize,
        /// Client-side batch sequence.
        batch: u64,
        /// Occurrences found.
        times: usize,
    },
    /// A WAL batch decodes to no client's schedule.
    ForeignBatch {
        /// Crash point of the offending cycle.
        point: CrashPoint,
        /// WAL sequence of the offending record.
        wal_seq: u64,
    },
    /// The replicated dedup table disagrees with the client history.
    DedupMismatch {
        /// Crash point of the offending cycle.
        point: CrashPoint,
        /// Client token involved.
        token: String,
        /// What the audit expected vs found.
        detail: String,
    },
    /// A recovered class essence differs from genesis replay.
    EssenceMismatch {
        /// Crash point of the offending cycle.
        point: CrashPoint,
        /// Class name.
        class: &'static str,
    },
    /// Recovered graph shape differs from genesis replay.
    GraphMismatch {
        /// Crash point of the offending cycle.
        point: CrashPoint,
    },
    /// The harness itself could not finish (environment problem).
    Harness(String),
}

impl std::fmt::Display for FailoverFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailoverFailure::AckedButLost {
                point,
                client,
                batch,
            } => write!(
                f,
                "[{point}] client {client} batch {batch}: acked but absent from the \
                 new primary's WAL"
            ),
            FailoverFailure::DoubleApply {
                point,
                client,
                batch,
                times,
            } => write!(
                f,
                "[{point}] client {client} batch {batch}: applied {times} times across failover"
            ),
            FailoverFailure::ForeignBatch { point, wal_seq } => {
                write!(f, "[{point}] WAL record {wal_seq} matches no client batch")
            }
            FailoverFailure::DedupMismatch {
                point,
                token,
                detail,
            } => write!(f, "[{point}] dedup table for {token}: {detail}"),
            FailoverFailure::EssenceMismatch { point, class } => write!(
                f,
                "[{point}] {class}: recovered essence differs from genesis replay"
            ),
            FailoverFailure::GraphMismatch { point } => {
                write!(f, "[{point}] recovered graph differs from replay")
            }
            FailoverFailure::Harness(s) => write!(f, "harness error: {s}"),
        }
    }
}

struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Xorshift(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const GRAPH: &str = "g0";

/// The unique edge encoding batch `k` (1-based) of client `i` (same
/// scheme as the chaos harness).
fn batch_edge(clients: usize, i: usize, k: u64) -> (NodeId, NodeId, u32) {
    let u = i as NodeId;
    let v = (clients as u64 + k) as NodeId;
    (u, v, 1 + ((u + v) % 7))
}

fn graph_nodes(cfg: &FailoverConfig) -> usize {
    cfg.clients + cfg.batches_per_client + 2
}

fn durable_options() -> DurableOptions {
    DurableOptions {
        // Frequent automatic checkpoints put MidCheckpoint/PostRename in
        // the line of fire on the primary.
        checkpoint_every: Some(3),
        ..DurableOptions::default()
    }
}

fn node_config(replica_of: Option<SocketAddr>) -> ServerConfig {
    ServerConfig {
        read_poll: Duration::from_millis(10),
        idle_timeout: Duration::from_secs(20),
        repl_graph: Some(GRAPH.to_string()),
        replica_of,
        // Pinned far beyond the run: an ack must imply replication, not
        // a timeout. The audit's no-acked-lost check depends on this.
        repl_ack_timeout: Duration::from_secs(120),
        // Force tail replication from sequence 0 so the new primary's
        // WAL holds the complete history and genesis replay is total.
        snapshot_lag: u64::MAX,
        ..ServerConfig::default()
    }
}

fn open_node(
    dir: &Path,
    nodes: usize,
    replica_of: Option<SocketAddr>,
) -> Result<ServerHandle, FailoverFailure> {
    std::fs::create_dir_all(dir)
        .map_err(|e| FailoverFailure::Harness(format!("create dir: {e}")))?;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Store::open_durable(
            dir,
            GRAPH,
            nodes,
            false,
            durable_options(),
            StoreLimits::default(),
        ) {
            Ok(store) => {
                return Server::start(store, node_config(replica_of))
                    .map_err(|e| FailoverFailure::Harness(format!("server start: {e}")));
            }
            Err(DurableError::StoreBusy { .. }) if Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(FailoverFailure::Harness(format!("open store: {e}"))),
        }
    }
}

/// Runs one failover cycle per configured crash point under `dir`
/// (fresh subdirectories per cycle) and audits each outcome. Returns
/// the summed report, or the first violation found.
pub fn run_failover(dir: &Path, cfg: &FailoverConfig) -> Result<FailoverReport, FailoverFailure> {
    let mut report = FailoverReport::default();
    for (cycle, &point) in cfg.points.iter().enumerate() {
        let pdir = dir.join(format!("cycle{cycle}-primary"));
        let rdir = dir.join(format!("cycle{cycle}-replica"));
        run_cycle(&pdir, &rdir, point, cycle, cfg, &mut report)?;
        report.cycles += 1;
    }
    Ok(report)
}

fn run_cycle(
    pdir: &Path,
    rdir: &Path,
    point: CrashPoint,
    cycle: usize,
    cfg: &FailoverConfig,
    report: &mut FailoverReport,
) -> Result<(), FailoverFailure> {
    let nodes = graph_nodes(cfg);
    let mut primary = open_node(pdir, nodes, None)?;
    let mut replica = open_node(rdir, nodes, Some(primary.addr()))?;

    // Gate the cycle on the replica's sink attaching: from here on every
    // ack the primary releases is semi-sync.
    {
        let mut c = Client::connect_timeout(primary.addr(), "fo-gate", Duration::from_secs(5))
            .map_err(|e| FailoverFailure::Harness(format!("gate connect: {e}")))?;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let status = c
                .status()
                .map_err(|e| FailoverFailure::Harness(format!("gate status: {e}")))?;
            if status.split_whitespace().any(|t| t == "repl_sinks=1") {
                break;
            }
            if Instant::now() > deadline {
                return Err(FailoverFailure::Harness("replica never attached".into()));
            }
            thread::sleep(Duration::from_millis(20));
        }
        let _ = c.bye();
    }

    let target = Arc::new(Mutex::new(primary.addr()));
    let acked: Arc<Mutex<HashSet<(usize, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let dup_acks = Arc::new(AtomicUsize::new(0));
    let reconnects = Arc::new(AtomicUsize::new(0));

    let mut workers = Vec::new();
    for i in 0..cfg.clients {
        let cfg = cfg.clone();
        let target = Arc::clone(&target);
        let acked = Arc::clone(&acked);
        let dup_acks = Arc::clone(&dup_acks);
        let reconnects = Arc::clone(&reconnects);
        workers.push(
            thread::Builder::new()
                .name(format!("fo-cl{i}"))
                .spawn(move || {
                    failover_client(i, cycle, &cfg, &target, &acked, &dup_acks, &reconnects)
                })
                .map_err(|e| FailoverFailure::Harness(format!("spawn client: {e}")))?,
        );
    }

    // The executioner: arm the crash point mid-stream and let a commit
    // walk into it; kill outright if the stream happens to idle. The
    // clients pace themselves, so this lands while batches are still in
    // flight and unacked retries must cross the failover.
    let mut rng = Xorshift::new(cfg.seed ^ (cycle as u64) << 8 ^ 0xFA11);
    thread::sleep(Duration::from_millis(5 + rng.below(25)));
    primary.arm_crash(GRAPH, point);
    let deadline = Instant::now() + Duration::from_millis(400);
    while !primary.is_stopped() && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    if !primary.is_stopped() {
        primary.kill();
    } else {
        primary.wait();
    }

    // Promote the replica and redirect the clients.
    {
        let mut c = Client::connect_timeout(replica.addr(), "fo-op", Duration::from_secs(5))
            .map_err(|e| FailoverFailure::Harness(format!("promote connect: {e}")))?;
        let epoch = c
            .promote()
            .map_err(|e| FailoverFailure::Harness(format!("promote: {e}")))?;
        if epoch < 2 {
            return Err(FailoverFailure::Harness(format!(
                "promotion yielded epoch {epoch}, expected a bump past 1"
            )));
        }
        let _ = c.bye();
    }
    *target.lock().unwrap_or_else(|e| e.into_inner()) = replica.addr();

    let mut failure: Option<FailoverFailure> = None;
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(f)) => failure = failure.or(Some(f)),
            Err(_) => {
                failure = failure.or(Some(FailoverFailure::Harness("client panicked".into())))
            }
        }
    }
    // Graceful drain of the new primary: final checkpoint, lock release.
    replica.shutdown();
    if let Some(f) = failure {
        return Err(f);
    }

    let acked = Arc::try_unwrap(acked)
        .map_err(|_| FailoverFailure::Harness("acked set still shared".into()))?
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    report.acked += acked.len();
    report.dup_acks += dup_acks.load(Ordering::Relaxed);
    report.reconnects += reconnects.load(Ordering::Relaxed);
    audit_cycle(rdir, point, cycle, cfg, &acked, report)
}

fn failover_client(
    i: usize,
    cycle: usize,
    cfg: &FailoverConfig,
    target: &Mutex<SocketAddr>,
    acked: &Mutex<HashSet<(usize, u64)>>,
    dup_acks: &AtomicUsize,
    reconnects: &AtomicUsize,
) -> Result<(), FailoverFailure> {
    let token = format!("fo{cycle}-{i}");
    let mut client: Option<Client> = None;
    for k in 1..=cfg.batches_per_client as u64 {
        let (u, v, w) = batch_edge(cfg.clients, i, k);
        let mut batch = UpdateBatch::new();
        batch.insert(u, v, w);
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if attempts > 1000 {
                return Err(FailoverFailure::Harness(format!(
                    "client {i} gave up on batch {k}"
                )));
            }
            let c = match client.as_mut() {
                Some(c) => c,
                None => {
                    reconnects.fetch_add(1, Ordering::Relaxed);
                    let t = *target.lock().unwrap_or_else(|e| e.into_inner());
                    match Client::connect_timeout(t, &token, Duration::from_secs(2)) {
                        Ok(c) => client.insert(c),
                        Err(_) => {
                            thread::sleep(Duration::from_millis(20));
                            continue;
                        }
                    }
                }
            };
            match c.update(GRAPH, k, &batch) {
                Ok(ack) => {
                    if ack.dup {
                        dup_acks.fetch_add(1, Ordering::Relaxed);
                    }
                    acked
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert((i, k));
                    // Pace the stream so the executioner's kill lands
                    // mid-schedule, not after everyone finished.
                    thread::sleep(Duration::from_millis(3));
                    break;
                }
                Err(ClientError::Busy { retry_after_ms }) => {
                    thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 100)));
                }
                Err(ClientError::Server { code, detail }) => {
                    // `not-primary` is the redirect window (connected to
                    // the replica before its promotion); `readonly`
                    // clears on restart. Anything else fails loudly.
                    if code == "not-primary" || code == "readonly" {
                        // Reconnect: the target may have moved, and the
                        // promoted node accepts the same session token.
                        client = None;
                        thread::sleep(Duration::from_millis(30));
                    } else {
                        return Err(FailoverFailure::Harness(format!(
                            "client {i} batch {k}: unexpected ERR {code} {detail}"
                        )));
                    }
                }
                Err(_) => {
                    // Disconnect, goodbye, timeout — rebuild against the
                    // current target and retry the same sequence number.
                    client = None;
                    thread::sleep(Duration::from_millis(15));
                }
            }
        }
    }
    if let Some(c) = client.take() {
        let _ = c.bye();
    }
    Ok(())
}

/// Offline audit of one cycle against the new primary's store.
fn audit_cycle(
    rdir: &Path,
    point: CrashPoint,
    cycle: usize,
    cfg: &FailoverConfig,
    acked: &HashSet<(usize, u64)>,
    report: &mut FailoverReport,
) -> Result<(), FailoverFailure> {
    let opened = Wal::open(&rdir.join(WAL_NAME))
        .map_err(|e| FailoverFailure::Harness(format!("wal open: {e}")))?;
    let records = opened.records;
    report.wal_batches += records.len();

    // Exactly-once: count each client batch's WAL occurrences.
    let mut index: HashMap<(NodeId, NodeId), (usize, u64)> = HashMap::new();
    for i in 0..cfg.clients {
        for k in 1..=cfg.batches_per_client as u64 {
            let (u, v, _) = batch_edge(cfg.clients, i, k);
            index.insert((u, v), (i, k));
        }
    }
    let mut seen: HashMap<(usize, u64), usize> = HashMap::new();
    for rec in &records {
        let key = match rec.batch.updates() {
            [Update::Insert { src, dst, .. }] => index.get(&(*src, *dst)),
            _ => None,
        };
        match key {
            Some(&ik) => *seen.entry(ik).or_insert(0) += 1,
            None => {
                return Err(FailoverFailure::ForeignBatch {
                    point,
                    wal_seq: rec.seq,
                })
            }
        }
    }
    for (&(i, k), &times) in &seen {
        if times > 1 {
            return Err(FailoverFailure::DoubleApply {
                point,
                client: i,
                batch: k,
                times,
            });
        }
        if !acked.contains(&(i, k)) {
            report.committed_unacked += 1;
        }
    }
    for &(i, k) in acked {
        if !seen.contains_key(&(i, k)) {
            return Err(FailoverFailure::AckedButLost {
                point,
                client: i,
                batch: k,
            });
        }
    }

    // The replicated dedup table must agree with the client history:
    // every token's last ack is its final sequence number (replication
    // shipped the identities, promotion preserved them).
    let last_seq = records.last().map_or(0, |r| r.seq);
    let entries = dedup::scan_entries(rdir, last_seq)
        .map_err(|e| FailoverFailure::Harness(format!("dedup scan: {e}")))?;
    let mut latest: HashMap<&str, u64> = HashMap::new();
    for e in &entries {
        let slot = latest.entry(e.token.as_str()).or_insert(0);
        *slot = (*slot).max(e.client_seq);
    }
    for i in 0..cfg.clients {
        let token = format!("fo{cycle}-{i}");
        let want = cfg.batches_per_client as u64;
        match latest.get(token.as_str()) {
            Some(&got) if got == want => {}
            Some(&got) => {
                return Err(FailoverFailure::DedupMismatch {
                    point,
                    token,
                    detail: format!("last ack {got}, client finished at {want}"),
                })
            }
            None => {
                return Err(FailoverFailure::DedupMismatch {
                    point,
                    token,
                    detail: "token absent from replicated dedup table".into(),
                })
            }
        }
    }

    // Recovery equals genesis replay, essence by essence — the final
    // digest of the failed-over store is the digest of its history.
    let (session, _report) = incgraph_durable::recover(rdir, durable_options())
        .map_err(|e| FailoverFailure::Harness(format!("recover: {e}")))?;
    let mut replay_graph = DynamicGraph::new(false, graph_nodes(cfg));
    let mut replay_states = standing_states(&replay_graph, DURABLE_PATTERN_SEED);
    for rec in &records {
        let applied = rec
            .batch
            .apply_validated(&mut replay_graph)
            .map_err(|e| FailoverFailure::Harness(format!("replay: {e:?}")))?;
        for s in replay_states.iter_mut() {
            s.update(&replay_graph, &applied);
        }
    }
    let g = session.graph();
    if g.node_count() != replay_graph.node_count() || g.edge_count() != replay_graph.edge_count() {
        return Err(FailoverFailure::GraphMismatch { point });
    }
    let recovered = session.states();
    if recovered.len() != replay_states.len() {
        return Err(FailoverFailure::Harness("state count mismatch".into()));
    }
    for (a, b) in recovered.iter().zip(replay_states.iter()) {
        if a.save_state() != b.save_state() {
            return Err(FailoverFailure::EssenceMismatch {
                point,
                class: a.name(),
            });
        }
        report.classes_verified += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("incgraph-failover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn failover_at_one_crash_point_audits_clean() {
        let dir = temp_dir("one");
        let report = run_failover(
            &dir,
            &FailoverConfig {
                seed: 0xF1,
                clients: 3,
                batches_per_client: 6,
                points: vec![CrashPoint::WalPostFsync],
            },
        )
        .unwrap_or_else(|f| panic!("failover audit failed: {f}"));
        assert_eq!(report.cycles, 1);
        assert_eq!(report.acked, 18, "{report:?}");
        assert_eq!(report.classes_verified, 7, "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
