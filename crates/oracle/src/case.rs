//! Self-contained, replayable fuzz cases.
//!
//! A [`Case`] is everything needed to reproduce one differential-testing
//! run bit-for-bit: the base graph (explicit edges and labels, so the
//! shrinker can drop them one by one), the update schedule (a sequence of
//! `ΔG` batches), the query classes under test with their parameters, and
//! the thread counts to cross-check. Cases serialize to a line-oriented
//! plain-text format (no external deps, diff-friendly in `tests/corpus/`)
//! and parse back losslessly:
//!
//! ```text
//! # free-form comment lines
//! incgraph-case v1
//! seed 42                      # provenance only; replay never re-derives
//! directed 1
//! nodes 8
//! labels 0 1 0 2 1 0 0 1       # optional; omitted => all zero
//! source 3                     # sssp/reach query source
//! pattern-labels 0 1           # only when sim is under test
//! pattern-edge 0 1
//! classes sssp,cc,sim,reach,lcc,dfs,bc
//! plan d = sssp(source=3); n = count(d)   # optional dataflow-oracle plan
//! threads 1,2,4
//! edge 0 1 5                   # base graph: src dst weight
//! batch                        # schedule: batches of +/- ops
//! + 0 2 3
//! - 1 2
//! end
//! ```

use crate::runner::{ClassId, Fault};
use incgraph_durable::CrashPoint;
use incgraph_graph::{DynamicGraph, Label, NodeId, Pattern, UpdateBatch, Weight};
use std::fmt::Write as _;

/// A parse failure with line context.
#[derive(Debug)]
pub struct CaseParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CaseParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CaseParseError {}

/// One replayable differential-testing case.
#[derive(Clone, Debug, PartialEq)]
pub struct Case {
    /// Seed the generator derived this case from (provenance only — the
    /// case is self-contained and replay never re-derives from it).
    pub seed: u64,
    /// Whether the base graph is directed.
    pub directed: bool,
    /// Node count of the base graph.
    pub nodes: usize,
    /// Node labels; `None` means all-zero.
    pub labels: Option<Vec<Label>>,
    /// Base graph edges `(src, dst, weight)` in insertion order.
    pub edges: Vec<(NodeId, NodeId, Weight)>,
    /// The update schedule: batches applied in order.
    pub schedule: Vec<UpdateBatch>,
    /// Query classes under test.
    pub classes: Vec<ClassId>,
    /// Source node for SSSP/Reach.
    pub source: NodeId,
    /// Simulation pattern, required iff `classes` contains `sim`.
    pub pattern: Option<Pattern>,
    /// Thread counts to cross-check (1 = the sequential baseline).
    pub threads: Vec<usize>,
    /// Fault to inject on replay. `Some` marks an intentional-fault
    /// reproducer (expected to *fail*, proving the oracles still have
    /// teeth); `None` marks a real-divergence regression case (expected
    /// to *pass* once the bug is fixed).
    pub fault: Option<Fault>,
    /// When set, replay runs the crash-recovery oracle
    /// ([`run_crash_case`](crate::crash::run_crash_case)) at this
    /// injection point instead of sweeping all four.
    pub crash_at: Option<CrashPoint>,
    /// Also drive the micro-batch coalescing oracle: a fourth session
    /// per class sees the schedule's ΔG batches merged through the
    /// [`Coalescer`](incgraph_core::Coalescer) every couple of rounds
    /// and must still match the batch ground truth. Stamped into corpus
    /// files so coalesce-mode reproducers replay in coalesce mode.
    pub coalesce: bool,
    /// An `incgraph-plan/1` program to drive the dataflow oracle with:
    /// a standing [`DataflowSession`](incgraph_dataflow::DataflowSession)
    /// follows the schedule and must land on exactly the view a fresh
    /// plan evaluation computes on every intermediate graph. Validated
    /// at parse time against [`Plan::parse`](incgraph_dataflow::Plan).
    pub plan: Option<String>,
}

impl Case {
    /// Materializes the base graph.
    pub fn build_graph(&self) -> DynamicGraph {
        let mut g = match &self.labels {
            Some(labels) => {
                debug_assert_eq!(labels.len(), self.nodes);
                DynamicGraph::with_labels(self.directed, labels.clone())
            }
            None => DynamicGraph::new(self.directed, self.nodes),
        };
        for &(u, v, w) in &self.edges {
            g.insert_edge(u, v, w);
        }
        g
    }

    /// Total unit updates across the schedule.
    pub fn schedule_len(&self) -> usize {
        self.schedule.iter().map(|b| b.len()).sum()
    }

    /// Renders the case file, prefixed by `comments` (one `#` line each).
    pub fn render(&self, comments: &[String]) -> String {
        let mut out = String::new();
        for c in comments {
            let _ = writeln!(out, "# {c}");
        }
        let _ = writeln!(out, "incgraph-case v1");
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "directed {}", self.directed as u8);
        let _ = writeln!(out, "nodes {}", self.nodes);
        if let Some(labels) = &self.labels {
            let rendered: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
            let _ = writeln!(out, "labels {}", rendered.join(" "));
        }
        let _ = writeln!(out, "source {}", self.source);
        if let Some(p) = &self.pattern {
            let labels: Vec<String> = (0..p.node_count())
                .map(|u| p.label(u).to_string())
                .collect();
            let _ = writeln!(out, "pattern-labels {}", labels.join(" "));
            for (a, b) in p.edges() {
                let _ = writeln!(out, "pattern-edge {a} {b}");
            }
        }
        let classes: Vec<&str> = self.classes.iter().map(|c| c.name()).collect();
        let _ = writeln!(out, "classes {}", classes.join(","));
        if let Some(fault) = self.fault {
            let _ = writeln!(out, "inject-fault {}", fault.name());
        }
        if let Some(point) = self.crash_at {
            let _ = writeln!(out, "crash-at {}", point.name());
        }
        if self.coalesce {
            let _ = writeln!(out, "coalesce 1");
        }
        if let Some(plan) = &self.plan {
            let _ = writeln!(out, "plan {plan}");
        }
        let threads: Vec<String> = self.threads.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(out, "threads {}", threads.join(","));
        for &(u, v, w) in &self.edges {
            let _ = writeln!(out, "edge {u} {v} {w}");
        }
        for batch in &self.schedule {
            let _ = writeln!(out, "batch");
            for u in batch.updates() {
                match *u {
                    incgraph_graph::Update::Insert { src, dst, weight } => {
                        let _ = writeln!(out, "+ {src} {dst} {weight}");
                    }
                    incgraph_graph::Update::Delete { src, dst } => {
                        let _ = writeln!(out, "- {src} {dst}");
                    }
                }
            }
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parses a case file.
    pub fn parse(text: &str) -> Result<Case, CaseParseError> {
        let err = |line: usize, message: String| CaseParseError { line, message };
        let mut seed = 0u64;
        let mut directed = false;
        let mut nodes: Option<usize> = None;
        let mut labels: Option<Vec<Label>> = None;
        let mut edges: Vec<(NodeId, NodeId, Weight)> = Vec::new();
        let mut schedule: Vec<UpdateBatch> = Vec::new();
        let mut classes: Vec<ClassId> = Vec::new();
        let mut source: NodeId = 0;
        let mut pattern_labels: Option<Vec<Label>> = None;
        let mut pattern_edges: Vec<(usize, usize)> = Vec::new();
        let mut threads: Vec<usize> = Vec::new();
        let mut fault: Option<Fault> = None;
        let mut crash_at: Option<CrashPoint> = None;
        let mut coalesce = false;
        let mut plan: Option<String> = None;
        let mut saw_header = false;
        let mut saw_end = false;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                if line == "incgraph-case v1" {
                    saw_header = true;
                    continue;
                }
                return Err(err(lineno, "expected header `incgraph-case v1`".into()));
            }
            if saw_end {
                return Err(err(lineno, "content after `end`".into()));
            }
            let mut it = line.split_whitespace();
            let key = it.next().expect("non-empty trimmed line");
            let mut num = |what: &str| -> Result<u64, CaseParseError> {
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, format!("expected `{what}`")))
            };
            match key {
                "seed" => seed = num("seed <u64>")?,
                "directed" => directed = num("directed <0|1>")? != 0,
                "nodes" => nodes = Some(num("nodes <count>")? as usize),
                "source" => source = num("source <node>")? as NodeId,
                "labels" => {
                    let parsed: Result<Vec<Label>, _> = it.map(|t| t.parse()).collect();
                    labels = Some(parsed.map_err(|_| err(lineno, "bad label list".into()))?);
                }
                "pattern-labels" => {
                    let parsed: Result<Vec<Label>, _> = it.map(|t| t.parse()).collect();
                    pattern_labels =
                        Some(parsed.map_err(|_| err(lineno, "bad pattern labels".into()))?);
                }
                "pattern-edge" => {
                    let a = num("pattern-edge <a> <b>")? as usize;
                    let b = num("pattern-edge <a> <b>")? as usize;
                    pattern_edges.push((a, b));
                }
                "classes" => {
                    let list = it
                        .next()
                        .ok_or_else(|| err(lineno, "expected class list".into()))?;
                    for name in list.split(',') {
                        classes.push(
                            ClassId::from_name(name)
                                .ok_or_else(|| err(lineno, format!("unknown class `{name}`")))?,
                        );
                    }
                }
                "inject-fault" => {
                    let name = it
                        .next()
                        .ok_or_else(|| err(lineno, "expected fault name".into()))?;
                    fault = Some(
                        Fault::from_name(name)
                            .ok_or_else(|| err(lineno, format!("unknown fault `{name}`")))?,
                    );
                }
                "crash-at" => {
                    let name = it
                        .next()
                        .ok_or_else(|| err(lineno, "expected crash point name".into()))?;
                    crash_at = Some(
                        CrashPoint::parse(name)
                            .ok_or_else(|| err(lineno, format!("unknown crash point `{name}`")))?,
                    );
                }
                "coalesce" => coalesce = num("coalesce <0|1>")? != 0,
                "plan" => {
                    // The plan program is the raw remainder of the line
                    // (it contains spaces); validate it against the
                    // grammar so corpus typos fail loudly at parse time.
                    let text = line
                        .split_once(char::is_whitespace)
                        .map(|(_, rest)| rest.trim())
                        .filter(|t| !t.is_empty())
                        .ok_or_else(|| err(lineno, "expected plan text".into()))?;
                    incgraph_dataflow::Plan::parse(text)
                        .map_err(|e| err(lineno, format!("bad plan: {e}")))?;
                    plan = Some(text.to_string());
                }
                "threads" => {
                    let list = it
                        .next()
                        .ok_or_else(|| err(lineno, "expected thread list".into()))?;
                    for t in list.split(',') {
                        threads.push(
                            t.parse()
                                .map_err(|_| err(lineno, format!("bad thread count `{t}`")))?,
                        );
                    }
                }
                "edge" => {
                    let u = num("edge <u> <v> <w>")? as NodeId;
                    let v = num("edge <u> <v> <w>")? as NodeId;
                    let w = num("edge <u> <v> <w>")? as Weight;
                    edges.push((u, v, w));
                }
                "batch" => schedule.push(UpdateBatch::new()),
                "+" => {
                    let batch = schedule
                        .last_mut()
                        .ok_or_else(|| err(lineno, "`+` before any `batch`".into()))?;
                    let u = num("+ <u> <v> <w>")? as NodeId;
                    let v = num("+ <u> <v> <w>")? as NodeId;
                    let w = num("+ <u> <v> <w>")? as Weight;
                    batch.insert(u, v, w);
                }
                "-" => {
                    let batch = schedule
                        .last_mut()
                        .ok_or_else(|| err(lineno, "`-` before any `batch`".into()))?;
                    let u = num("- <u> <v>")? as NodeId;
                    let v = num("- <u> <v>")? as NodeId;
                    batch.delete(u, v);
                }
                "end" => saw_end = true,
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
        }
        if !saw_header {
            return Err(err(1, "missing header `incgraph-case v1`".into()));
        }
        if !saw_end {
            return Err(err(text.lines().count(), "missing `end`".into()));
        }
        let nodes = nodes.ok_or_else(|| err(1, "missing `nodes`".into()))?;
        if let Some(l) = &labels {
            if l.len() != nodes {
                return Err(err(1, format!("{} labels for {nodes} nodes", l.len())));
            }
        }
        if classes.is_empty() {
            return Err(err(1, "missing `classes`".into()));
        }
        if threads.is_empty() {
            threads.push(1);
        }
        let pattern = pattern_labels.map(|pl| Pattern::new(pl, &pattern_edges));
        if classes.contains(&ClassId::Sim) && pattern.is_none() {
            return Err(err(1, "class `sim` needs pattern-labels".into()));
        }
        if let Some(text) = &plan {
            let parsed = incgraph_dataflow::Plan::parse(text).expect("validated above");
            for s in parsed.sources() {
                if let incgraph_dataflow::Source::Class { class, .. } = s {
                    if class == ClassId::Sim && pattern.is_none() {
                        return Err(err(1, "plan uses `sim` but no pattern-labels".into()));
                    }
                    if directed && class.requires_undirected() {
                        return Err(err(
                            1,
                            format!("plan uses `{}` on a directed graph", class.name()),
                        ));
                    }
                }
            }
        }
        if directed {
            if let Some(c) = classes.iter().find(|c| c.requires_undirected()) {
                return Err(err(
                    1,
                    format!("class `{}` is undefined on directed graphs", c.name()),
                ));
            }
        }
        if (source as usize) >= nodes {
            return Err(err(1, format!("source {source} out of range")));
        }
        Ok(Case {
            seed,
            directed,
            nodes,
            labels,
            edges,
            schedule,
            classes,
            source,
            pattern,
            threads,
            fault,
            crash_at,
            coalesce,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Case {
        let mut b1 = UpdateBatch::new();
        b1.insert(0, 2, 3).delete(1, 2);
        let mut b2 = UpdateBatch::new();
        b2.insert(3, 0, 1);
        Case {
            seed: 99,
            directed: true,
            nodes: 4,
            labels: Some(vec![0, 1, 0, 2]),
            edges: vec![(0, 1, 5), (1, 2, 1), (2, 3, 2)],
            schedule: vec![b1, b2],
            classes: vec![ClassId::Sssp, ClassId::Sim, ClassId::Dfs],
            source: 1,
            pattern: Some(Pattern::new(vec![0, 1], &[(0, 1)])),
            threads: vec![1, 2, 4],
            fault: Some(Fault::SkipOp),
            crash_at: Some(CrashPoint::WalPostFsync),
            coalesce: true,
            plan: Some("d = sssp(source=1); f = filter(d, val < 9); n = count(f)".into()),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let case = sample();
        let text = case.render(&["minimized from seed 99".into()]);
        let parsed = Case::parse(&text).expect("roundtrip parse");
        // Pattern lacks PartialEq; compare the rest plus pattern shape.
        assert_eq!(parsed.seed, case.seed);
        assert_eq!(parsed.directed, case.directed);
        assert_eq!(parsed.nodes, case.nodes);
        assert_eq!(parsed.labels, case.labels);
        assert_eq!(parsed.edges, case.edges);
        assert_eq!(parsed.schedule, case.schedule);
        assert_eq!(parsed.classes, case.classes);
        assert_eq!(parsed.source, case.source);
        assert_eq!(parsed.threads, case.threads);
        assert_eq!(parsed.fault, case.fault);
        assert_eq!(parsed.crash_at, case.crash_at);
        assert_eq!(parsed.coalesce, case.coalesce);
        assert_eq!(parsed.plan, case.plan);
        let (p, q) = (parsed.pattern.unwrap(), case.pattern.unwrap());
        assert_eq!(p.node_count(), q.node_count());
        assert_eq!(p.edges().collect::<Vec<_>>(), q.edges().collect::<Vec<_>>());
        assert_eq!(p.label(0), q.label(0));
    }

    #[test]
    fn build_graph_matches_edges() {
        let case = sample();
        let g = case.build_graph();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_directed());
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.label(3), 2);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Case::parse("").is_err(), "empty file");
        assert!(Case::parse("incgraph-case v1\nend\n").is_err(), "no nodes");
        let no_end = "incgraph-case v1\nnodes 2\nclasses cc\n";
        assert!(Case::parse(no_end).is_err(), "missing end");
        let bad_class = "incgraph-case v1\nnodes 2\nclasses zap\nend\n";
        assert!(Case::parse(bad_class).is_err(), "unknown class");
        let op_outside = "incgraph-case v1\nnodes 2\nclasses cc\n+ 0 1 1\nend\n";
        assert!(Case::parse(op_outside).is_err(), "op before batch");
        let sim_no_pattern = "incgraph-case v1\nnodes 2\nclasses sim\nend\n";
        assert!(Case::parse(sim_no_pattern).is_err(), "sim needs pattern");
        let bad_plan = "incgraph-case v1\nnodes 2\nclasses cc\nplan x = zap(q)\nend\n";
        assert!(Case::parse(bad_plan).is_err(), "plan must parse");
        let sim_plan = "incgraph-case v1\nnodes 2\nclasses cc\nplan s = sim; n = count(s)\nend\n";
        assert!(Case::parse(sim_plan).is_err(), "sim plan needs pattern");
        let dir_plan =
            "incgraph-case v1\ndirected 1\nnodes 2\nclasses cc\nplan a = lcc; n = count(a)\nend\n";
        assert!(Case::parse(dir_plan).is_err(), "lcc plan needs undirected");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header comment\n\nincgraph-case v1\n# mid comment\nnodes 3\nclasses cc\nedge 0 1 1\nbatch\n+ 1 2 1\nend\n";
        let case = Case::parse(text).expect("parse");
        assert_eq!(case.nodes, 3);
        assert_eq!(case.edges.len(), 1);
        assert_eq!(case.schedule_len(), 1);
        assert_eq!(case.threads, vec![1], "threads default to sequential");
    }

    #[test]
    fn schedule_len_counts_units() {
        assert_eq!(sample().schedule_len(), 3);
    }
}
