//! Exactly-once WAL audit for ingest schedulers.
//!
//! The stream harness (crates/bench `stream`) acks a flush only after
//! [`DurableSession::apply`](incgraph_durable::DurableSession) returns,
//! i.e. after the WAL fsync that commits it. The paper-level invariant a
//! kill-and-recover run must preserve is therefore *exactly-once for every
//! acked flush*: each acked batch occupies exactly one WAL record whose
//! content matches what the scheduler admitted, and the only records
//! without an ack are the bounded in-flight tail a crash can strand
//! (committed by fsync, died before the ack made it back).
//!
//! [`chaos`](crate::chaos) checks the same invariant for the network
//! service by fingerprinting per-client marker edges; this module is the
//! store-local generalization: the ingest side records `(WAL sequence,
//! content fingerprint)` per ack and [`audit_wal`] replays the log against
//! that ledger. Both the RTO test (`tests/stream_rto.rs`) and the `incgraph
//! stream --crash-at` path run it after every recovery.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use incgraph_durable::crc::crc32;
use incgraph_durable::{encode_record, Wal, FIRST_SEQ, WAL_NAME};
use incgraph_graph::UpdateBatch;

/// Sequence-independent content fingerprint of a batch: the CRC of its
/// canonical WAL encoding under a fixed placeholder sequence. Ingest
/// records this per acked flush; [`audit_wal`] recomputes it per WAL
/// record — a match proves the record holds the acked ΔG, not merely a
/// record at the acked sequence.
pub fn batch_fingerprint(batch: &UpdateBatch) -> u32 {
    crc32(&encode_record(0, batch))
}

/// One acknowledged flush, as the ingest side saw it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckedBatch {
    /// WAL sequence the store assigned at the commit point.
    pub seq: u64,
    /// [`batch_fingerprint`] of the admitted ΔG.
    pub fingerprint: u32,
}

/// Clean-audit accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalAuditReport {
    /// Records decoded from the WAL.
    pub wal_batches: usize,
    /// Acked flushes verified present exactly once with matching content.
    pub acked: usize,
    /// Logged-but-unacked records (the crash-stranded in-flight tail).
    pub committed_unacked: usize,
}

/// An exactly-once violation (or a harness bug surfacing as one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalAuditFailure {
    /// The WAL could not be opened or decoded.
    Io(String),
    /// WAL sequences are not strictly contiguous from [`FIRST_SEQ`].
    NonContiguous { expected: u64, found: u64 },
    /// The ingest ledger acked the same sequence twice — a harness bug.
    DuplicateAck { seq: u64 },
    /// An acked flush has no WAL record: an acknowledged op was lost.
    AckedButLost { seq: u64 },
    /// The record at an acked sequence holds different content.
    ContentMismatch { seq: u64, expected: u32, found: u32 },
    /// More unacked records than crashes could have stranded in flight.
    ExcessUnacked { count: usize, limit: usize },
}

impl fmt::Display for WalAuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalAuditFailure::Io(e) => write!(f, "wal audit i/o: {e}"),
            WalAuditFailure::NonContiguous { expected, found } => {
                write!(f, "wal seq gap: expected {expected}, found {found}")
            }
            WalAuditFailure::DuplicateAck { seq } => {
                write!(f, "ingest ledger acked seq {seq} twice")
            }
            WalAuditFailure::AckedButLost { seq } => {
                write!(f, "acked batch at seq {seq} missing from the wal")
            }
            WalAuditFailure::ContentMismatch {
                seq,
                expected,
                found,
            } => write!(
                f,
                "wal record {seq} content crc {found:#010x} != acked {expected:#010x}"
            ),
            WalAuditFailure::ExcessUnacked { count, limit } => write!(
                f,
                "{count} committed-unacked wal records exceed the in-flight limit {limit}"
            ),
        }
    }
}

impl std::error::Error for WalAuditFailure {}

/// Audits the WAL under `dir` against the ingest-side ack ledger:
///
/// 1. sequences are strictly contiguous from [`FIRST_SEQ`] (no gap, no
///    duplicate, no reordering);
/// 2. every acked flush is present **exactly once** — guaranteed by
///    contiguity plus a per-seq lookup — and its content fingerprint
///    matches the admitted ΔG;
/// 3. records without an ack number at most `max_committed_unacked`
///    (one per kill for a single-writer scheduler: the batch whose fsync
///    landed but whose ack never returned).
pub fn audit_wal(
    dir: &Path,
    acked: &[AckedBatch],
    max_committed_unacked: usize,
) -> Result<WalAuditReport, WalAuditFailure> {
    let opened = Wal::open(&dir.join(WAL_NAME)).map_err(|e| WalAuditFailure::Io(e.to_string()))?;
    let records = opened.records;

    let mut by_seq: HashMap<u64, u32> = HashMap::with_capacity(records.len());
    for (expected, rec) in (FIRST_SEQ..).zip(records.iter()) {
        if rec.seq != expected {
            return Err(WalAuditFailure::NonContiguous {
                expected,
                found: rec.seq,
            });
        }
        by_seq.insert(rec.seq, batch_fingerprint(&rec.batch));
    }

    let mut report = WalAuditReport {
        wal_batches: records.len(),
        ..WalAuditReport::default()
    };
    let mut acked_seqs: HashMap<u64, ()> = HashMap::with_capacity(acked.len());
    for a in acked {
        if acked_seqs.insert(a.seq, ()).is_some() {
            return Err(WalAuditFailure::DuplicateAck { seq: a.seq });
        }
        match by_seq.get(&a.seq) {
            None => return Err(WalAuditFailure::AckedButLost { seq: a.seq }),
            Some(&found) if found != a.fingerprint => {
                return Err(WalAuditFailure::ContentMismatch {
                    seq: a.seq,
                    expected: a.fingerprint,
                    found,
                })
            }
            Some(_) => report.acked += 1,
        }
    }

    report.committed_unacked = records
        .iter()
        .filter(|r| !acked_seqs.contains_key(&r.seq))
        .count();
    if report.committed_unacked > max_committed_unacked {
        return Err(WalAuditFailure::ExcessUnacked {
            count: report.committed_unacked,
            limit: max_committed_unacked,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_durable::{DurableOptions, DurableSession};
    use incgraph_graph::DynamicGraph;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "incgraph-walcheck-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn batch(u: u32, v: u32, w: u32) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        b.insert(u, v, w);
        b
    }

    /// Writes `n` single-insert batches through a real durable session and
    /// returns the ledger of acks.
    fn write_store(dir: &Path, n: u64) -> Vec<AckedBatch> {
        let g = DynamicGraph::new(true, 64);
        let mut s = DurableSession::create(dir, g, Vec::new(), DurableOptions::default()).unwrap();
        let mut acked = Vec::new();
        for k in 0..n {
            let b = batch(k as u32, (k + 1) as u32, 1 + k as u32);
            s.apply(&b).unwrap();
            acked.push(AckedBatch {
                seq: s.last_seq(),
                fingerprint: batch_fingerprint(&b),
            });
        }
        acked
    }

    #[test]
    fn clean_ledger_audits_clean() {
        let dir = scratch("clean");
        let acked = write_store(&dir, 5);
        let report = audit_wal(&dir, &acked, 0).unwrap();
        assert_eq!(report.wal_batches, 5);
        assert_eq!(report.acked, 5);
        assert_eq!(report.committed_unacked, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unacked_tail_is_tolerated_within_limit_only() {
        let dir = scratch("tail");
        let mut acked = write_store(&dir, 4);
        // Pretend the last flush's ack never came back.
        acked.pop();
        let report = audit_wal(&dir, &acked, 1).unwrap();
        assert_eq!(report.acked, 3);
        assert_eq!(report.committed_unacked, 1);
        assert!(matches!(
            audit_wal(&dir, &acked, 0),
            Err(WalAuditFailure::ExcessUnacked { count: 1, limit: 0 })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_ack_and_wrong_content_are_caught() {
        let dir = scratch("lost");
        let mut acked = write_store(&dir, 3);
        acked.push(AckedBatch {
            seq: 99,
            fingerprint: 0,
        });
        assert!(matches!(
            audit_wal(&dir, &acked, 0),
            Err(WalAuditFailure::AckedButLost { seq: 99 })
        ));
        acked.pop();
        acked[1].fingerprint ^= 1;
        assert!(matches!(
            audit_wal(&dir, &acked, 0),
            Err(WalAuditFailure::ContentMismatch { seq: 2, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_ack_is_a_harness_bug() {
        let dir = scratch("dup");
        let mut acked = write_store(&dir, 2);
        acked.push(acked[0]);
        assert!(matches!(
            audit_wal(&dir, &acked, 0),
            Err(WalAuditFailure::DuplicateAck { seq: 1 })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
