//! The differential oracles: drive a [`Case`](crate::case::Case) through
//! every query class under test and cross-check three properties after
//! every `ΔG` batch.
//!
//! 1. **Incremental vs. batch recompute** (Theorems 1 & 3): the
//!    incremental state resumed from `h(D^r, ΔG)` must hold exactly the
//!    fixpoint a from-scratch batch run computes on `G ⊕ ΔG`. The batch
//!    run is the ground truth — it never touches the incremental path.
//! 2. **Sequential vs. parallel** (C2 schedule independence): states
//!    resuming through the sharded [`ParEngine`](incgraph_core::ParEngine)
//!    at every thread count in the case must match the sequential state,
//!    both at the initial batch fixpoint and after every update.
//! 3. **Boundedness accounting** (`|H⁰| ≤ |AFF|`-style invariants): the
//!    [`BoundednessReport`] of each incremental run must be internally
//!    consistent, and every variable the recompute diff proves *changed*
//!    must have been inspected by the incremental run
//!    (`|AFF_diff| ≤ inspected`) — an incremental run that changes a
//!    variable it never inspected is mis-accounting the very quantity
//!    the paper's boundedness claims are stated over.
//!
//! Faults ([`Fault`]) model the bug shapes PR 1's audit caught in the
//! wild (missed undirected mirrors): they doctor the `AppliedBatch`
//! *presented to the states* while the ground-truth graph keeps the real
//! ΔG, so the oracles must notice.

use crate::case::Case;
use incgraph_algos::{IncrementalState, Session};
use incgraph_core::metrics::BoundednessReport;
use incgraph_dataflow::{eval_once, DataflowSession, Plan, PlanContext, Source};
use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId, Pattern};

/// The seven query classes, in canonical order. Historically this enum
/// lived here; it is now `incgraph_algos::QueryClass`, re-exported under
/// the old name so corpus files, case parsing, and every oracle-facing
/// signature keep working unchanged.
pub use incgraph_algos::QueryClass as ClassId;

/// Which oracle rejected the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleKind {
    /// The incremental state diverged from the batch recompute.
    IncVsBatch,
    /// A parallel resume diverged from the sequential one.
    SeqVsPar {
        /// The offending thread count.
        threads: usize,
    },
    /// The boundedness accounting is inconsistent.
    Boundedness,
    /// A session fed coalesced micro-batches diverged from the batch
    /// ground truth (`--coalesce` campaigns only).
    Coalesce {
        /// How many ΔG batches were merged into the diverging net batch.
        merged: usize,
    },
    /// The standing dataflow view diverged from a fresh plan evaluation
    /// on the current graph (cases carrying a `plan` line).
    Dataflow,
}

impl OracleKind {
    /// Short stable name for case files and logs.
    pub fn name(&self) -> &'static str {
        match self {
            OracleKind::IncVsBatch => "inc-vs-batch",
            OracleKind::SeqVsPar { .. } => "seq-vs-par",
            OracleKind::Boundedness => "boundedness",
            OracleKind::Coalesce { .. } => "coalesce",
            OracleKind::Dataflow => "dataflow",
        }
    }

    /// Same oracle, ignoring parameters — the shrinker's notion of "the
    /// same failure".
    pub fn same_kind(&self, other: &OracleKind) -> bool {
        self.name() == other.name()
    }
}

/// One oracle violation: the first mismatch [`run_case`] hit.
#[derive(Clone, Debug)]
pub struct OracleFailure {
    /// Query class that diverged.
    pub class: ClassId,
    /// Schedule position: `None` = at the initial batch fixpoint,
    /// `Some(r)` = after applying batch `r` (0-based).
    pub round: Option<usize>,
    /// Which oracle fired.
    pub kind: OracleKind,
    /// Human-readable detail (first differing variable, counters, …).
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.round {
            Some(r) => write!(
                f,
                "{} oracle failed for {} after batch {}: {}",
                self.kind.name(),
                self.class.name(),
                r,
                self.detail
            ),
            None => write!(
                f,
                "{} oracle failed for {} at the initial fixpoint: {}",
                self.kind.name(),
                self.class.name(),
                self.detail
            ),
        }
    }
}

/// Outcome of driving one case through all oracles.
#[derive(Debug)]
pub struct RunOutcome {
    /// Total oracle comparisons performed.
    pub checks: u64,
    /// First violation, if any ([`run_case`] stops at the first).
    pub failure: Option<OracleFailure>,
}

impl RunOutcome {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// An artificially injected fault, for validating that the oracles and
/// the shrinker actually have teeth (and for seeding the regression
/// corpus with known-shape failures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Drop the last effective op from every `AppliedBatch` handed to the
    /// algorithm states (the graph keeps it): models the PR-1 class of
    /// bugs where an update path misses one unit update — e.g. the
    /// undirected mirror of an edge.
    SkipOp,
    /// Strip every deletion from the ΔG handed to the states: models an
    /// update path that handles insertions but forgets deletions (values
    /// go stale because the scope function never learns what vanished —
    /// the engine alone cannot repair variables it was never pointed at).
    DropDeletes,
}

impl Fault {
    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Fault::SkipOp => "skip-op",
            Fault::DropDeletes => "drop-deletes",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Fault> {
        match name {
            "skip-op" => Some(Fault::SkipOp),
            "drop-deletes" => Some(Fault::DropDeletes),
            _ => None,
        }
    }

    /// The doctored ΔG the states will see.
    fn doctor(self, applied: &AppliedBatch) -> AppliedBatch {
        let mut ops = applied.ops().to_vec();
        match self {
            Fault::SkipOp => {
                ops.pop();
            }
            Fault::DropDeletes => {
                ops.retain(|o| o.inserted);
            }
        }
        AppliedBatch::from_ops(ops)
    }
}

/// Fresh batch fixpoint for `class` on `g` through the one construction
/// path ([`Session::builder`]); `threads > 1` on a par-capable class
/// builds through the sharded parallel engine and keeps resuming on that
/// many shards. The oracle drives sessions with the *unguarded*
/// [`IncrementalState::update`] — degradation would mask exactly the
/// divergences it exists to find.
fn build_session(
    class: ClassId,
    g: &DynamicGraph,
    source: NodeId,
    pattern: Option<&Pattern>,
    threads: usize,
) -> Session {
    let mut builder = Session::builder(class).threads(threads);
    if class.source_rooted() {
        builder = builder.source(source);
    }
    if class == ClassId::Sim {
        builder = builder.pattern(pattern.expect("sim case without a pattern").clone());
    }
    builder.build(g).expect("session build")
}

/// One class's states under test: the sequential baseline plus one state
/// per parallel thread count.
struct ClassUnderTest {
    class: ClassId,
    seq: Session,
    /// `(threads, state)` pairs for the seq-vs-par oracle.
    par: Vec<(usize, Session)>,
    /// The coalesce-oracle session (`case.coalesce` only): sees the
    /// pending ΔG batches merged into one net batch at every flush.
    coal: Option<Session>,
    /// Batch-fixpoint digest of the previous round, for the AFF diff.
    prev_full: Vec<u64>,
}

/// First index at which two digests differ, with both values. A length
/// mismatch reports the lengths instead.
fn first_diff(a: &[u64], b: &[u64]) -> Option<(usize, u64, u64)> {
    if a.len() != b.len() {
        return Some((a.len().min(b.len()), a.len() as u64, b.len() as u64));
    }
    a.iter()
        .zip(b)
        .enumerate()
        .find(|(_, (x, y))| x != y)
        .map(|(i, (&x, &y))| (i, x, y))
}

/// Number of differing positions (the `|AFF|` diff of oracle 3).
fn diff_count(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Human-readable first divergence between a standing view and a fresh
/// plan evaluation (both are sorted `(key, value, weight)` rows).
fn view_diff(standing: &[(u64, u64, i64)], fresh: &[(u64, u64, i64)]) -> String {
    let extra = standing.iter().find(|r| !fresh.contains(r));
    let missing = fresh.iter().find(|r| !standing.contains(r));
    format!(
        "standing view has {} rows vs {} recomputed; spurious {extra:?}, missing {missing:?}",
        standing.len(),
        fresh.len()
    )
}

/// The boundedness accounting checks for one incremental run.
fn check_boundedness(
    class: ClassId,
    report: &BoundednessReport,
    aff_diff: usize,
    total_vars: usize,
) -> Result<(), String> {
    if report.scope_size as u64 > report.inspected_vars {
        return Err(format!(
            "initial scope |H0|={} exceeds inspected vars {}",
            report.scope_size, report.inspected_vars
        ));
    }
    if report.inspected_vars as usize > total_vars {
        return Err(format!(
            "inspected {} vars of a {}-var universe",
            report.inspected_vars, total_vars
        ));
    }
    if report.run_stats.aborted {
        return Err("un-budgeted oracle run reported an abort".into());
    }
    // Strict AFF accounting only where the generic engine runs: every
    // variable the recompute diff proves changed must have been inspected.
    if class.engine_backed() && aff_diff as u64 > report.inspected_vars {
        return Err(format!(
            "recompute diff changed {aff_diff} vars but the incremental run inspected only {}",
            report.inspected_vars
        ));
    }
    Ok(())
}

/// Clamps an out-of-range source to node 0 (shrinking can drop nodes).
fn clamp_source(source: NodeId, g: &DynamicGraph) -> NodeId {
    if (source as usize) < g.node_count() {
        source
    } else {
        0
    }
}

/// Drives `case` through all oracles; `fault` doctors the ΔG the states
/// see (the ground-truth graph always gets the real one). Stops at the
/// first violation.
pub fn run_case(case: &Case, fault: Option<Fault>) -> RunOutcome {
    let mut g = case.build_graph();
    let source = clamp_source(case.source, &g);
    let pattern = case.pattern.as_ref();
    let mut checks = 0u64;

    // Initial batch fixpoints: sequential baseline + parallel builds.
    let mut classes: Vec<ClassUnderTest> = Vec::with_capacity(case.classes.len());
    for &class in &case.classes {
        let seq = build_session(class, &g, source, pattern, 1);
        let prev_full = seq.digest(&g);
        let mut par = Vec::new();
        if class.par_capable() {
            for &t in &case.threads {
                if t <= 1 {
                    continue;
                }
                let state = build_session(class, &g, source, pattern, t);
                checks += 1;
                let d = state.digest(&g);
                if let Some((i, a, b)) = first_diff(&prev_full, &d) {
                    return RunOutcome {
                        checks,
                        failure: Some(OracleFailure {
                            class,
                            round: None,
                            kind: OracleKind::SeqVsPar { threads: t },
                            detail: format!("var {i}: seq={a} par={b}"),
                        }),
                    };
                }
                par.push((t, state));
            }
        }
        let coal = case
            .coalesce
            .then(|| build_session(class, &g, source, pattern, 1));
        classes.push(ClassUnderTest {
            class,
            seq,
            par,
            coal,
            prev_full,
        });
    }

    // Dataflow oracle (cases carrying a `plan` line): a standing
    // DataflowSession follows the schedule — fed the same *presented*
    // ΔG as the class states, so injected faults reach it too — and its
    // view must equal a from-scratch plan evaluation on every
    // intermediate graph (the operator-level analogue of inc-vs-batch).
    let df_ctx = PlanContext {
        pattern: case.pattern.clone(),
        threads: 0,
    };
    let mut dataflow = case.plan.as_deref().map(|text| {
        let plan = Plan::parse(text).expect("case plan parses (validated by Case::parse)");
        let class = plan
            .sources()
            .iter()
            .find_map(|s| match s {
                Source::Class { class, .. } => Some(*class),
                Source::Labels => None,
            })
            .unwrap_or(ClassId::Cc);
        let session = DataflowSession::build(plan, &g, &df_ctx).expect("case plan builds");
        (session, class)
    });
    if let Some((session, class)) = dataflow.as_ref() {
        checks += 1;
        let text = case.plan.as_deref().expect("dataflow implies plan");
        let fresh = eval_once(text, &g, &df_ctx).expect("plan batch eval");
        if session.view() != fresh {
            return RunOutcome {
                checks,
                failure: Some(OracleFailure {
                    class: *class,
                    round: None,
                    kind: OracleKind::Dataflow,
                    detail: view_diff(&session.view(), &fresh),
                }),
            };
        }
    }

    // Coalesce oracle: the *real* applied batches (never the doctored
    // ones — the Coalescer's contract is effective ops from an actual
    // graph) accumulate here and flush as one net batch every
    // `COALESCE_EVERY` rounds and at the end of the schedule.
    const COALESCE_EVERY: usize = 2;
    let mut pending: Vec<AppliedBatch> = Vec::new();

    for (round, batch) in case.schedule.iter().enumerate() {
        let applied = batch.apply(&mut g);
        let presented = match fault {
            Some(f) => f.doctor(&applied),
            None => applied.clone(),
        };
        if case.coalesce {
            pending.push(applied.clone());
        }
        let flush =
            case.coalesce && (pending.len() >= COALESCE_EVERY || round + 1 == case.schedule.len());
        for cut in &mut classes {
            let class = cut.class;
            // Incremental step on the sequential baseline.
            let report = cut.seq.update(&g, &presented);

            // Ground truth: a from-scratch batch run on the updated graph.
            let fresh = build_session(class, &g, source, pattern, 1);
            let full = fresh.digest(&g);

            checks += 1;
            let inc = cut.seq.digest(&g);
            if let Some((i, a, b)) = first_diff(&full, &inc) {
                return RunOutcome {
                    checks,
                    failure: Some(OracleFailure {
                        class,
                        round: Some(round),
                        kind: OracleKind::IncVsBatch,
                        detail: format!("var {i}: batch={a} incremental={b}"),
                    }),
                };
            }

            checks += 1;
            let aff_diff = if full.len() == cut.prev_full.len() {
                diff_count(&cut.prev_full, &full)
            } else {
                0 // digest resized (e.g. bridge list); skip the diff
            };
            if let Err(detail) = check_boundedness(class, &report, aff_diff, cut.seq.total_vars(&g))
            {
                return RunOutcome {
                    checks,
                    failure: Some(OracleFailure {
                        class,
                        round: Some(round),
                        kind: OracleKind::Boundedness,
                        detail,
                    }),
                };
            }

            for (t, state) in &mut cut.par {
                state.update(&g, &presented);
                checks += 1;
                let d = state.digest(&g);
                if let Some((i, a, b)) = first_diff(&full, &d) {
                    return RunOutcome {
                        checks,
                        failure: Some(OracleFailure {
                            class,
                            round: Some(round),
                            kind: OracleKind::SeqVsPar { threads: *t },
                            detail: format!("var {i}: batch={a} par={b}"),
                        }),
                    };
                }
            }

            if flush {
                let state = cut.coal.as_mut().expect("flush implies coalesce sessions");
                let net = incgraph_core::coalesce_batches(g.is_directed(), &pending);
                state.update(&g, &net);
                checks += 1;
                let d = state.digest(&g);
                if let Some((i, a, b)) = first_diff(&full, &d) {
                    return RunOutcome {
                        checks,
                        failure: Some(OracleFailure {
                            class,
                            round: Some(round),
                            kind: OracleKind::Coalesce {
                                merged: pending.len(),
                            },
                            detail: format!("var {i}: batch={a} coalesced={b}"),
                        }),
                    };
                }
            }
            cut.prev_full = full;
        }
        if let Some((session, class)) = dataflow.as_mut() {
            session.apply(&g, &presented);
            checks += 1;
            let text = case.plan.as_deref().expect("dataflow implies plan");
            let fresh = eval_once(text, &g, &df_ctx).expect("plan batch eval");
            if session.view() != fresh {
                return RunOutcome {
                    checks,
                    failure: Some(OracleFailure {
                        class: *class,
                        round: Some(round),
                        kind: OracleKind::Dataflow,
                        detail: view_diff(&session.view(), &fresh),
                    }),
                };
            }
        }
        if flush {
            pending.clear();
        }
    }
    RunOutcome {
        checks,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn small_case(classes: Vec<ClassId>) -> Case {
        let mut b1 = UpdateBatch::new();
        b1.insert(0, 3, 2).delete(1, 2);
        let mut b2 = UpdateBatch::new();
        b2.insert(2, 4, 1).insert(4, 0, 3);
        Case {
            seed: 7,
            directed: false,
            nodes: 5,
            labels: None,
            edges: vec![(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 4, 2)],
            schedule: vec![b1, b2],
            classes,
            source: 0,
            pattern: Some(Pattern::new(vec![0, 0], &[(0, 1)])),
            threads: vec![1, 2],
            fault: None,
            crash_at: None,
            coalesce: false,
            plan: None,
        }
    }

    #[test]
    fn clean_case_passes_all_oracles_for_all_classes() {
        let outcome = run_case(&small_case(ClassId::ALL.to_vec()), None);
        assert!(outcome.passed(), "{:?}", outcome.failure);
        // init par checks (5 par classes) + per-round: 7 value + 7
        // boundedness + 5 par, times 2 rounds.
        assert_eq!(outcome.checks, 5 + 2 * (7 + 7 + 5));
    }

    #[test]
    fn coalesce_mode_adds_one_check_per_class_per_flush() {
        let mut case = small_case(ClassId::ALL.to_vec());
        case.coalesce = true;
        let outcome = run_case(&case, None);
        assert!(outcome.passed(), "{:?}", outcome.failure);
        // The 2-round schedule flushes once (at round 1, when two ΔG
        // batches are pending): plain-mode checks + 7 coalesce checks.
        assert_eq!(outcome.checks, 5 + 2 * (7 + 7 + 5) + 7);
    }

    #[test]
    fn coalesce_case_roundtrips_through_corpus_format() {
        let mut case = small_case(vec![ClassId::Cc]);
        case.coalesce = true;
        let parsed = Case::parse(&case.render(&[])).expect("parse");
        assert!(parsed.coalesce, "coalesce flag survives render/parse");
        assert!(run_case(&parsed, None).passed());
    }

    #[test]
    fn skip_op_fault_is_caught() {
        let outcome = run_case(&small_case(vec![ClassId::Sssp]), Some(Fault::SkipOp));
        let failure = outcome.failure.expect("fault must be caught");
        assert_eq!(failure.class, ClassId::Sssp);
        assert!(failure.kind.same_kind(&OracleKind::IncVsBatch));
    }

    #[test]
    fn drop_deletes_fault_is_caught() {
        // Directed path 0→1→2→3→4; deleting the first edge makes every
        // downstream distance infinite. A state that never sees the
        // delete keeps them finite — unmissable for inc-vs-batch.
        let mut b = UpdateBatch::new();
        b.delete(0, 1);
        let case = Case {
            seed: 11,
            directed: true,
            nodes: 5,
            labels: None,
            edges: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)],
            schedule: vec![b],
            classes: vec![ClassId::Sssp],
            source: 0,
            pattern: None,
            threads: vec![1],
            fault: None,
            crash_at: None,
            coalesce: false,
            plan: None,
        };
        let outcome = run_case(&case, Some(Fault::DropDeletes));
        let failure = outcome.failure.expect("fault must be caught");
        assert!(failure.kind.same_kind(&OracleKind::IncVsBatch));
    }

    #[test]
    fn class_names_roundtrip() {
        for c in ClassId::ALL {
            assert_eq!(ClassId::from_name(c.name()), Some(c));
        }
        assert_eq!(ClassId::from_name("nope"), None);
        for f in [Fault::SkipOp, Fault::DropDeletes] {
            assert_eq!(Fault::from_name(f.name()), Some(f));
        }
    }
}
