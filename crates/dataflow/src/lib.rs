//! Composable incremental dataflow over query-class outputs.
//!
//! The paper's deduced incremental algorithms maintain one relation per
//! query class — σ_x per node. This crate closes the loop *above* those
//! algorithms: class outputs become change streams ([`Delta`] /
//! [`DiffCollection`], §z-sets), a small operator algebra
//! (filter/map/join/count/sum/min/max/threshold) composes them into
//! views, and the `incgraph-plan/1` grammar ([`Plan`]) names such
//! compositions so they can stand on the wire (`PLAN`/`UNPLAN`/`PLANQ`),
//! in the CLI (`incgraph query --plan`), and under the differential
//! fuzzer (`incgraph fuzz --dataflow`).
//!
//! The contract mirrors the engine's own: every operator's per-tick cost
//! is `O(|Δinput|)` (the extremum aggregates add a counted `O(n)` rescan
//! fallback when a retraction dethrones the cached extremum), and a
//! [`DataflowSession`]'s incrementally maintained view equals the view
//! built from scratch on the final graph — the property the dataflow
//! oracle checks across all seven classes.
//!
//! ```
//! use incgraph_dataflow::{DataflowSession, Plan, PlanContext};
//! use incgraph_graph::{DynamicGraph, UpdateBatch};
//!
//! let mut g = DynamicGraph::new(false, 5);
//! UpdateBatch::new().insert(0, 1, 1).insert(1, 2, 1).apply(&mut g);
//! let plan = Plan::parse("d = sssp(source=0); near = filter(d, val < 2); n = count(near)")
//!     .unwrap();
//! let mut df = DataflowSession::build(plan, &g, &PlanContext::default()).unwrap();
//! assert_eq!(df.view(), vec![(0, 2, 1)]); // two nodes within distance 2
//!
//! let mut g2 = g.clone();
//! let applied = UpdateBatch::new().insert(0, 4, 1).apply(&mut g2);
//! let delta = df.apply(&g2, &applied);
//! assert!(!delta.is_empty()); // node 4 entered the radius: count 2 → 3
//! assert_eq!(df.view(), vec![(0, 3, 1)]);
//! ```

mod delta;
mod ops;
mod plan;
mod session;

pub use delta::{Delta, DiffCollection, Row};
pub use ops::{Coll, Rows};
pub use plan::{
    AggKind, ArithOp, Binding, Cmp, Expr, Field, JoinVal, MapExpr, Plan, PlanParseError, Pred,
    Source, PLAN_GRAMMAR,
};
pub use session::{eval_once, DataflowError, DataflowSession, PlanContext};
