//! The `incgraph-plan/1` grammar: a textual, line-oriented description
//! of a dataflow DAG over query-class outputs.
//!
//! A plan is a `;`-separated sequence of named bindings, each referring
//! only to **earlier** names — so definition order is a topological
//! order of the DAG and shared sub-plans are written once and referenced
//! many times:
//!
//! ```text
//! d = sssp(source=0); near = filter(d, val < 6); n = count(near)
//! ```
//!
//! Sources: `sssp(source=K)` / `reach(source=K)` (the `source=` argument
//! is optional and defaults to 0), `cc`, `lcc`, `dfs`, `bc`, `sim`
//! (pattern comes from the ambient [`PlanContext`], never from the plan
//! text), and `labels` (the node → label table). Operators:
//! `filter(x, PRED)`, `map(x, val OP N)`, `join(a, b[, val=MODE])`,
//! `count(x)`, `sum(x)`, `min(x)`, `max(x)`, `threshold(x, PRED)`.
//! `PRED` is `key` or `val` compared (`< <= > >= == !=`) to an unsigned
//! literal; map `OP` is one of `+ - * / % >> << &`; join `MODE` is
//! `left|right|sum|min|max` (default `sum`). The **last** binding is the
//! plan's root view.
//!
//! [`Plan::parse`] and [`Plan::display`] round-trip: `display` emits the
//! canonical single-line form (single spaces, explicit `source=`/`val=`
//! arguments) and `parse(display(p)) == p` for every valid plan — tests
//! pin this, and the wire protocol and the fuzz-case format both ship
//! plans in canonical form.
//!
//! [`PlanContext`]: crate::PlanContext

use incgraph_algos::QueryClass;
use incgraph_graph::NodeId;
use std::fmt;

/// Grammar version tag; bump on any syntax or semantics change.
pub const PLAN_GRAMMAR: &str = "incgraph-plan/1";

/// The field a predicate inspects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Field {
    /// The row key (a node id for class sources).
    Key,
    /// The row value (σ_x, a label, an aggregate).
    Val,
}

impl Field {
    fn name(self) -> &'static str {
        match self {
            Field::Key => "key",
            Field::Val => "val",
        }
    }
}

/// Comparison operator of a predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl Cmp {
    fn name(self) -> &'static str {
        match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        }
    }
}

/// A row predicate: `field cmp literal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pred {
    pub field: Field,
    pub cmp: Cmp,
    pub lit: u64,
}

impl Pred {
    /// Evaluates the predicate on one row.
    pub fn eval(&self, key: u64, val: u64) -> bool {
        let x = match self.field {
            Field::Key => key,
            Field::Val => val,
        };
        match self.cmp {
            Cmp::Lt => x < self.lit,
            Cmp::Le => x <= self.lit,
            Cmp::Gt => x > self.lit,
            Cmp::Ge => x >= self.lit,
            Cmp::Eq => x == self.lit,
            Cmp::Ne => x != self.lit,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.field.name(), self.cmp.name(), self.lit)
    }
}

/// Arithmetic operator of a `map` expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shr,
    Shl,
    And,
}

impl ArithOp {
    fn name(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Rem => "%",
            ArithOp::Shr => ">>",
            ArithOp::Shl => "<<",
            ArithOp::And => "&",
        }
    }
}

/// A value transform: `val OP lit`. Arithmetic is total and
/// deterministic: add/sub/mul wrap, divide/remainder by zero yield 0,
/// and shifts mask the count to 0..64.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapExpr {
    pub op: ArithOp,
    pub lit: u64,
}

impl MapExpr {
    /// Applies the transform to one value.
    pub fn eval(&self, val: u64) -> u64 {
        match self.op {
            ArithOp::Add => val.wrapping_add(self.lit),
            ArithOp::Sub => val.wrapping_sub(self.lit),
            ArithOp::Mul => val.wrapping_mul(self.lit),
            ArithOp::Div => val.checked_div(self.lit).unwrap_or(0),
            ArithOp::Rem => val.checked_rem(self.lit).unwrap_or(0),
            ArithOp::Shr => val >> (self.lit & 63),
            ArithOp::Shl => val << (self.lit & 63),
            ArithOp::And => val & self.lit,
        }
    }
}

impl fmt::Display for MapExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "val {} {}", self.op.name(), self.lit)
    }
}

/// How a join combines the two matched values into the output value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinVal {
    Left,
    Right,
    Sum,
    Min,
    Max,
}

impl JoinVal {
    fn name(self) -> &'static str {
        match self {
            JoinVal::Left => "left",
            JoinVal::Right => "right",
            JoinVal::Sum => "sum",
            JoinVal::Min => "min",
            JoinVal::Max => "max",
        }
    }

    /// Combines the matched left/right values.
    pub fn eval(self, left: u64, right: u64) -> u64 {
        match self {
            JoinVal::Left => left,
            JoinVal::Right => right,
            JoinVal::Sum => left.wrapping_add(right),
            JoinVal::Min => left.min(right),
            JoinVal::Max => left.max(right),
        }
    }
}

/// Aggregate kind of a whole-collection reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    Count,
    Sum,
    Min,
    Max,
}

impl AggKind {
    fn name(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }
}

/// A dataflow source: one query class's per-node output, or the node →
/// label table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Source {
    /// A class output; `source` is `Some` exactly for the source-rooted
    /// classes (SSSP, Reach).
    Class {
        class: QueryClass,
        source: Option<NodeId>,
    },
    /// The node → label table (`labels`).
    Labels,
}

/// One plan expression. Operator inputs are indexes of earlier bindings
/// (resolved at parse time), so a parsed plan is structurally a DAG in
/// topological order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expr {
    Source(Source),
    Filter {
        input: usize,
        pred: Pred,
    },
    Map {
        input: usize,
        expr: MapExpr,
    },
    Join {
        left: usize,
        right: usize,
        val: JoinVal,
    },
    Agg {
        input: usize,
        kind: AggKind,
    },
    Threshold {
        input: usize,
        pred: Pred,
    },
}

/// One named binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    pub name: String,
    pub expr: Expr,
}

/// A parsed plan: bindings in definition (= topological) order; the last
/// binding is the root view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    bindings: Vec<Binding>,
}

/// A plan-text rejection, with the offending binding for context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError {
    /// 0-based binding index the error was found in.
    pub binding: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan binding {}: {}", self.binding, self.msg)
    }
}

impl std::error::Error for PlanParseError {}

impl Plan {
    /// The bindings in definition order.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Index of the root view (the last binding).
    pub fn root(&self) -> usize {
        self.bindings.len() - 1
    }

    /// Every distinct source the plan reads, sorted.
    pub fn sources(&self) -> Vec<Source> {
        let mut out: Vec<Source> = self
            .bindings
            .iter()
            .filter_map(|b| match b.expr {
                Expr::Source(s) => Some(s),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Parses `incgraph-plan/1` text. Whitespace-insensitive; names must
    /// be `[a-z_][a-z0-9_]*`; every reference must point at an earlier
    /// binding.
    pub fn parse(text: &str) -> Result<Plan, PlanParseError> {
        let mut bindings: Vec<Binding> = Vec::new();
        let err = |i: usize, msg: String| PlanParseError { binding: i, msg };
        for (i, part) in text.split(';').map(str::trim).enumerate() {
            if part.is_empty() {
                return Err(err(i, "empty binding".into()));
            }
            let (name, expr_text) = part
                .split_once('=')
                .ok_or_else(|| err(i, format!("expected `name = expr`, got {part:?}")))?;
            let name = name.trim();
            if !ident_ok(name) {
                return Err(err(i, format!("bad name {name:?}")));
            }
            if bindings.iter().any(|b| b.name == name) {
                return Err(err(i, format!("duplicate name {name:?}")));
            }
            let expr = parse_expr(expr_text.trim(), &bindings).map_err(|msg| err(i, msg))?;
            bindings.push(Binding {
                name: name.to_string(),
                expr,
            });
        }
        if bindings.is_empty() {
            return Err(err(0, "empty plan".into()));
        }
        Ok(Plan { bindings })
    }

    /// The canonical single-line form; [`Plan::parse`] of it yields an
    /// equal plan.
    pub fn display(&self) -> String {
        self.bindings
            .iter()
            .map(|b| format!("{} = {}", b.name, self.expr_text(&b.expr)))
            .collect::<Vec<_>>()
            .join("; ")
    }

    fn expr_text(&self, expr: &Expr) -> String {
        let name = |i: usize| self.bindings[i].name.as_str();
        match *expr {
            Expr::Source(Source::Class { class, source }) => match source {
                Some(s) => format!("{}(source={s})", class.name()),
                None => class.name().to_string(),
            },
            Expr::Source(Source::Labels) => "labels".to_string(),
            Expr::Filter { input, pred } => format!("filter({}, {pred})", name(input)),
            Expr::Map { input, expr } => format!("map({}, {expr})", name(input)),
            Expr::Join { left, right, val } => {
                format!("join({}, {}, val={})", name(left), name(right), val.name())
            }
            Expr::Agg { input, kind } => format!("{}({})", kind.name(), name(input)),
            Expr::Threshold { input, pred } => {
                format!("threshold({}, {pred})", name(input))
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

fn ident_ok(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase() || c == '_')
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Splits `func(args)`; a bare identifier is returned with no args.
fn split_call(text: &str) -> Result<(&str, Option<&str>), String> {
    match text.find('(') {
        None => Ok((text, None)),
        Some(open) => {
            let func = text[..open].trim_end();
            let rest = &text[open + 1..];
            let close = rest
                .rfind(')')
                .ok_or_else(|| format!("unclosed `(` in {text:?}"))?;
            if !rest[close + 1..].trim().is_empty() {
                return Err(format!("trailing garbage after `)` in {text:?}"));
            }
            Ok((func, Some(rest[..close].trim())))
        }
    }
}

/// Splits a top-level comma-separated argument list (no nesting in this
/// grammar, so a plain split suffices).
fn split_args(args: &str) -> Vec<&str> {
    if args.is_empty() {
        Vec::new()
    } else {
        args.split(',').map(str::trim).collect()
    }
}

fn resolve(name: &str, bindings: &[Binding]) -> Result<usize, String> {
    bindings
        .iter()
        .position(|b| b.name == name)
        .ok_or_else(|| format!("unknown input {name:?} (must be an earlier binding)"))
}

fn parse_uint(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad number {s:?}"))
}

fn parse_pred(s: &str) -> Result<Pred, String> {
    // Two-char operators first so `<=` is not read as `<` + `=5`.
    const CMPS: [(&str, Cmp); 6] = [
        ("<=", Cmp::Le),
        (">=", Cmp::Ge),
        ("==", Cmp::Eq),
        ("!=", Cmp::Ne),
        ("<", Cmp::Lt),
        (">", Cmp::Gt),
    ];
    for (tok, cmp) in CMPS {
        if let Some(pos) = s.find(tok) {
            let field = match s[..pos].trim() {
                "key" => Field::Key,
                "val" => Field::Val,
                other => return Err(format!("bad predicate field {other:?}")),
            };
            let lit = parse_uint(s[pos + tok.len()..].trim())?;
            return Ok(Pred { field, cmp, lit });
        }
    }
    Err(format!("bad predicate {s:?}"))
}

fn parse_map_expr(s: &str) -> Result<MapExpr, String> {
    let rest = s
        .strip_prefix("val")
        .ok_or_else(|| format!("map expression must start with `val`, got {s:?}"))?
        .trim_start();
    const OPS: [(&str, ArithOp); 8] = [
        (">>", ArithOp::Shr),
        ("<<", ArithOp::Shl),
        ("+", ArithOp::Add),
        ("-", ArithOp::Sub),
        ("*", ArithOp::Mul),
        ("/", ArithOp::Div),
        ("%", ArithOp::Rem),
        ("&", ArithOp::And),
    ];
    for (tok, op) in OPS {
        if let Some(rest) = rest.strip_prefix(tok) {
            let lit = parse_uint(rest.trim())?;
            return Ok(MapExpr { op, lit });
        }
    }
    Err(format!("bad map operator in {s:?}"))
}

fn parse_expr(text: &str, bindings: &[Binding]) -> Result<Expr, String> {
    let (func, args) = split_call(text)?;
    let args = args.map(split_args);
    match func {
        "labels" => {
            if args.is_some_and(|a| !a.is_empty()) {
                return Err("labels takes no arguments".into());
            }
            Ok(Expr::Source(Source::Labels))
        }
        "filter" | "threshold" => {
            let args = args.ok_or_else(|| format!("{func} needs (input, predicate)"))?;
            let [input, pred] = args[..] else {
                return Err(format!("{func} needs exactly (input, predicate)"));
            };
            let input = resolve(input, bindings)?;
            let pred = parse_pred(pred)?;
            Ok(if func == "filter" {
                Expr::Filter { input, pred }
            } else {
                Expr::Threshold { input, pred }
            })
        }
        "map" => {
            let args = args.ok_or("map needs (input, val OP N)")?;
            let [input, expr] = args[..] else {
                return Err("map needs exactly (input, val OP N)".into());
            };
            Ok(Expr::Map {
                input: resolve(input, bindings)?,
                expr: parse_map_expr(expr)?,
            })
        }
        "join" => {
            let args = args.ok_or("join needs (left, right[, val=MODE])")?;
            let (l, r, val) = match args[..] {
                [l, r] => (l, r, JoinVal::Sum),
                [l, r, v] => {
                    let mode = v
                        .strip_prefix("val")
                        .map(str::trim_start)
                        .and_then(|v| v.strip_prefix('='))
                        .map(str::trim)
                        .ok_or_else(|| format!("bad join option {v:?}"))?;
                    let val = match mode {
                        "left" => JoinVal::Left,
                        "right" => JoinVal::Right,
                        "sum" => JoinVal::Sum,
                        "min" => JoinVal::Min,
                        "max" => JoinVal::Max,
                        other => return Err(format!("bad join val mode {other:?}")),
                    };
                    (l, r, val)
                }
                _ => return Err("join needs (left, right[, val=MODE])".into()),
            };
            Ok(Expr::Join {
                left: resolve(l, bindings)?,
                right: resolve(r, bindings)?,
                val,
            })
        }
        "count" | "sum" | "min" | "max" => {
            let args = args.ok_or_else(|| format!("{func} needs (input)"))?;
            let [input] = args[..] else {
                return Err(format!("{func} needs exactly (input)"));
            };
            let kind = match func {
                "count" => AggKind::Count,
                "sum" => AggKind::Sum,
                "min" => AggKind::Min,
                _ => AggKind::Max,
            };
            Ok(Expr::Agg {
                input: resolve(input, bindings)?,
                kind,
            })
        }
        name => {
            let class = QueryClass::from_name(name)
                .ok_or_else(|| format!("unknown operator or class {name:?}"))?;
            let source = match args {
                None => None,
                Some(a) if a.is_empty() => None,
                Some(a) => {
                    let [arg] = a[..] else {
                        return Err(format!("{name} takes at most source=K"));
                    };
                    let k = arg
                        .strip_prefix("source")
                        .map(str::trim_start)
                        .and_then(|v| v.strip_prefix('='))
                        .map(str::trim)
                        .ok_or_else(|| format!("bad source option {arg:?}"))?;
                    Some(parse_uint(k)? as NodeId)
                }
            };
            if !class.source_rooted() {
                if source.is_some() {
                    return Err(format!("{name} does not take a source"));
                }
                Ok(Expr::Source(Source::Class {
                    class,
                    source: None,
                }))
            } else {
                Ok(Expr::Source(Source::Class {
                    class,
                    source: Some(source.unwrap_or(0)),
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_display_is_pinned() {
        let p = Plan::parse("d=sssp;near=filter(d,val<6);n=count(near)").unwrap();
        assert_eq!(
            p.display(),
            "d = sssp(source=0); near = filter(d, val < 6); n = count(near)"
        );
        let p = Plan::parse(
            "a = cc; l = labels; j = join(a, l); m = map(j, val >> 1); t = threshold(m, val >= 3)",
        )
        .unwrap();
        assert_eq!(
            p.display(),
            "a = cc; l = labels; j = join(a, l, val=sum); m = map(j, val >> 1); \
             t = threshold(m, val >= 3)"
        );
    }

    #[test]
    fn parse_display_round_trips() {
        for text in [
            "d = sssp(source=3); x = filter(d, key != 3); s = sum(x)",
            "r = reach(source=1); n = count(r)",
            "a = lcc; b = map(a, val & 4294967295); m = max(b)",
            "a = sim; l = labels; j = join(a, l, val=left); m = min(j)",
            "a = dfs; b = bc; j = join(a, b, val=max); t = threshold(j, val > 10)",
        ] {
            let p = Plan::parse(text).unwrap();
            let shown = p.display();
            let again = Plan::parse(&shown).unwrap();
            assert_eq!(p, again, "{text}");
            assert_eq!(shown, again.display(), "{text}");
        }
    }

    #[test]
    fn references_must_be_earlier_bindings() {
        assert!(Plan::parse("n = count(d); d = cc").is_err());
        assert!(Plan::parse("d = cc; d = lcc").is_err());
        assert!(Plan::parse("d = filter(d, val < 1)").is_err());
        assert!(Plan::parse("").is_err());
    }

    #[test]
    fn class_argument_rules() {
        // Source-rooted classes default to source 0.
        let p = Plan::parse("d = sssp").unwrap();
        assert_eq!(
            p.bindings()[0].expr,
            Expr::Source(Source::Class {
                class: QueryClass::Sssp,
                source: Some(0)
            })
        );
        // Non-rooted classes refuse one.
        assert!(Plan::parse("d = cc(source=0)").is_err());
        assert!(Plan::parse("d = pagerank").is_err());
        assert!(Plan::parse("l = labels(3)").is_err());
    }

    #[test]
    fn predicate_and_map_eval() {
        let p = parse_pred("val <= 5").unwrap();
        assert!(p.eval(0, 5) && !p.eval(0, 6));
        let p = parse_pred("key != 2").unwrap();
        assert!(p.eval(3, 0) && !p.eval(2, 0));
        let m = parse_map_expr("val - 3").unwrap();
        assert_eq!(m.eval(2), 2u64.wrapping_sub(3));
        let m = parse_map_expr("val / 0").unwrap();
        assert_eq!(m.eval(9), 0);
        let m = parse_map_expr("val << 2").unwrap();
        assert_eq!(m.eval(3), 12);
    }

    #[test]
    fn sources_are_deduped() {
        let p = Plan::parse("a = cc; b = cc; j = join(a, b); n = count(j)").unwrap();
        assert_eq!(p.sources().len(), 1);
    }
}
