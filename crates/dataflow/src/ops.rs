//! Operator states and their per-tick delta evaluation.
//!
//! Every operator consumes its input deltas and produces an output delta
//! touching `O(|Δinput|)` rows. The stateful operators (join, the
//! aggregates) carry exactly the auxiliary structures that bound makes
//! necessary: a join indexes both input collections by key; `count`/
//! `sum` keep one running total; `min`/`max` keep their full input
//! collection plus a cached extremum, falling back to an `O(n)` rescan
//! only when a retraction hits the cached extremum itself
//! (`dataflow.minmax.rescan` counts those).

use crate::delta::{Delta, DiffCollection};
use crate::plan::{AggKind, Expr, JoinVal, MapExpr, Plan, Pred};

/// The concrete row delta the plan interpreter flows: node-keyed `u64`
/// values.
pub type Rows = Delta<u64, u64>;
/// The concrete consolidated collection.
pub type Coll = DiffCollection<u64, u64>;

/// Mutable evaluation state of one plan binding.
#[derive(Clone, Debug)]
pub(crate) enum OpState {
    /// Sources hold no state; their deltas come from the session.
    Source,
    Filter(Pred),
    Map(MapExpr),
    Join {
        val: JoinVal,
        left: Coll,
        right: Coll,
    },
    /// `count` / `sum`: one running total (wrapping), plus whether the
    /// initial row has been emitted yet.
    Total {
        kind: AggKind,
        total: u64,
        primed: bool,
    },
    /// `min` / `max`: the maintained input collection and the cached
    /// extremum.
    Extremum {
        max: bool,
        coll: Coll,
        cur: Option<u64>,
    },
    Threshold(Pred),
}

impl OpState {
    pub(crate) fn for_expr(expr: &Expr) -> OpState {
        match *expr {
            Expr::Source(_) => OpState::Source,
            Expr::Filter { pred, .. } => OpState::Filter(pred),
            Expr::Map { expr, .. } => OpState::Map(expr),
            Expr::Join { val, .. } => OpState::Join {
                val,
                left: Coll::new(),
                right: Coll::new(),
            },
            Expr::Agg { kind, .. } => match kind {
                AggKind::Count | AggKind::Sum => OpState::Total {
                    kind,
                    total: 0,
                    primed: false,
                },
                AggKind::Min => OpState::Extremum {
                    max: false,
                    coll: Coll::new(),
                    cur: None,
                },
                AggKind::Max => OpState::Extremum {
                    max: true,
                    coll: Coll::new(),
                    cur: None,
                },
            },
            Expr::Threshold { pred, .. } => OpState::Threshold(pred),
        }
    }

    /// Static operator name for the per-operator obs streams.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            OpState::Source => "source",
            OpState::Filter(_) => "filter",
            OpState::Map(_) => "map",
            OpState::Join { .. } => "join",
            OpState::Total { .. } => "agg",
            OpState::Extremum { .. } => "agg",
            OpState::Threshold(_) => "threshold",
        }
    }

    /// One tick: consume the input deltas (one for unary operators, two
    /// for a join; sources take none and echo nothing here) and return
    /// the output delta, consolidated.
    pub(crate) fn eval(&mut self, inputs: &[&Rows]) -> Rows {
        let mut out = match self {
            OpState::Source => Rows::new(),
            OpState::Filter(pred) => Rows::from_rows(
                inputs[0]
                    .rows()
                    .iter()
                    .copied()
                    .filter(|&(k, v, _)| pred.eval(k, v)),
            ),
            OpState::Map(expr) => Rows::from_rows(
                inputs[0]
                    .rows()
                    .iter()
                    .map(|&(k, v, w)| (k, expr.eval(v), w)),
            ),
            OpState::Join { val, left, right } => {
                // Bilinear update: δ(A ⋈ B) = δA ⋈ B_pre + A_post ⋈ δB.
                let (da, db) = (inputs[0], inputs[1]);
                let mut out = Rows::new();
                for &(k, va, wa) in da.rows() {
                    for (vb, mb) in right.values_of(k) {
                        out.push(k, val.eval(va, vb), wa * mb);
                    }
                }
                left.apply(da);
                for &(k, vb, wb) in db.rows() {
                    for (va, ma) in left.values_of(k) {
                        out.push(k, val.eval(va, vb), ma * wb);
                    }
                }
                right.apply(db);
                out
            }
            OpState::Total {
                kind,
                total,
                primed,
            } => {
                let delta = inputs[0];
                let dt: u64 = delta
                    .rows()
                    .iter()
                    .map(|&(_, v, w)| match kind {
                        AggKind::Count => w as u64,
                        _ => v.wrapping_mul(w as u64),
                    })
                    .fold(0u64, u64::wrapping_add);
                let mut out = Rows::new();
                if !*primed {
                    *total = (*total).wrapping_add(dt);
                    out.push(0, *total, 1);
                    *primed = true;
                } else if dt != 0 {
                    out.push(0, *total, -1);
                    *total = (*total).wrapping_add(dt);
                    out.push(0, *total, 1);
                }
                out
            }
            OpState::Extremum { max, coll, cur } => {
                let delta = inputs[0];
                coll.apply(delta);
                let better = |a: u64, b: u64| if *max { a.max(b) } else { a.min(b) };
                let mut next = *cur;
                for &(_, v, w) in delta.rows() {
                    if w > 0 {
                        next = Some(next.map_or(v, |c| better(c, v)));
                    }
                }
                // A retraction can only dethrone the extremum if it hits
                // it; anything strictly worse is irrelevant. Only then do
                // we pay the O(n) rescan — the documented fallback.
                let hit = next.is_some()
                    && delta
                        .rows()
                        .iter()
                        .any(|&(_, v, w)| w < 0 && Some(v) == next);
                if hit || (next.is_none() && !coll.is_empty()) {
                    incgraph_obs::counter("dataflow.minmax.rescan", 1);
                    next = coll.iter().map(|(_, v, _)| v).reduce(better);
                } else if coll.is_empty() {
                    next = None;
                }
                let mut out = Rows::new();
                if next != *cur {
                    if let Some(old) = *cur {
                        out.push(0, old, -1);
                    }
                    if let Some(new) = next {
                        out.push(0, new, 1);
                    }
                    *cur = next;
                }
                out
            }
            OpState::Threshold(pred) => {
                let mut out = Rows::new();
                let mut alerts = 0u64;
                for &(k, v, w) in inputs[0].rows() {
                    if pred.eval(k, v) {
                        out.push(k, v, w);
                        if w > 0 {
                            alerts += w as u64;
                        }
                    }
                }
                if alerts > 0 {
                    incgraph_obs::counter("dataflow.threshold.alerts", alerts);
                }
                out
            }
        };
        out.consolidate();
        out
    }
}

/// The input binding indexes of one expression.
pub(crate) fn expr_inputs(expr: &Expr) -> Vec<usize> {
    match *expr {
        Expr::Source(_) => vec![],
        Expr::Filter { input, .. }
        | Expr::Map { input, .. }
        | Expr::Agg { input, .. }
        | Expr::Threshold { input, .. } => vec![input],
        Expr::Join { left, right, .. } => vec![left, right],
    }
}

/// Builds the operator states for a plan, in binding order.
pub(crate) fn states_for(plan: &Plan) -> Vec<OpState> {
    plan.bindings()
        .iter()
        .map(|b| OpState::for_expr(&b.expr))
        .collect()
}
