//! [`DataflowSession`]: a standing plan wired to live query-class
//! sessions.
//!
//! Building one instantiates a member [`Session`] per distinct class
//! source in the plan and primes every operator with the classes'
//! initial outputs. Each [`apply`](DataflowSession::apply) then runs one
//! **tick**: the committed ΔG is pushed through every member session
//! (`update_guarded`), the resulting typed [`OutputDelta`]s are lowered
//! to z-set deltas, and those propagate through the DAG in binding
//! order — shared sub-plans evaluate exactly once per tick because every
//! binding's output delta is computed once and read by all its
//! consumers. The returned root delta is what the wire layer ships as a
//! view notification; [`view`](DataflowSession::view) is the
//! consolidated root collection.
//!
//! [`OutputDelta`]: incgraph_algos::OutputDelta

use crate::ops::{expr_inputs, states_for, Coll, OpState, Rows};
use crate::plan::{Expr, Plan, PlanParseError, Source};
use incgraph_algos::{QueryClass, Session, SessionError};
use incgraph_graph::{AppliedBatch, DynamicGraph, Pattern};
use std::fmt;

/// Ambient inputs a plan text cannot carry: the Sim pattern and the
/// engine thread count for member sessions.
#[derive(Clone, Debug, Default)]
pub struct PlanContext {
    /// Pattern for `sim` sources; building a plan that mentions `sim`
    /// without one fails with [`DataflowError::Session`]
    /// (`MissingPattern`).
    pub pattern: Option<Pattern>,
    /// Engine threads for member sessions (0/1 = sequential).
    pub threads: usize,
}

/// Why a dataflow session could not be built.
#[derive(Debug)]
pub enum DataflowError {
    /// The plan text was rejected.
    Parse(PlanParseError),
    /// A member class session refused to build.
    Session(SessionError),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Parse(e) => write!(f, "{e}"),
            DataflowError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<PlanParseError> for DataflowError {
    fn from(e: PlanParseError) -> Self {
        DataflowError::Parse(e)
    }
}

impl From<SessionError> for DataflowError {
    fn from(e: SessionError) -> Self {
        DataflowError::Session(e)
    }
}

/// A standing dataflow query: the plan, its member class sessions, the
/// per-binding operator states, and the materialized root view.
pub struct DataflowSession {
    plan: Plan,
    /// One live session per distinct `Source::Class` in the plan.
    members: Vec<(Source, Session)>,
    /// Nodes already emitted by the `labels` source.
    label_nodes: usize,
    uses_labels: bool,
    states: Vec<OpState>,
    view: Coll,
    ticks: u64,
}

impl DataflowSession {
    /// Builds the member sessions and primes the DAG with the classes'
    /// initial outputs, so [`view`](Self::view) is correct before any
    /// update.
    pub fn build(
        plan: Plan,
        g: &DynamicGraph,
        ctx: &PlanContext,
    ) -> Result<DataflowSession, DataflowError> {
        let mut members = Vec::new();
        let mut uses_labels = false;
        for src in plan.sources() {
            match src {
                Source::Labels => uses_labels = true,
                Source::Class { class, source } => {
                    let mut b = Session::builder(class).threads(ctx.threads);
                    if let Some(s) = source {
                        b = b.source(s);
                    }
                    if class == QueryClass::Sim {
                        if let Some(p) = &ctx.pattern {
                            b = b.pattern(p.clone());
                        }
                    }
                    members.push((src, b.build(g)?));
                }
            }
        }
        let states = states_for(&plan);
        let mut df = DataflowSession {
            plan,
            members,
            label_nodes: 0,
            uses_labels,
            states,
            view: Coll::new(),
            ticks: 0,
        };
        // Prime: every initial row enters as a +1 delta, flowing through
        // the same propagation path updates will use.
        let mut sources: Vec<(Source, Rows)> = Vec::new();
        for (src, session) in &df.members {
            let rows = Rows::from_rows(
                session
                    .output()
                    .node_rows()
                    .into_iter()
                    .map(|(n, v)| (n as u64, v, 1)),
            );
            sources.push((*src, rows));
        }
        if df.uses_labels {
            sources.push((Source::Labels, df.label_rows(g)));
        }
        let root = df.propagate(&sources);
        df.view.apply(&root);
        Ok(df)
    }

    /// Parses and builds in one step (the wire `PLAN` / CLI path).
    pub fn from_text(
        text: &str,
        g: &DynamicGraph,
        ctx: &PlanContext,
    ) -> Result<DataflowSession, DataflowError> {
        DataflowSession::build(Plan::parse(text)?, g, ctx)
    }

    /// The plan this session stands for.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Ticks applied so far (excluding the priming pass).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// One tick: push a committed ΔG through every member session and
    /// the DAG; returns the root view's delta (empty when the update did
    /// not move the view).
    pub fn apply(&mut self, g: &DynamicGraph, applied: &AppliedBatch) -> Rows {
        let _span = incgraph_obs::span("dataflow.tick");
        incgraph_obs::counter("dataflow.ticks", 1);
        self.ticks += 1;
        let mut sources: Vec<(Source, Rows)> = Vec::new();
        for (src, session) in &mut self.members {
            let delta = session.update_guarded(g, applied).delta;
            let mut rows = Rows::new();
            for nc in &delta.nodes {
                if let Some(old) = nc.old {
                    rows.push(nc.node as u64, old, -1);
                }
                rows.push(nc.node as u64, nc.new, 1);
            }
            rows.consolidate();
            sources.push((*src, rows));
        }
        if self.uses_labels {
            let rows = self.label_rows(g);
            sources.push((Source::Labels, rows));
        }
        let root = self.propagate(&sources);
        self.view.apply(&root);
        root
    }

    /// The materialized root view: sorted `(key, value, multiplicity)`
    /// rows.
    pub fn view(&self) -> Vec<(u64, u64, i64)> {
        self.view.to_rows()
    }

    /// `labels` source delta: rows for nodes that appeared since the
    /// last tick (labels are fixed at node creation; ΔG is edge-only).
    fn label_rows(&mut self, g: &DynamicGraph) -> Rows {
        let rows = Rows::from_rows(
            (self.label_nodes..g.node_count()).map(|v| (v as u64, g.label(v as u32) as u64, 1)),
        );
        self.label_nodes = g.node_count();
        rows
    }

    /// Evaluates every binding once, in definition (= topological)
    /// order, and returns the root's output delta.
    fn propagate(&mut self, sources: &[(Source, Rows)]) -> Rows {
        let bindings = self.plan.bindings();
        let mut out: Vec<Rows> = Vec::with_capacity(bindings.len());
        for (i, b) in bindings.iter().enumerate() {
            let rows = match b.expr {
                Expr::Source(src) => sources
                    .iter()
                    .find(|(s, _)| *s == src)
                    .map(|(_, r)| r.clone())
                    .unwrap_or_default(),
                _ => {
                    let inputs = expr_inputs(&b.expr);
                    let in_rows: usize = inputs.iter().map(|&j| out[j].len()).sum();
                    let refs: Vec<&Rows> = inputs.iter().map(|&j| &out[j]).collect();
                    let produced = self.states[i].eval(&refs);
                    let name = self.states[i].name();
                    observe_op(name, in_rows, produced.len());
                    produced
                }
            };
            out.push(rows);
        }
        out.pop().expect("plans are non-empty")
    }
}

/// Per-operator in/out delta-row streams, keyed by operator kind (obs
/// names must be static).
fn observe_op(name: &'static str, rows_in: usize, rows_out: usize) {
    match name {
        "filter" => {
            incgraph_obs::observe("dataflow.filter.in", rows_in as u64);
            incgraph_obs::observe("dataflow.filter.out", rows_out as u64);
        }
        "map" => {
            incgraph_obs::observe("dataflow.map.in", rows_in as u64);
            incgraph_obs::observe("dataflow.map.out", rows_out as u64);
        }
        "join" => {
            incgraph_obs::observe("dataflow.join.in", rows_in as u64);
            incgraph_obs::observe("dataflow.join.out", rows_out as u64);
        }
        "agg" => {
            incgraph_obs::observe("dataflow.agg.in", rows_in as u64);
            incgraph_obs::observe("dataflow.agg.out", rows_out as u64);
        }
        "threshold" => {
            incgraph_obs::observe("dataflow.threshold.in", rows_in as u64);
            incgraph_obs::observe("dataflow.threshold.out", rows_out as u64);
        }
        _ => {}
    }
}

/// One-shot evaluation: build the plan over `g` and return the root
/// view (the CLI `incgraph query --plan` path).
pub fn eval_once(
    text: &str,
    g: &DynamicGraph,
    ctx: &PlanContext,
) -> Result<Vec<(u64, u64, i64)>, DataflowError> {
    Ok(DataflowSession::from_text(text, g, ctx)?.view())
}
