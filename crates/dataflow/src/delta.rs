//! Z-set deltas and consolidated collections — the algebra every
//! operator in this crate is linear (or bilinear) over.
//!
//! A [`Delta`] is a weighted batch of rows: weight `+1` inserts a row,
//! `-1` retracts one, and arbitrary integer weights arise transiently
//! inside operators (a join multiplies weights). A [`DiffCollection`] is
//! the consolidated integral of all deltas applied so far: a multiset
//! mapping each `(key, value)` row to its multiplicity. Together they
//! give the standard incremental-view-maintenance contract:
//!
//! ```text
//! collection_after = collection_before + delta
//! op(collection + delta) = op(collection) + δop(delta, state)
//! ```
//!
//! where `δop` touches only `O(|delta|)` rows (plus the documented
//! rescan fallback of the extremum aggregates).

use std::collections::BTreeMap;

/// One weighted row change: `(key, value, weight)`.
pub type Row<K, V> = (K, V, i64);

/// A weighted batch of row changes. Rows are kept in insertion order and
/// may mention the same `(key, value)` more than once;
/// [`consolidate`](Delta::consolidate) merges them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta<K, V> {
    rows: Vec<Row<K, V>>,
}

impl<K: Ord + Copy, V: Ord + Copy> Delta<K, V> {
    /// Empty delta.
    pub fn new() -> Self {
        Delta { rows: Vec::new() }
    }

    /// Builds a delta from raw rows (zero weights are dropped).
    pub fn from_rows(rows: impl IntoIterator<Item = Row<K, V>>) -> Self {
        Delta {
            rows: rows.into_iter().filter(|&(_, _, w)| w != 0).collect(),
        }
    }

    /// Appends one weighted row.
    pub fn push(&mut self, key: K, val: V, weight: i64) {
        if weight != 0 {
            self.rows.push((key, val, weight));
        }
    }

    /// The raw weighted rows.
    pub fn rows(&self) -> &[Row<K, V>] {
        &self.rows
    }

    /// Number of raw rows (the operator cost unit).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the delta carries no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Merges duplicate `(key, value)` rows and drops zero-weight
    /// residue, producing the canonical sorted form.
    pub fn consolidate(&mut self) {
        if self.rows.len() < 2 {
            return;
        }
        let mut acc: BTreeMap<(K, V), i64> = BTreeMap::new();
        for &(k, v, w) in &self.rows {
            *acc.entry((k, v)).or_insert(0) += w;
        }
        self.rows = acc
            .into_iter()
            .filter(|&(_, w)| w != 0)
            .map(|((k, v), w)| (k, v, w))
            .collect();
    }
}

/// A consolidated multiset of `(key, value)` rows: the integral of every
/// delta applied so far. Multiplicities are kept per key so joins can
/// index one side in `O(log n)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiffCollection<K, V> {
    by_key: BTreeMap<K, BTreeMap<V, i64>>,
    rows: usize,
}

impl<K: Ord + Copy, V: Ord + Copy> DiffCollection<K, V> {
    /// Empty collection.
    pub fn new() -> Self {
        DiffCollection {
            by_key: BTreeMap::new(),
            rows: 0,
        }
    }

    /// Applies one weighted row; rows whose multiplicity reaches zero
    /// vanish.
    pub fn apply_row(&mut self, key: K, val: V, weight: i64) {
        if weight == 0 {
            return;
        }
        let vals = self.by_key.entry(key).or_default();
        let m = vals.entry(val).or_insert(0);
        let was = *m != 0;
        *m += weight;
        let is = *m != 0;
        if *m == 0 {
            vals.remove(&val);
            if vals.is_empty() {
                self.by_key.remove(&key);
            }
        }
        match (was, is) {
            (false, true) => self.rows += 1,
            (true, false) => self.rows -= 1,
            _ => {}
        }
    }

    /// Applies a whole delta.
    pub fn apply(&mut self, delta: &Delta<K, V>) {
        for &(k, v, w) in delta.rows() {
            self.apply_row(k, v, w);
        }
    }

    /// Multiplicity of one row (0 when absent).
    pub fn multiplicity(&self, key: K, val: V) -> i64 {
        self.by_key
            .get(&key)
            .and_then(|vals| vals.get(&val))
            .copied()
            .unwrap_or(0)
    }

    /// Distinct rows present (multiplicity ≠ 0).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The `(value, multiplicity)` entries under one key.
    pub fn values_of(&self, key: K) -> impl Iterator<Item = (V, i64)> + '_ {
        self.by_key
            .get(&key)
            .into_iter()
            .flat_map(|vals| vals.iter().map(|(&v, &m)| (v, m)))
    }

    /// All rows in `(key, value)` order.
    pub fn iter(&self) -> impl Iterator<Item = (K, V, i64)> + '_ {
        self.by_key
            .iter()
            .flat_map(|(&k, vals)| vals.iter().map(move |(&v, &m)| (k, v, m)))
    }

    /// All rows as a sorted vector — the materialized view shape the
    /// wire `VIEW` reply and the CLI print.
    pub fn to_rows(&self) -> Vec<(K, V, i64)> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidate_merges_and_drops_zeroes() {
        let mut d: Delta<u64, u64> =
            Delta::from_rows([(1, 5, 1), (1, 5, 1), (2, 7, 1), (2, 7, -1)]);
        d.consolidate();
        assert_eq!(d.rows(), &[(1, 5, 2)]);
    }

    #[test]
    fn collection_tracks_multiplicities_and_row_count() {
        let mut c: DiffCollection<u64, u64> = DiffCollection::new();
        c.apply_row(3, 9, 1);
        c.apply_row(3, 9, 1);
        c.apply_row(3, 4, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.multiplicity(3, 9), 2);
        c.apply_row(3, 9, -2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.to_rows(), vec![(3, 4, 1)]);
        c.apply_row(3, 4, -1);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut c: DiffCollection<u64, u64> = DiffCollection::new();
        let mut d = Delta::new();
        d.push(1, 2, 1);
        d.push(1, 2, -1);
        c.apply(&d);
        assert!(c.is_empty());
    }
}
