//! Operator-algebra laws of the dataflow layer, checked as properties
//! over randomized graphs and update schedules (the same discipline as
//! the algos crate's `coalesce_equiv` suite):
//!
//! 1. **Incremental = batch.** For every operator shape, a standing
//!    [`DataflowSession`] driven through a churn schedule must land on
//!    exactly the view a fresh plan evaluation computes on the final
//!    graph. This subsumes "aggregates match batch recompute".
//! 2. **Insert-then-delete cancellation.** A batch applied and then
//!    exactly undone leaves every view — through filters, maps, joins,
//!    and aggregates — where it started.
//! 3. **Join delta-order symmetry.** A symmetric join combine
//!    (`val=sum`) makes `join(a, b)` and `join(b, a)` indistinguishable,
//!    whichever side's delta the bilinear update feeds first.

use incgraph_dataflow::{eval_once, DataflowSession, Plan, PlanContext};
use incgraph_graph::rng::SplitMix64;
use incgraph_graph::{DynamicGraph, NodeId, Pattern, UpdateBatch};

const N: usize = 24;
const ROUNDS: usize = 8;
const OPS_PER_BATCH: usize = 4;

/// Undirected random graph with alternating labels (so `sim` and
/// `labels` sources are non-trivial).
fn base_graph(rng: &mut SplitMix64) -> DynamicGraph {
    let labels = (0..N).map(|v| (v % 3) as u32).collect();
    let mut g = DynamicGraph::with_labels(false, labels);
    for _ in 0..2 * N {
        let u = rng.gen_range(0..N) as NodeId;
        let v = rng.gen_range(0..N) as NodeId;
        if u != v {
            g.insert_edge(u, v, rng.gen_range(1u32..=6));
        }
    }
    g
}

fn random_batch(rng: &mut SplitMix64) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..OPS_PER_BATCH {
        let u = rng.gen_range(0..N) as NodeId;
        let v = rng.gen_range(0..N) as NodeId;
        if u == v {
            continue;
        }
        if rng.gen_bool(0.5) {
            batch.insert(u, v, rng.gen_range(1u32..=6));
        } else {
            batch.delete(u, v);
        }
    }
    batch
}

fn ctx() -> PlanContext {
    PlanContext {
        pattern: Some(Pattern::new(vec![0, 1], &[(0, 1)])),
        threads: 0,
    }
}

/// Plans covering every operator and every class source.
const PLANS: &[&str] = &[
    "d = sssp(source=0); near = filter(d, val < 6); n = count(near)",
    "d = sssp(source=2); m = map(d, val + 1); s = sum(m)",
    "c = cc; l = labels; j = join(c, l, val=left); n = count(j)",
    "r = reach(source=1); t = threshold(r, val == 1); n = count(t)",
    "a = lcc; m = map(a, val & 4294967295); mx = max(m)",
    "d = dfs; mn = min(d)",
    "b = bc; f = filter(b, val != 0); n = count(f)",
    "s = sim; n = count(s)",
    // A shared sub-plan read by two consumers, then re-joined.
    "d = sssp(source=0); a = filter(d, val < 4); b = map(d, val * 2); \
     j = join(a, b, val=right); n = sum(j)",
    "d = sssp(source=0); near = filter(d, val < 5); t = threshold(near, key > 10); n = count(t)",
];

#[test]
fn incremental_view_equals_batch_recompute() {
    for (pi, text) in PLANS.iter().enumerate() {
        let mut rng = SplitMix64::seed_from_u64(0xA15E ^ pi as u64);
        let mut g = base_graph(&mut rng);
        let plan = Plan::parse(text).unwrap();
        let mut df = DataflowSession::build(plan, &g, &ctx()).unwrap();
        for round in 0..ROUNDS {
            let applied = random_batch(&mut rng).apply(&mut g);
            df.apply(&g, &applied);
            let fresh = eval_once(text, &g, &ctx()).unwrap();
            assert_eq!(
                df.view(),
                fresh,
                "plan {pi} diverged from batch recompute at round {round}: {text}"
            );
        }
    }
}

#[test]
fn insert_then_delete_cancels_through_every_operator() {
    for (pi, text) in PLANS.iter().enumerate() {
        let mut rng = SplitMix64::seed_from_u64(0xCA9C ^ pi as u64);
        let g0 = base_graph(&mut rng);
        let plan = Plan::parse(text).unwrap();
        let mut df = DataflowSession::build(plan, &g0, &ctx()).unwrap();
        let before = df.view();
        // Insert a handful of fresh edges…
        let mut g = g0.clone();
        let mut fwd = UpdateBatch::new();
        let mut undo = UpdateBatch::new();
        let mut added = 0;
        for _ in 0..64 {
            if added == 3 {
                break;
            }
            let u = rng.gen_range(0..N) as NodeId;
            let v = rng.gen_range(0..N) as NodeId;
            if u != v && !g0.has_edge(u, v) && !g0.has_edge(v, u) {
                fwd.insert(u, v, 3);
                undo.delete(u, v);
                added += 1;
            }
        }
        let applied = fwd.apply(&mut g);
        df.apply(&g, &applied);
        // …then take them out again: the view must return exactly.
        let applied = undo.apply(&mut g);
        df.apply(&g, &applied);
        assert_eq!(df.view(), before, "plan {pi} did not cancel: {text}");
    }
}

#[test]
fn symmetric_join_commutes_with_operand_order() {
    let left_first = "d = sssp(source=0); c = cc; j = join(d, c, val=sum); s = sum(j)";
    let right_first = "c = cc; d = sssp(source=0); j = join(c, d, val=sum); s = sum(j)";
    let mut rng = SplitMix64::seed_from_u64(0x10E7);
    let mut g = base_graph(&mut rng);
    let mut a = DataflowSession::from_text(left_first, &g, &ctx()).unwrap();
    let mut b = DataflowSession::from_text(right_first, &g, &ctx()).unwrap();
    assert_eq!(a.view(), b.view());
    for _ in 0..ROUNDS {
        let applied = random_batch(&mut rng).apply(&mut g);
        a.apply(&g, &applied);
        b.apply(&g, &applied);
        assert_eq!(a.view(), b.view(), "join order became observable");
    }
}

#[test]
fn minmax_rescan_fallback_stays_correct_under_retractions() {
    // Drive max(sssp) through churn that repeatedly deletes edges on the
    // current shortest-path frontier, forcing extremum retractions (the
    // rescan path), and pin the result to batch recompute.
    let text = "d = sssp(source=0); f = filter(d, val != 18446744073709551615); m = max(f)";
    let mut rng = SplitMix64::seed_from_u64(0x3E5C);
    let mut g = base_graph(&mut rng);
    let mut df = DataflowSession::from_text(text, &g, &ctx()).unwrap();
    for round in 0..2 * ROUNDS {
        let applied = random_batch(&mut rng).apply(&mut g);
        df.apply(&g, &applied);
        assert_eq!(
            df.view(),
            eval_once(text, &g, &ctx()).unwrap(),
            "extremum maintenance diverged at round {round}"
        );
    }
}
