//! The `incgraph-wire/1` protocol: line-oriented, UTF-8, space-separated.
//!
//! Every message is one `\n`-terminated line, except `UPDATE`, whose
//! header line is followed by exactly `k` unit-update lines in the
//! `+ u v w` / `- u v` syntax of `incgraph_graph::io::read_updates`.
//! The full grammar, semantics tables, and the exactly-once retry
//! cookbook live in `docs/SERVICE.md`; this module is the single
//! parse/format authority both the server and the client use, so the two
//! sides cannot drift.
//!
//! Client → server:
//!
//! ```text
//! HELLO incgraph-wire/1 <token>
//! GRAPH <name> <nodes> directed|undirected
//! REGISTER <qid> <graph> <class> [source=<n>] [pattern=<seed>]
//! UNREGISTER <qid>
//! UPDATE <graph> <seq> <k>      (then k update lines)
//! QUERY <qid>
//! STATUS
//! PING
//! BYE
//! SHUTDOWN
//! ```
//!
//! Server → client:
//!
//! ```text
//! WELCOME incgraph-wire/1 <session-id>
//! BUSY <retry-after-ms>
//! OK <cmd> <args...>
//! ACK <seq> <wal-seq> <units> [dup]
//! DELTA <qid> <wal-seq> <m> <i>:<v>...      (m changed digest entries)
//! DELTA <qid> <wal-seq> resync <len>        (too many changes: re-QUERY)
//! RESULT <qid> <wal-seq> <n> <v>...
//! PONG
//! ERR <code> <detail...>
//! GOODBYE <reason>
//! ```

use incgraph_graph::{NodeId, UpdateBatch, Weight};
use std::collections::BTreeMap;
use std::fmt;

/// Protocol identifier exchanged in `HELLO`/`WELCOME`.
pub const WIRE_VERSION: &str = "incgraph-wire/1";

/// Hard cap on one wire line, defending the reader against an unbounded
/// allocation from a hostile or broken peer.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Typed error codes carried on `ERR` lines. Stable wire names — scripts
/// and the chaos harness match on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// `HELLO` version or shape mismatch.
    BadProto,
    /// Unparsable or unknown command line.
    BadCommand,
    /// Any command other than `HELLO` before the handshake.
    NeedHello,
    /// A second `HELLO` on an established session.
    AlreadyHello,
    /// `UPDATE`/`REGISTER` named a graph this store does not hold.
    UnknownGraph,
    /// `GRAPH` re-opened an existing graph with a different shape.
    GraphMismatch,
    /// `REGISTER` named an unknown query class.
    UnknownClass,
    /// The class is undefined on a directed graph (LCC, BC).
    UndirectedRequired,
    /// `REGISTER` reused a live query id on this session.
    DupQuery,
    /// `QUERY`/`UNREGISTER` named an unregistered query id.
    UnknownQuery,
    /// Client sequence is neither `last` (retry) nor `last + 1` (next).
    SeqGap,
    /// The ΔG failed batch validation; the store is unchanged.
    InvalidBatch,
    /// The graph is in degraded read-only mode after a WAL write failure.
    ReadOnly,
    /// Batch or line exceeds the configured size limits.
    TooLarge,
    /// The session's outbound queue overflowed its hard cap; the server
    /// disconnects right after delivering this.
    SlowConsumer,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The durable store is locked by another process (or still being
    /// released); retry.
    StoreBusy,
    /// Internal store failure (I/O, corruption).
    Store,
}

impl ErrCode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::BadProto => "bad-proto",
            ErrCode::BadCommand => "bad-command",
            ErrCode::NeedHello => "need-hello",
            ErrCode::AlreadyHello => "already-hello",
            ErrCode::UnknownGraph => "unknown-graph",
            ErrCode::GraphMismatch => "graph-mismatch",
            ErrCode::UnknownClass => "unknown-class",
            ErrCode::UndirectedRequired => "undirected-required",
            ErrCode::DupQuery => "dup-query",
            ErrCode::UnknownQuery => "unknown-query",
            ErrCode::SeqGap => "seq-gap",
            ErrCode::InvalidBatch => "invalid-batch",
            ErrCode::ReadOnly => "readonly",
            ErrCode::TooLarge => "too-large",
            ErrCode::SlowConsumer => "slow-consumer",
            ErrCode::ShuttingDown => "shutting-down",
            ErrCode::StoreBusy => "store-busy",
            ErrCode::Store => "store",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<ErrCode> {
        const ALL: [ErrCode; 18] = [
            ErrCode::BadProto,
            ErrCode::BadCommand,
            ErrCode::NeedHello,
            ErrCode::AlreadyHello,
            ErrCode::UnknownGraph,
            ErrCode::GraphMismatch,
            ErrCode::UnknownClass,
            ErrCode::UndirectedRequired,
            ErrCode::DupQuery,
            ErrCode::UnknownQuery,
            ErrCode::SeqGap,
            ErrCode::InvalidBatch,
            ErrCode::ReadOnly,
            ErrCode::TooLarge,
            ErrCode::SlowConsumer,
            ErrCode::ShuttingDown,
            ErrCode::StoreBusy,
            ErrCode::Store,
        ];
        ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed client command (the `UPDATE` header only names the batch;
/// its unit lines are read separately by the session loop).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    Hello {
        version: String,
        token: String,
    },
    Graph {
        name: String,
        nodes: usize,
        directed: bool,
    },
    Register {
        qid: String,
        graph: String,
        class: String,
        source: NodeId,
        pattern_seed: u64,
    },
    Unregister {
        qid: String,
    },
    UpdateHeader {
        graph: String,
        seq: u64,
        k: usize,
    },
    Query {
        qid: String,
    },
    Status,
    Ping,
    Bye,
    Shutdown,
}

/// Why a command line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommandError(pub String);

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 128
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Parses one client command line. `UPDATE` yields only the header; the
/// caller reads the following `k` unit lines via [`parse_update_line`].
pub fn parse_command(line: &str) -> Result<Command, CommandError> {
    let bad = |msg: &str| CommandError(msg.to_string());
    let mut it = line.split_whitespace();
    let cmd = it.next().ok_or_else(|| bad("empty line"))?;
    let parsed = match cmd {
        "HELLO" => {
            let version = it.next().ok_or_else(|| bad("HELLO needs a version"))?;
            let token = it.next().ok_or_else(|| bad("HELLO needs a token"))?;
            if !ident_ok(token) {
                return Err(bad("HELLO token must be a short identifier"));
            }
            Command::Hello {
                version: version.to_string(),
                token: token.to_string(),
            }
        }
        "GRAPH" => {
            let name = it.next().ok_or_else(|| bad("GRAPH needs a name"))?;
            if !ident_ok(name) {
                return Err(bad("GRAPH name must be a short identifier"));
            }
            let nodes: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("GRAPH needs a node count"))?;
            let directed = match it.next() {
                Some("directed") => true,
                Some("undirected") => false,
                _ => return Err(bad("GRAPH needs directed|undirected")),
            };
            Command::Graph {
                name: name.to_string(),
                nodes,
                directed,
            }
        }
        "REGISTER" => {
            let qid = it.next().ok_or_else(|| bad("REGISTER needs a query id"))?;
            let graph = it.next().ok_or_else(|| bad("REGISTER needs a graph"))?;
            let class = it.next().ok_or_else(|| bad("REGISTER needs a class"))?;
            if !ident_ok(qid) || !ident_ok(graph) || !ident_ok(class) {
                return Err(bad("REGISTER ids must be short identifiers"));
            }
            let mut source: NodeId = 0;
            let mut pattern_seed: u64 = 42;
            for opt in it.by_ref() {
                if let Some(v) = opt.strip_prefix("source=") {
                    source = v.parse().map_err(|_| bad("bad source="))?;
                } else if let Some(v) = opt.strip_prefix("pattern=") {
                    pattern_seed = v.parse().map_err(|_| bad("bad pattern="))?;
                } else {
                    return Err(bad("unknown REGISTER option"));
                }
            }
            Command::Register {
                qid: qid.to_string(),
                graph: graph.to_string(),
                class: class.to_string(),
                source,
                pattern_seed,
            }
        }
        "UNREGISTER" => Command::Unregister {
            qid: it
                .next()
                .filter(|q| ident_ok(q))
                .ok_or_else(|| bad("UNREGISTER needs a query id"))?
                .to_string(),
        },
        "UPDATE" => {
            let graph = it.next().ok_or_else(|| bad("UPDATE needs a graph"))?;
            if !ident_ok(graph) {
                return Err(bad("UPDATE graph must be a short identifier"));
            }
            let seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("UPDATE needs a client sequence"))?;
            let k: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("UPDATE needs an update count"))?;
            if seq == 0 {
                return Err(bad("UPDATE sequence starts at 1"));
            }
            Command::UpdateHeader {
                graph: graph.to_string(),
                seq,
                k,
            }
        }
        "QUERY" => Command::Query {
            qid: it
                .next()
                .filter(|q| ident_ok(q))
                .ok_or_else(|| bad("QUERY needs a query id"))?
                .to_string(),
        },
        "STATUS" => Command::Status,
        "PING" => Command::Ping,
        "BYE" => Command::Bye,
        "SHUTDOWN" => Command::Shutdown,
        other => return Err(bad(&format!("unknown command {other}"))),
    };
    if it.next().is_some() && !matches!(parsed, Command::Hello { .. }) {
        return Err(bad("trailing arguments"));
    }
    Ok(parsed)
}

/// Parses one `+ u v [w]` / `- u v` unit line into `batch`.
pub fn parse_update_line(line: &str, batch: &mut UpdateBatch) -> Result<(), CommandError> {
    let bad = || CommandError(format!("bad update line `{line}`"));
    let mut it = line.split_whitespace();
    let op = it.next().ok_or_else(bad)?;
    let u: NodeId = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let v: NodeId = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    match op {
        "+" => {
            let w: Weight = match it.next() {
                Some(t) => t.parse().map_err(|_| bad())?,
                None => 1,
            };
            batch.insert(u, v, w);
        }
        "-" => {
            batch.delete(u, v);
        }
        _ => return Err(bad()),
    }
    if it.next().is_some() {
        return Err(bad());
    }
    Ok(())
}

/// Formats a `DELTA` notification line. `changed` maps digest index →
/// new value; `resync_len` (the digest length past which the server
/// stops enumerating) switches to the `resync` form.
pub fn format_delta(
    qid: &str,
    wal_seq: u64,
    changed: &BTreeMap<u32, u64>,
    resync: Option<usize>,
) -> String {
    match resync {
        Some(len) => format!("DELTA {qid} {wal_seq} resync {len}"),
        None => {
            let mut s = format!("DELTA {qid} {wal_seq} {}", changed.len());
            for (i, v) in changed {
                s.push(' ');
                s.push_str(&format!("{i}:{v}"));
            }
            s
        }
    }
}

/// A parsed `DELTA` line, as seen by clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    pub qid: String,
    pub wal_seq: u64,
    /// `None` = resync requested (with the new digest length).
    pub changed: Option<BTreeMap<u32, u64>>,
    pub resync_len: usize,
}

/// Parses a server `DELTA` line (client side).
pub fn parse_delta(line: &str) -> Result<Delta, CommandError> {
    let bad = || CommandError(format!("bad DELTA line `{line}`"));
    let mut it = line.split_whitespace();
    if it.next() != Some("DELTA") {
        return Err(bad());
    }
    let qid = it.next().ok_or_else(bad)?.to_string();
    let wal_seq: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    match it.next().ok_or_else(bad)? {
        "resync" => {
            let len: usize = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            Ok(Delta {
                qid,
                wal_seq,
                changed: None,
                resync_len: len,
            })
        }
        m => {
            let m: usize = m.parse().map_err(|_| bad())?;
            let mut changed = BTreeMap::new();
            for _ in 0..m {
                let pair = it.next().ok_or_else(bad)?;
                let (i, v) = pair.split_once(':').ok_or_else(bad)?;
                changed.insert(i.parse().map_err(|_| bad())?, v.parse().map_err(|_| bad())?);
            }
            Ok(Delta {
                qid,
                wal_seq,
                changed: Some(changed),
                resync_len: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_lines_round_trip() {
        assert_eq!(
            parse_command("HELLO incgraph-wire/1 alice"),
            Ok(Command::Hello {
                version: WIRE_VERSION.into(),
                token: "alice".into()
            })
        );
        assert_eq!(
            parse_command("GRAPH g0 64 undirected"),
            Ok(Command::Graph {
                name: "g0".into(),
                nodes: 64,
                directed: false
            })
        );
        assert_eq!(
            parse_command("REGISTER q1 g0 sssp source=3"),
            Ok(Command::Register {
                qid: "q1".into(),
                graph: "g0".into(),
                class: "sssp".into(),
                source: 3,
                pattern_seed: 42
            })
        );
        assert_eq!(
            parse_command("UPDATE g0 7 2"),
            Ok(Command::UpdateHeader {
                graph: "g0".into(),
                seq: 7,
                k: 2
            })
        );
        for line in ["STATUS", "PING", "BYE", "SHUTDOWN"] {
            assert!(parse_command(line).is_ok(), "{line}");
        }
    }

    #[test]
    fn malformed_commands_are_rejected() {
        for line in [
            "",
            "FROB x",
            "HELLO",
            "HELLO incgraph-wire/1",
            "GRAPH g0 64",
            "GRAPH g0 sixty-four undirected",
            "GRAPH bad/name 4 undirected",
            "UPDATE g0 0 1",
            "UPDATE g0 1",
            "REGISTER q g0 sssp frob=1",
            "STATUS extra",
        ] {
            assert!(parse_command(line).is_err(), "{line:?} should fail");
        }
    }

    #[test]
    fn update_lines_parse_like_read_updates() {
        let mut b = UpdateBatch::new();
        parse_update_line("+ 1 2 9", &mut b).unwrap();
        parse_update_line("+ 3 4", &mut b).unwrap();
        parse_update_line("- 1 2", &mut b).unwrap();
        assert_eq!(b.len(), 3);
        assert!(parse_update_line("* 1 2", &mut b).is_err());
        assert!(parse_update_line("+ 1", &mut b).is_err());
        assert!(parse_update_line("+ 1 2 3 4", &mut b).is_err());
    }

    #[test]
    fn delta_lines_round_trip() {
        let mut changed = BTreeMap::new();
        changed.insert(3u32, 77u64);
        changed.insert(9, 0);
        let line = format_delta("q1", 12, &changed, None);
        assert_eq!(line, "DELTA q1 12 2 3:77 9:0");
        let d = parse_delta(&line).unwrap();
        assert_eq!(d.changed.as_ref().unwrap().len(), 2);
        assert_eq!(d.wal_seq, 12);

        let r = format_delta("q1", 5, &BTreeMap::new(), Some(640));
        assert_eq!(r, "DELTA q1 5 resync 640");
        let d = parse_delta(&r).unwrap();
        assert!(d.changed.is_none());
        assert_eq!(d.resync_len, 640);
    }

    #[test]
    fn err_codes_round_trip() {
        for code in [
            ErrCode::BadProto,
            ErrCode::SeqGap,
            ErrCode::SlowConsumer,
            ErrCode::StoreBusy,
        ] {
            assert_eq!(ErrCode::from_name(code.name()), Some(code));
        }
        assert_eq!(ErrCode::from_name("nope"), None);
    }
}
