//! The `incgraph-wire/1` protocol: line-oriented, UTF-8, space-separated.
//!
//! Every message is one `\n`-terminated line, except `UPDATE`, whose
//! header line is followed by exactly `k` unit-update lines in the
//! `+ u v w` / `- u v` syntax of `incgraph_graph::io::read_updates`.
//! The full grammar, semantics tables, and the exactly-once retry
//! cookbook live in `docs/SERVICE.md`; this module is the single
//! parse/format authority both the server and the client use, so the two
//! sides cannot drift.
//!
//! Client → server:
//!
//! ```text
//! HELLO incgraph-wire/1 <token>
//! GRAPH <name> <nodes> directed|undirected
//! REGISTER <qid> <graph> <class> [source=<n>] [pattern=<seed>]
//! UNREGISTER <qid>
//! PLAN <qid> <graph> <pattern-seed> <plan-text…>   (incgraph-plan/1, to end of line)
//! UNPLAN <qid>
//! PLANQ <qid>
//! UPDATE <graph> <seq> <k>      (then k update lines)
//! QUERY <qid>
//! STATUS
//! PING
//! BYE
//! SHUTDOWN
//! ```
//!
//! Replica → primary (on an ordinary session, after `HELLO`):
//!
//! ```text
//! SYNC <graph> <epoch> <from_seq> <crc|-> directed|undirected <nodes> [force]
//! WATERMARK <seq>
//! PROMOTE
//! ```
//!
//! Server → client:
//!
//! ```text
//! WELCOME incgraph-wire/1 <session-id>
//! BUSY <retry-after-ms>
//! OK <cmd> <args...>
//! ACK <seq> <wal-seq> <units> [dup]
//! DELTA <qid> <wal-seq> <m> <i>:<v>...      (m changed digest entries)
//! DELTA <qid> <wal-seq> resync <len>        (too many changes: re-QUERY)
//! VDELTA <qid> <wal-seq> <m> <k>:<v>:<w>... (m weighted view-row changes)
//! VIEW <qid> <wal-seq> <n> <k>:<v>:<w>...   (full standing-plan view)
//! RESULT <qid> <wal-seq> <n> <v>...
//! PONG
//! ERR <code> <detail...>
//! GOODBYE <reason>
//! ```
//!
//! Primary → replica (replication stream, after `OK SYNC`):
//!
//! ```text
//! OK SYNC tail <epoch> <last_seq>           (then SHIP from from_seq+1)
//! OK SYNC snap <epoch> <snap_seq>           (then SNAP/SNAPACK/SNAPEND)
//! SHIP <seq> <token|-> <client_seq> <hex-record>
//! SNAP <i> <n> <hex-chunk>
//! SNAPACK <token> <client_seq> <wal_seq>
//! SNAPEND <seq> <crc>
//! DIGEST <seq> <digest>
//! ```
//!
//! `SHIP` carries the *full WAL record bytes* (hex) — self-validating
//! through the record's own CRC and sequence number, decoded with the
//! same [`scan_records`](incgraph_durable::scan_records) the recovery
//! path uses. `SNAP` chunks a checkpoint payload
//! ([`DurableSession::encode_snapshot`](incgraph_durable::DurableSession::encode_snapshot));
//! `SNAPACK` transfers the exactly-once ack table so client retries
//! survive failover; `DIGEST` is the periodic divergence probe.

use incgraph_graph::{NodeId, UpdateBatch, Weight};
use std::collections::BTreeMap;
use std::fmt;

/// Protocol identifier exchanged in `HELLO`/`WELCOME`.
pub const WIRE_VERSION: &str = "incgraph-wire/1";

/// Hard cap on one wire line, defending the reader against an unbounded
/// allocation from a hostile or broken peer.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Typed error codes carried on `ERR` lines. Stable wire names — scripts
/// and the chaos harness match on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// `HELLO` version or shape mismatch.
    BadProto,
    /// Unparsable or unknown command line.
    BadCommand,
    /// Any command other than `HELLO` before the handshake.
    NeedHello,
    /// A second `HELLO` on an established session.
    AlreadyHello,
    /// `UPDATE`/`REGISTER` named a graph this store does not hold.
    UnknownGraph,
    /// `GRAPH` re-opened an existing graph with a different shape.
    GraphMismatch,
    /// `REGISTER` named an unknown query class.
    UnknownClass,
    /// The class is undefined on a directed graph (LCC, BC).
    UndirectedRequired,
    /// `REGISTER` reused a live query id on this session.
    DupQuery,
    /// `QUERY`/`UNREGISTER` named an unregistered query id.
    UnknownQuery,
    /// `PLAN` text was rejected by the `incgraph-plan/1` parser or a
    /// member session refused to build.
    BadPlan,
    /// Client sequence is neither `last` (retry) nor `last + 1` (next).
    SeqGap,
    /// The ΔG failed batch validation; the store is unchanged.
    InvalidBatch,
    /// The graph is in degraded read-only mode after a WAL write failure.
    ReadOnly,
    /// Batch or line exceeds the configured size limits.
    TooLarge,
    /// The session's outbound queue overflowed its hard cap; the server
    /// disconnects right after delivering this.
    SlowConsumer,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The durable store is locked by another process (or still being
    /// released); retry.
    StoreBusy,
    /// Internal store failure (I/O, corruption).
    Store,
    /// A replication peer presented a higher durable epoch than ours:
    /// we have been deposed and must not accept writes (fencing).
    StaleEpoch,
    /// A write or replication command was sent to a node that is not
    /// the primary (replica or fenced ex-primary).
    NotPrimary,
}

impl ErrCode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::BadProto => "bad-proto",
            ErrCode::BadCommand => "bad-command",
            ErrCode::NeedHello => "need-hello",
            ErrCode::AlreadyHello => "already-hello",
            ErrCode::UnknownGraph => "unknown-graph",
            ErrCode::GraphMismatch => "graph-mismatch",
            ErrCode::UnknownClass => "unknown-class",
            ErrCode::UndirectedRequired => "undirected-required",
            ErrCode::DupQuery => "dup-query",
            ErrCode::UnknownQuery => "unknown-query",
            ErrCode::BadPlan => "bad-plan",
            ErrCode::SeqGap => "seq-gap",
            ErrCode::InvalidBatch => "invalid-batch",
            ErrCode::ReadOnly => "readonly",
            ErrCode::TooLarge => "too-large",
            ErrCode::SlowConsumer => "slow-consumer",
            ErrCode::ShuttingDown => "shutting-down",
            ErrCode::StoreBusy => "store-busy",
            ErrCode::Store => "store",
            ErrCode::StaleEpoch => "stale-epoch",
            ErrCode::NotPrimary => "not-primary",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<ErrCode> {
        const ALL: [ErrCode; 21] = [
            ErrCode::BadProto,
            ErrCode::BadCommand,
            ErrCode::NeedHello,
            ErrCode::AlreadyHello,
            ErrCode::UnknownGraph,
            ErrCode::GraphMismatch,
            ErrCode::UnknownClass,
            ErrCode::UndirectedRequired,
            ErrCode::DupQuery,
            ErrCode::UnknownQuery,
            ErrCode::BadPlan,
            ErrCode::SeqGap,
            ErrCode::InvalidBatch,
            ErrCode::ReadOnly,
            ErrCode::TooLarge,
            ErrCode::SlowConsumer,
            ErrCode::ShuttingDown,
            ErrCode::StoreBusy,
            ErrCode::Store,
            ErrCode::StaleEpoch,
            ErrCode::NotPrimary,
        ];
        ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed client command (the `UPDATE` header only names the batch;
/// its unit lines are read separately by the session loop).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    Hello {
        version: String,
        token: String,
    },
    Graph {
        name: String,
        nodes: usize,
        directed: bool,
    },
    Register {
        qid: String,
        graph: String,
        class: String,
        source: NodeId,
        pattern_seed: u64,
    },
    Unregister {
        qid: String,
    },
    /// Standing dataflow plan over `graph`. `text` is the raw
    /// `incgraph-plan/1` plan (rest of the line, verbatim);
    /// `pattern_seed` seeds the Sim pattern for `sim` sources, mirroring
    /// `REGISTER pattern=`.
    Plan {
        qid: String,
        graph: String,
        pattern_seed: u64,
        text: String,
    },
    Unplan {
        qid: String,
    },
    /// Full materialized view of a standing plan (`VIEW` reply).
    Planq {
        qid: String,
    },
    UpdateHeader {
        graph: String,
        seq: u64,
        k: usize,
    },
    Query {
        qid: String,
    },
    Status,
    Ping,
    Bye,
    Shutdown,
    /// Replication handshake: a replica announces its graph shape,
    /// durable epoch, and the last WAL record it holds (`from_seq` +
    /// that record's CRC, `-` when it has none) and asks to be fed.
    Sync {
        graph: String,
        epoch: u64,
        from_seq: u64,
        crc: Option<u32>,
        directed: bool,
        nodes: usize,
        /// Force a snapshot bootstrap even when a tail would do.
        force: bool,
    },
    /// Replica → primary: `seq` is now fsynced on the replica.
    Watermark {
        seq: u64,
    },
    /// Operator command to a replica: bump the epoch and take writes.
    Promote,
}

/// Why a command line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommandError(pub String);

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 128
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Parses one client command line. `UPDATE` yields only the header; the
/// caller reads the following `k` unit lines via [`parse_update_line`].
pub fn parse_command(line: &str) -> Result<Command, CommandError> {
    let bad = |msg: &str| CommandError(msg.to_string());
    let mut it = line.split_whitespace();
    let cmd = it.next().ok_or_else(|| bad("empty line"))?;
    let parsed = match cmd {
        "HELLO" => {
            let version = it.next().ok_or_else(|| bad("HELLO needs a version"))?;
            let token = it.next().ok_or_else(|| bad("HELLO needs a token"))?;
            if !ident_ok(token) {
                return Err(bad("HELLO token must be a short identifier"));
            }
            Command::Hello {
                version: version.to_string(),
                token: token.to_string(),
            }
        }
        "GRAPH" => {
            let name = it.next().ok_or_else(|| bad("GRAPH needs a name"))?;
            if !ident_ok(name) {
                return Err(bad("GRAPH name must be a short identifier"));
            }
            let nodes: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("GRAPH needs a node count"))?;
            let directed = match it.next() {
                Some("directed") => true,
                Some("undirected") => false,
                _ => return Err(bad("GRAPH needs directed|undirected")),
            };
            Command::Graph {
                name: name.to_string(),
                nodes,
                directed,
            }
        }
        "REGISTER" => {
            let qid = it.next().ok_or_else(|| bad("REGISTER needs a query id"))?;
            let graph = it.next().ok_or_else(|| bad("REGISTER needs a graph"))?;
            let class = it.next().ok_or_else(|| bad("REGISTER needs a class"))?;
            if !ident_ok(qid) || !ident_ok(graph) || !ident_ok(class) {
                return Err(bad("REGISTER ids must be short identifiers"));
            }
            let mut source: NodeId = 0;
            let mut pattern_seed: u64 = 42;
            for opt in it.by_ref() {
                if let Some(v) = opt.strip_prefix("source=") {
                    source = v.parse().map_err(|_| bad("bad source="))?;
                } else if let Some(v) = opt.strip_prefix("pattern=") {
                    pattern_seed = v.parse().map_err(|_| bad("bad pattern="))?;
                } else {
                    return Err(bad("unknown REGISTER option"));
                }
            }
            Command::Register {
                qid: qid.to_string(),
                graph: graph.to_string(),
                class: class.to_string(),
                source,
                pattern_seed,
            }
        }
        "UNREGISTER" => Command::Unregister {
            qid: it
                .next()
                .filter(|q| ident_ok(q))
                .ok_or_else(|| bad("UNREGISTER needs a query id"))?
                .to_string(),
        },
        "PLAN" => {
            // The plan text is the raw remainder of the line (it
            // contains spaces), so PLAN re-tokenizes from `line` instead
            // of consuming the whitespace-split iterator.
            let rest = line.trim_start();
            let rest = rest["PLAN".len()..].trim_start();
            let (qid, rest) = take_token(rest).ok_or_else(|| bad("PLAN needs a query id"))?;
            let (graph, rest) = take_token(rest).ok_or_else(|| bad("PLAN needs a graph"))?;
            let (seed, rest) = take_token(rest).ok_or_else(|| bad("PLAN needs a pattern seed"))?;
            if !ident_ok(qid) || !ident_ok(graph) {
                return Err(bad("PLAN ids must be short identifiers"));
            }
            let pattern_seed: u64 = seed.parse().map_err(|_| bad("bad PLAN pattern seed"))?;
            let text = rest.trim();
            if text.is_empty() {
                return Err(bad("PLAN needs a plan text"));
            }
            Command::Plan {
                qid: qid.to_string(),
                graph: graph.to_string(),
                pattern_seed,
                text: text.to_string(),
            }
        }
        "UNPLAN" => Command::Unplan {
            qid: it
                .next()
                .filter(|q| ident_ok(q))
                .ok_or_else(|| bad("UNPLAN needs a query id"))?
                .to_string(),
        },
        "PLANQ" => Command::Planq {
            qid: it
                .next()
                .filter(|q| ident_ok(q))
                .ok_or_else(|| bad("PLANQ needs a query id"))?
                .to_string(),
        },
        "UPDATE" => {
            let graph = it.next().ok_or_else(|| bad("UPDATE needs a graph"))?;
            if !ident_ok(graph) {
                return Err(bad("UPDATE graph must be a short identifier"));
            }
            let seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("UPDATE needs a client sequence"))?;
            let k: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("UPDATE needs an update count"))?;
            if seq == 0 {
                return Err(bad("UPDATE sequence starts at 1"));
            }
            Command::UpdateHeader {
                graph: graph.to_string(),
                seq,
                k,
            }
        }
        "QUERY" => Command::Query {
            qid: it
                .next()
                .filter(|q| ident_ok(q))
                .ok_or_else(|| bad("QUERY needs a query id"))?
                .to_string(),
        },
        "STATUS" => Command::Status,
        "PING" => Command::Ping,
        "BYE" => Command::Bye,
        "SHUTDOWN" => Command::Shutdown,
        "SYNC" => {
            let graph = it.next().ok_or_else(|| bad("SYNC needs a graph"))?;
            if !ident_ok(graph) {
                return Err(bad("SYNC graph must be a short identifier"));
            }
            let epoch: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SYNC needs an epoch"))?;
            let from_seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SYNC needs a from-seq"))?;
            let crc = match it.next().ok_or_else(|| bad("SYNC needs a crc or -"))? {
                "-" => None,
                hex => Some(u32::from_str_radix(hex, 16).map_err(|_| bad("SYNC crc must be hex"))?),
            };
            let directed = match it.next() {
                Some("directed") => true,
                Some("undirected") => false,
                _ => return Err(bad("SYNC needs directed|undirected")),
            };
            let nodes: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SYNC needs a node count"))?;
            let force = match it.next() {
                None => false,
                Some("force") => true,
                Some(_) => return Err(bad("unknown SYNC option")),
            };
            Command::Sync {
                graph: graph.to_string(),
                epoch,
                from_seq,
                crc,
                directed,
                nodes,
                force,
            }
        }
        "WATERMARK" => Command::Watermark {
            seq: it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("WATERMARK needs a sequence"))?,
        },
        "PROMOTE" => Command::Promote,
        other => return Err(bad(&format!("unknown command {other}"))),
    };
    if it.next().is_some() && !matches!(parsed, Command::Hello { .. } | Command::Plan { .. }) {
        return Err(bad("trailing arguments"));
    }
    Ok(parsed)
}

/// Splits the next whitespace-separated token off `s`, returning it and
/// the remainder (used by `PLAN`, whose last argument is raw text).
fn take_token(s: &str) -> Option<(&str, &str)> {
    let s = s.trim_start();
    if s.is_empty() {
        return None;
    }
    let end = s.find(char::is_whitespace).unwrap_or(s.len());
    Some((&s[..end], &s[end..]))
}

/// Parses one `+ u v [w]` / `- u v` unit line into `batch`.
pub fn parse_update_line(line: &str, batch: &mut UpdateBatch) -> Result<(), CommandError> {
    let bad = || CommandError(format!("bad update line `{line}`"));
    let mut it = line.split_whitespace();
    let op = it.next().ok_or_else(bad)?;
    let u: NodeId = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let v: NodeId = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    match op {
        "+" => {
            let w: Weight = match it.next() {
                Some(t) => t.parse().map_err(|_| bad())?,
                None => 1,
            };
            batch.insert(u, v, w);
        }
        "-" => {
            batch.delete(u, v);
        }
        _ => return Err(bad()),
    }
    if it.next().is_some() {
        return Err(bad());
    }
    Ok(())
}

/// Formats a `DELTA` notification line. `changed` maps digest index →
/// new value; `resync_len` (the digest length past which the server
/// stops enumerating) switches to the `resync` form.
pub fn format_delta(
    qid: &str,
    wal_seq: u64,
    changed: &BTreeMap<u32, u64>,
    resync: Option<usize>,
) -> String {
    match resync {
        Some(len) => format!("DELTA {qid} {wal_seq} resync {len}"),
        None => {
            let mut s = format!("DELTA {qid} {wal_seq} {}", changed.len());
            for (i, v) in changed {
                s.push(' ');
                s.push_str(&format!("{i}:{v}"));
            }
            s
        }
    }
}

/// A parsed `DELTA` line, as seen by clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    pub qid: String,
    pub wal_seq: u64,
    /// `None` = resync requested (with the new digest length).
    pub changed: Option<BTreeMap<u32, u64>>,
    pub resync_len: usize,
}

/// Parses a server `DELTA` line (client side).
pub fn parse_delta(line: &str) -> Result<Delta, CommandError> {
    let bad = || CommandError(format!("bad DELTA line `{line}`"));
    let mut it = line.split_whitespace();
    if it.next() != Some("DELTA") {
        return Err(bad());
    }
    let qid = it.next().ok_or_else(bad)?.to_string();
    let wal_seq: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    match it.next().ok_or_else(bad)? {
        "resync" => {
            let len: usize = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            Ok(Delta {
                qid,
                wal_seq,
                changed: None,
                resync_len: len,
            })
        }
        m => {
            let m: usize = m.parse().map_err(|_| bad())?;
            let mut changed = BTreeMap::new();
            for _ in 0..m {
                let pair = it.next().ok_or_else(bad)?;
                let (i, v) = pair.split_once(':').ok_or_else(bad)?;
                changed.insert(i.parse().map_err(|_| bad())?, v.parse().map_err(|_| bad())?);
            }
            Ok(Delta {
                qid,
                wal_seq,
                changed: Some(changed),
                resync_len: 0,
            })
        }
    }
}

/// One weighted view row `(key, value, weight)` of a standing plan.
pub type ViewRow = (u64, u64, i64);

/// Formats a standing-plan view notification (`VDELTA`) or full view
/// reply (`VIEW`): weighted `(key, value, weight)` rows in key order.
pub fn format_view_rows(verb: &str, qid: &str, wal_seq: u64, rows: &[ViewRow]) -> String {
    let mut s = format!("{verb} {qid} {wal_seq} {}", rows.len());
    for (k, v, w) in rows {
        s.push(' ');
        s.push_str(&format!("{k}:{v}:{w}"));
    }
    s
}

/// A parsed `VDELTA`/`VIEW` line, as seen by clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewRows {
    pub qid: String,
    pub wal_seq: u64,
    pub rows: Vec<ViewRow>,
}

/// Parses a server `VDELTA` or `VIEW` line (client side); `verb` selects
/// which.
pub fn parse_view_rows(verb: &str, line: &str) -> Result<ViewRows, CommandError> {
    let bad = || CommandError(format!("bad {verb} line `{line}`"));
    let mut it = line.split_whitespace();
    if it.next() != Some(verb) {
        return Err(bad());
    }
    let qid = it.next().ok_or_else(bad)?.to_string();
    let wal_seq: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let n: usize = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let triple = it.next().ok_or_else(bad)?;
        let mut parts = triple.split(':');
        let k: u64 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        let v: u64 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        let w: i64 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        if parts.next().is_some() {
            return Err(bad());
        }
        rows.push((k, v, w));
    }
    if it.next().is_some() {
        return Err(bad());
    }
    Ok(ViewRows { qid, wal_seq, rows })
}

/// Lowercase hex encoding for replication payloads (std-only).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`to_hex`]; `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for pair in b.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Formats the replica side of the replication handshake. `crc` is the
/// CRC of the last WAL record the replica holds (`None` → `-`).
pub fn format_sync(
    graph: &str,
    epoch: u64,
    from_seq: u64,
    crc: Option<u32>,
    directed: bool,
    nodes: usize,
    force: bool,
) -> String {
    let crc = match crc {
        Some(c) => format!("{c:08x}"),
        None => "-".to_string(),
    };
    let dir = if directed { "directed" } else { "undirected" };
    let force = if force { " force" } else { "" };
    format!("SYNC {graph} {epoch} {from_seq} {crc} {dir} {nodes}{force}")
}

/// One primary → replica replication-stream message (everything after
/// `OK SYNC`). Parsed by [`parse_repl`], formatted by the `format_*`
/// helpers below — the one authority both ends share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplMsg {
    /// One fsynced WAL record: the full record bytes (self-validating
    /// via the record's own CRC + seq) plus the exactly-once identity
    /// it was committed under (`token = None` for identity-less
    /// records, e.g. replayed history with no dedup entry).
    Ship {
        seq: u64,
        token: Option<String>,
        client_seq: u64,
        record: Vec<u8>,
    },
    /// One chunk (`index` of `total`) of a checkpoint payload.
    Snap {
        index: usize,
        total: usize,
        chunk: Vec<u8>,
    },
    /// One exactly-once ack-table entry shipped with a snapshot.
    SnapAck {
        token: String,
        client_seq: u64,
        wal_seq: u64,
    },
    /// End of snapshot: the seq it covers and the CRC of the whole
    /// reassembled payload.
    SnapEnd { seq: u64, crc: u32 },
    /// Periodic divergence probe: the primary's store digest at `seq`.
    Digest { seq: u64, digest: String },
}

/// Formats a `SHIP` line from raw WAL record bytes.
pub fn format_ship(seq: u64, identity: Option<(&str, u64)>, record: &[u8]) -> String {
    let (token, client_seq) = match identity {
        Some((t, c)) => (t.to_string(), c),
        None => ("-".to_string(), 0),
    };
    format!("SHIP {seq} {token} {client_seq} {}", to_hex(record))
}

/// Formats a `SNAP` chunk line.
pub fn format_snap(index: usize, total: usize, chunk: &[u8]) -> String {
    format!("SNAP {index} {total} {}", to_hex(chunk))
}

/// Formats a `SNAPACK` ack-table entry line.
pub fn format_snapack(token: &str, client_seq: u64, wal_seq: u64) -> String {
    format!("SNAPACK {token} {client_seq} {wal_seq}")
}

/// Formats the `SNAPEND` terminator line.
pub fn format_snapend(seq: u64, crc: u32) -> String {
    format!("SNAPEND {seq} {crc:08x}")
}

/// Formats a `DIGEST` divergence-probe line.
pub fn format_digest(seq: u64, digest: &str) -> String {
    format!("DIGEST {seq} {digest}")
}

/// Parses one replication-stream line. `Ok(None)` means the line is not
/// a replication message (e.g. `OK`, `ERR`, `GOODBYE` — the caller
/// handles those); `Err` means it *claimed* to be one but is malformed.
pub fn parse_repl(line: &str) -> Result<Option<ReplMsg>, CommandError> {
    let bad = |msg: &str| CommandError(format!("{msg} in `{line}`"));
    let mut it = line.split_whitespace();
    let msg = match it.next() {
        Some("SHIP") => {
            let seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SHIP needs a seq"))?;
            let token = match it.next().ok_or_else(|| bad("SHIP needs a token or -"))? {
                "-" => None,
                t if ident_ok(t) => Some(t.to_string()),
                _ => return Err(bad("SHIP token must be a short identifier")),
            };
            let client_seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SHIP needs a client seq"))?;
            let record = it
                .next()
                .and_then(from_hex)
                .ok_or_else(|| bad("SHIP needs a hex record"))?;
            ReplMsg::Ship {
                seq,
                token,
                client_seq,
                record,
            }
        }
        Some("SNAP") => {
            let index: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SNAP needs an index"))?;
            let total: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SNAP needs a total"))?;
            let chunk = it
                .next()
                .and_then(from_hex)
                .ok_or_else(|| bad("SNAP needs a hex chunk"))?;
            if total == 0 || index >= total {
                return Err(bad("SNAP index out of range"));
            }
            ReplMsg::Snap {
                index,
                total,
                chunk,
            }
        }
        Some("SNAPACK") => {
            let token = it
                .next()
                .filter(|t| ident_ok(t))
                .ok_or_else(|| bad("SNAPACK needs a token"))?
                .to_string();
            let client_seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SNAPACK needs a client seq"))?;
            let wal_seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SNAPACK needs a wal seq"))?;
            ReplMsg::SnapAck {
                token,
                client_seq,
                wal_seq,
            }
        }
        Some("SNAPEND") => {
            let seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("SNAPEND needs a seq"))?;
            let crc = it
                .next()
                .and_then(|t| u32::from_str_radix(t, 16).ok())
                .ok_or_else(|| bad("SNAPEND needs a hex crc"))?;
            ReplMsg::SnapEnd { seq, crc }
        }
        Some("DIGEST") => {
            let seq: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("DIGEST needs a seq"))?;
            let digest = it
                .next()
                .filter(|d| ident_ok(d))
                .ok_or_else(|| bad("DIGEST needs a digest"))?
                .to_string();
            ReplMsg::Digest { seq, digest }
        }
        _ => return Ok(None),
    };
    if it.next().is_some() {
        return Err(bad("trailing arguments"));
    }
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_lines_round_trip() {
        assert_eq!(
            parse_command("HELLO incgraph-wire/1 alice"),
            Ok(Command::Hello {
                version: WIRE_VERSION.into(),
                token: "alice".into()
            })
        );
        assert_eq!(
            parse_command("GRAPH g0 64 undirected"),
            Ok(Command::Graph {
                name: "g0".into(),
                nodes: 64,
                directed: false
            })
        );
        assert_eq!(
            parse_command("REGISTER q1 g0 sssp source=3"),
            Ok(Command::Register {
                qid: "q1".into(),
                graph: "g0".into(),
                class: "sssp".into(),
                source: 3,
                pattern_seed: 42
            })
        );
        assert_eq!(
            parse_command("UPDATE g0 7 2"),
            Ok(Command::UpdateHeader {
                graph: "g0".into(),
                seq: 7,
                k: 2
            })
        );
        for line in ["STATUS", "PING", "BYE", "SHUTDOWN"] {
            assert!(parse_command(line).is_ok(), "{line}");
        }
    }

    #[test]
    fn plan_commands_capture_raw_text() {
        assert_eq!(
            parse_command("PLAN p1 g0 42 d = sssp(source=0); n = count(d)"),
            Ok(Command::Plan {
                qid: "p1".into(),
                graph: "g0".into(),
                pattern_seed: 42,
                text: "d = sssp(source=0); n = count(d)".into(),
            })
        );
        // Internal whitespace of the plan text survives verbatim.
        match parse_command("PLAN p g 7 a = cc;  b = filter(a, val < 5)") {
            Ok(Command::Plan { text, .. }) => {
                assert_eq!(text, "a = cc;  b = filter(a, val < 5)")
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_command("UNPLAN p1"),
            Ok(Command::Unplan { qid: "p1".into() })
        );
        assert_eq!(
            parse_command("PLANQ p1"),
            Ok(Command::Planq { qid: "p1".into() })
        );
        for line in [
            "PLAN",
            "PLAN p1",
            "PLAN p1 g0",
            "PLAN p1 g0 42",
            "PLAN p1 g0 seed d = cc",
            "PLAN bad/id g0 42 d = cc",
            "UNPLAN",
            "PLANQ extra args",
        ] {
            assert!(parse_command(line).is_err(), "{line:?} should fail");
        }
    }

    #[test]
    fn view_rows_round_trip() {
        let rows = vec![(0u64, 5u64, 1i64), (3, 9, -1)];
        let line = format_view_rows("VDELTA", "p1", 12, &rows);
        assert_eq!(line, "VDELTA p1 12 2 0:5:1 3:9:-1");
        let parsed = parse_view_rows("VDELTA", &line).unwrap();
        assert_eq!(parsed.qid, "p1");
        assert_eq!(parsed.wal_seq, 12);
        assert_eq!(parsed.rows, rows);
        let line = format_view_rows("VIEW", "p2", 0, &[]);
        assert_eq!(line, "VIEW p2 0 0");
        assert_eq!(parse_view_rows("VIEW", &line).unwrap().rows, vec![]);
        assert!(parse_view_rows("VIEW", "VIEW p 1 2 0:1:1").is_err());
        assert!(parse_view_rows("VIEW", "VDELTA p 1 0").is_err());
    }

    #[test]
    fn malformed_commands_are_rejected() {
        for line in [
            "",
            "FROB x",
            "HELLO",
            "HELLO incgraph-wire/1",
            "GRAPH g0 64",
            "GRAPH g0 sixty-four undirected",
            "GRAPH bad/name 4 undirected",
            "UPDATE g0 0 1",
            "UPDATE g0 1",
            "REGISTER q g0 sssp frob=1",
            "STATUS extra",
        ] {
            assert!(parse_command(line).is_err(), "{line:?} should fail");
        }
    }

    #[test]
    fn update_lines_parse_like_read_updates() {
        let mut b = UpdateBatch::new();
        parse_update_line("+ 1 2 9", &mut b).unwrap();
        parse_update_line("+ 3 4", &mut b).unwrap();
        parse_update_line("- 1 2", &mut b).unwrap();
        assert_eq!(b.len(), 3);
        assert!(parse_update_line("* 1 2", &mut b).is_err());
        assert!(parse_update_line("+ 1", &mut b).is_err());
        assert!(parse_update_line("+ 1 2 3 4", &mut b).is_err());
    }

    #[test]
    fn delta_lines_round_trip() {
        let mut changed = BTreeMap::new();
        changed.insert(3u32, 77u64);
        changed.insert(9, 0);
        let line = format_delta("q1", 12, &changed, None);
        assert_eq!(line, "DELTA q1 12 2 3:77 9:0");
        let d = parse_delta(&line).unwrap();
        assert_eq!(d.changed.as_ref().unwrap().len(), 2);
        assert_eq!(d.wal_seq, 12);

        let r = format_delta("q1", 5, &BTreeMap::new(), Some(640));
        assert_eq!(r, "DELTA q1 5 resync 640");
        let d = parse_delta(&r).unwrap();
        assert!(d.changed.is_none());
        assert_eq!(d.resync_len, 640);
    }

    #[test]
    fn err_codes_round_trip() {
        for code in [
            ErrCode::BadProto,
            ErrCode::SeqGap,
            ErrCode::SlowConsumer,
            ErrCode::StoreBusy,
            ErrCode::StaleEpoch,
            ErrCode::NotPrimary,
        ] {
            assert_eq!(ErrCode::from_name(code.name()), Some(code));
        }
        assert_eq!(ErrCode::from_name("nope"), None);
    }

    #[test]
    fn sync_lines_round_trip() {
        let line = format_sync("g0", 3, 17, Some(0xdeadbeef), false, 64, false);
        assert_eq!(line, "SYNC g0 3 17 deadbeef undirected 64");
        assert_eq!(
            parse_command(&line),
            Ok(Command::Sync {
                graph: "g0".into(),
                epoch: 3,
                from_seq: 17,
                crc: Some(0xdeadbeef),
                directed: false,
                nodes: 64,
                force: false
            })
        );
        let line = format_sync("g0", 1, 0, None, true, 8, true);
        assert_eq!(line, "SYNC g0 1 0 - directed 8 force");
        assert!(matches!(
            parse_command(&line),
            Ok(Command::Sync {
                crc: None,
                force: true,
                ..
            })
        ));
        assert_eq!(
            parse_command("WATERMARK 99"),
            Ok(Command::Watermark { seq: 99 })
        );
        assert_eq!(parse_command("PROMOTE"), Ok(Command::Promote));
        for line in [
            "SYNC g0 1 0 - directed",
            "SYNC g0 1 0 zz directed 8",
            "SYNC g0 1 0 - sideways 8",
            "SYNC g0 1 0 - directed 8 gently",
            "WATERMARK",
            "PROMOTE now",
        ] {
            assert!(parse_command(line).is_err(), "{line:?} should fail");
        }
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }

    #[test]
    fn repl_lines_round_trip() {
        let rec = vec![0x12, 0x34, 0xff];
        let line = format_ship(7, Some(("alice", 3)), &rec);
        assert_eq!(line, "SHIP 7 alice 3 1234ff");
        assert_eq!(
            parse_repl(&line).unwrap(),
            Some(ReplMsg::Ship {
                seq: 7,
                token: Some("alice".into()),
                client_seq: 3,
                record: rec.clone()
            })
        );
        let line = format_ship(8, None, &rec);
        assert!(matches!(
            parse_repl(&line).unwrap(),
            Some(ReplMsg::Ship { token: None, .. })
        ));

        let line = format_snap(0, 2, &[0xab]);
        assert_eq!(
            parse_repl(&line).unwrap(),
            Some(ReplMsg::Snap {
                index: 0,
                total: 2,
                chunk: vec![0xab]
            })
        );
        let line = format_snapack("bob", 5, 40);
        assert_eq!(
            parse_repl(&line).unwrap(),
            Some(ReplMsg::SnapAck {
                token: "bob".into(),
                client_seq: 5,
                wal_seq: 40
            })
        );
        let line = format_snapend(40, 0xcafe0042);
        assert_eq!(
            parse_repl(&line).unwrap(),
            Some(ReplMsg::SnapEnd {
                seq: 40,
                crc: 0xcafe0042
            })
        );
        let line = format_digest(40, "0012abcd");
        assert_eq!(
            parse_repl(&line).unwrap(),
            Some(ReplMsg::Digest {
                seq: 40,
                digest: "0012abcd".into()
            })
        );

        // Non-repl lines pass through as None; malformed repl lines error.
        assert_eq!(parse_repl("OK SYNC tail 1 7").unwrap(), None);
        assert_eq!(parse_repl("ERR stale-epoch deposed").unwrap(), None);
        for line in [
            "SHIP x alice 3 ab",
            "SHIP 7 - 0 xyz",
            "SNAP 2 2 ab",
            "SNAPEND 4",
            "DIGEST 4 0012abcd extra",
        ] {
            assert!(parse_repl(line).is_err(), "{line:?} should fail");
        }
    }
}
