//! Fault-tolerant incremental graph **service**.
//!
//! Everything below the service boundary — the deduced incremental
//! algorithms, the WAL-durable store, recovery — already existed; this
//! crate closes the loop from the paper's model to a long-running system
//! that strangers connect to over TCP and that misbehaving networks
//! cannot corrupt:
//!
//! - [`protocol`]: the line-oriented `incgraph-wire/1` protocol. Clients
//!   `HELLO` into sessions, create or attach to named graphs, register
//!   **standing queries** (any of the seven [`QueryClass`]es), stream
//!   `ΔG` batches in, and receive **delta notifications** — only the
//!   changed digest entries — out.
//! - [`store`]: the shared store: named graphs (in-memory or
//!   WAL-durable), standing queries, and the single-writer commit path
//!   with exactly-once client retries.
//! - [`dedup`]: the durable intent log that makes retried batches apply
//!   exactly once across crashes.
//! - [`server`]: the threaded TCP server — per-session deadlines,
//!   idle-session reaping, bounded outbound queues with slow-consumer
//!   coalescing-then-disconnect, admission control (`BUSY`), graceful
//!   drain, and degraded read-only mode after a WAL write failure.
//! - [`client`]: a small blocking client used by the CLI, the load
//!   harness, and the chaos tests.
//! - [`load`]: the `incgraph load` harness driving thousands of
//!   concurrent sessions and reporting per-class latency percentiles
//!   through the observability registry.
//!
//! The robustness claims are not aspirational: `crates/oracle`'s chaos
//! harness drives this server through a byte-level fault-injecting proxy
//! and in-process crash/restart cycles, asserting that every
//! acknowledged batch is applied exactly once and that recovery restores
//! byte-identical per-class essences. Wire grammar and semantics are
//! documented in `docs/SERVICE.md`.
//!
//! [`QueryClass`]: incgraph_algos::QueryClass

pub mod client;
pub mod dedup;
pub mod load;
pub mod outbound;
pub mod protocol;
pub(crate) mod repl;
pub mod server;
pub mod store;

pub use client::{Client, ClientError, Reply};
pub use dedup::{AckRecord, DedupEntry, DedupLog, DEDUP_NAME};
pub use load::{run_load, ClassPercentiles, LoadConfig, LoadReport};
pub use outbound::{OutMsg, Outbound};
pub use protocol::{Command, Delta, ErrCode, MAX_LINE_BYTES, WIRE_VERSION};
pub use server::{Role, Server, ServerConfig, ServerHandle};
pub use store::{record_crc_of, standing_states, ReplInfo, Store, StoreLimits};
