//! Bounded per-session outbound queues with slow-consumer handling.
//!
//! Every session owns one [`Outbound`]: the session's reader thread
//! pushes replies, the store's writer thread pushes `DELTA`
//! notifications, and the session's sender thread drains to the socket.
//! The queue is the server's backpressure boundary — a consumer that
//! stops reading cannot pin server memory:
//!
//! - below `soft_cap` messages, everything queues verbatim;
//! - between `soft_cap` and `hard_cap`, new `DELTA`s **coalesce** into
//!   the queued delta for the same query (newest value per digest index
//!   wins; an over-wide merge degrades to the `resync` form) — correct
//!   because deltas are state differences, not events: the merged delta
//!   carries the same final state;
//! - a push that would exceed `hard_cap` declares the consumer dead: the
//!   queue is dropped and replaced by `ERR slow-consumer` + `GOODBYE`,
//!   after which the sender disconnects.

use crate::protocol::{format_delta, ErrCode};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One queued server→client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutMsg {
    /// A fully formatted wire line (no trailing newline).
    Line(String),
    /// A structured delta notification, kept structured so it can
    /// coalesce under pressure.
    Delta {
        /// Standing query id.
        qid: String,
        /// WAL (or memory) sequence the notification reflects.
        wal_seq: u64,
        /// Changed digest entries, `None` = resync request.
        changed: Option<BTreeMap<u32, u64>>,
        /// Digest length, for the resync form.
        resync_len: usize,
    },
    /// Final line; the sender writes it and closes the connection.
    Goodbye(String),
}

impl OutMsg {
    /// Renders the wire line (no newline).
    pub fn render(&self) -> String {
        match self {
            OutMsg::Line(s) | OutMsg::Goodbye(s) => s.clone(),
            OutMsg::Delta {
                qid,
                wal_seq,
                changed,
                resync_len,
            } => match changed {
                Some(map) => format_delta(qid, *wal_seq, map, None),
                None => format_delta(qid, *wal_seq, &BTreeMap::new(), Some(*resync_len)),
            },
        }
    }
}

struct Inner {
    queue: VecDeque<OutMsg>,
    /// No more pushes; the sender drains what is queued, then closes.
    closing: bool,
    /// The hard cap fired; used so the session reports one typed error.
    slow_consumer: bool,
}

/// A bounded MPSC queue from server threads to one session's sender.
pub struct Outbound {
    inner: Mutex<Inner>,
    cv: Condvar,
    soft_cap: usize,
    hard_cap: usize,
    max_delta_entries: usize,
}

impl Outbound {
    /// A queue with the given caps. `max_delta_entries` bounds a merged
    /// delta before it degrades to `resync`.
    pub fn new(soft_cap: usize, hard_cap: usize, max_delta_entries: usize) -> Self {
        assert!(soft_cap <= hard_cap && hard_cap > 0);
        Outbound {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closing: false,
                slow_consumer: false,
            }),
            cv: Condvar::new(),
            soft_cap,
            hard_cap,
            max_delta_entries,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Queues a reply line. Returns `false` if the session is closing
    /// (the line is dropped — its socket is going away anyway).
    pub fn push_line(&self, line: String) -> bool {
        let mut g = self.lock();
        if g.closing {
            return false;
        }
        if g.queue.len() >= self.hard_cap {
            self.overflow(&mut g);
            return false;
        }
        g.queue.push_back(OutMsg::Line(line));
        drop(g);
        self.cv.notify_one();
        true
    }

    /// Queues the final line and stops accepting more.
    pub fn push_goodbye(&self, reason: &str) {
        let mut g = self.lock();
        if g.closing {
            return;
        }
        g.closing = true;
        g.queue
            .push_back(OutMsg::Goodbye(format!("GOODBYE {reason}")));
        drop(g);
        self.cv.notify_all();
    }

    /// Queues a delta notification, coalescing under pressure (see the
    /// module docs). Returns `false` when the push killed the session.
    pub fn push_delta(
        &self,
        qid: &str,
        wal_seq: u64,
        changed: Option<BTreeMap<u32, u64>>,
        resync_len: usize,
    ) -> bool {
        let mut g = self.lock();
        if g.closing {
            return false;
        }
        if g.queue.len() >= self.soft_cap {
            // Coalesce into the newest queued delta for the same query.
            let merged = g.queue.iter_mut().rev().find_map(|m| match m {
                OutMsg::Delta {
                    qid: q,
                    wal_seq: ws,
                    changed: ch,
                    resync_len: rl,
                } if q == qid => {
                    *ws = wal_seq;
                    *rl = resync_len;
                    match (ch.as_mut(), &changed) {
                        (Some(into), Some(new)) => {
                            into.extend(new.iter().map(|(&i, &v)| (i, v)));
                            if into.len() > self.max_delta_entries {
                                *ch = None;
                            }
                        }
                        _ => *ch = None,
                    }
                    Some(true)
                }
                _ => None,
            });
            if merged.is_some() {
                drop(g);
                self.cv.notify_one();
                incgraph_obs::counter("service.delta_coalesced", 1);
                return true;
            }
        }
        if g.queue.len() >= self.hard_cap {
            self.overflow(&mut g);
            return false;
        }
        g.queue.push_back(OutMsg::Delta {
            qid: qid.to_string(),
            wal_seq,
            changed,
            resync_len,
        });
        drop(g);
        self.cv.notify_one();
        true
    }

    fn overflow(&self, g: &mut Inner) {
        g.queue.clear();
        g.queue.push_back(OutMsg::Line(format!(
            "ERR {} outbound queue exceeded {} messages",
            ErrCode::SlowConsumer,
            self.hard_cap
        )));
        g.queue
            .push_back(OutMsg::Goodbye("GOODBYE slow-consumer".into()));
        g.closing = true;
        g.slow_consumer = true;
        incgraph_obs::counter("service.slow_consumer", 1);
        self.cv.notify_all();
    }

    /// Whether the hard cap killed this session.
    pub fn was_slow_consumer(&self) -> bool {
        self.lock().slow_consumer
    }

    /// Whether no further messages will be accepted.
    pub fn is_closing(&self) -> bool {
        self.lock().closing
    }

    /// Drops everything queued and wakes the sender so it exits at once
    /// — the abrupt path (kill / injected crash), no `GOODBYE`.
    pub fn close_now(&self) {
        let mut g = self.lock();
        g.queue.clear();
        g.closing = true;
        drop(g);
        self.cv.notify_all();
    }

    /// Pops the next message, waiting up to `timeout`. `None` means
    /// either timeout (check again) or closed-and-drained (`is_done`).
    pub fn pop(&self, timeout: Duration) -> Option<OutMsg> {
        let mut g = self.lock();
        if g.queue.is_empty() && !g.closing {
            let (guard, _) = self
                .cv
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
        g.queue.pop_front()
    }

    /// `true` once the queue is closing and fully drained.
    pub fn is_done(&self) -> bool {
        let g = self.lock();
        g.closing && g.queue.is_empty()
    }

    /// Messages currently queued (tests and STATUS).
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(i: u32, v: u64) -> Option<BTreeMap<u32, u64>> {
        let mut m = BTreeMap::new();
        m.insert(i, v);
        Some(m)
    }

    #[test]
    fn fifo_below_soft_cap() {
        let q = Outbound::new(4, 8, 16);
        assert!(q.push_line("OK PING".into()));
        assert!(q.push_delta("q1", 1, delta(0, 5), 10));
        assert_eq!(
            q.pop(Duration::from_millis(1)),
            Some(OutMsg::Line("OK PING".into()))
        );
        let d = q.pop(Duration::from_millis(1)).unwrap();
        assert_eq!(d.render(), "DELTA q1 1 1 0:5");
        assert!(q.pop(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn deltas_coalesce_above_soft_cap_newest_value_wins() {
        let q = Outbound::new(2, 10, 16);
        assert!(q.push_delta("q1", 1, delta(0, 5), 10));
        assert!(q.push_delta("q2", 1, delta(0, 6), 10));
        // Soft cap reached: these merge into the queued q1 delta.
        assert!(q.push_delta("q1", 2, delta(1, 7), 10));
        assert!(q.push_delta("q1", 3, delta(1, 8), 10));
        assert_eq!(q.len(), 2);
        let d = q.pop(Duration::from_millis(1)).unwrap();
        assert_eq!(d.render(), "DELTA q1 3 2 0:5 1:8");
    }

    #[test]
    fn over_wide_merge_degrades_to_resync() {
        let q = Outbound::new(1, 10, 2);
        assert!(q.push_delta("q1", 1, delta(0, 1), 9));
        for i in 1..4u32 {
            assert!(q.push_delta("q1", 1 + i as u64, delta(i, 1), 9));
        }
        let d = q.pop(Duration::from_millis(1)).unwrap();
        assert_eq!(d.render(), "DELTA q1 4 resync 9");
    }

    #[test]
    fn hard_cap_kills_with_typed_error_then_goodbye() {
        let q = Outbound::new(0, 3, 16);
        // Lines never coalesce; the 4th push overflows.
        for i in 0..3 {
            assert!(q.push_line(format!("OK {i}")));
        }
        assert!(!q.push_line("OK 3".into()));
        assert!(q.was_slow_consumer() && q.is_closing());
        let err = q.pop(Duration::from_millis(1)).unwrap().render();
        assert!(err.starts_with("ERR slow-consumer"), "{err}");
        assert!(matches!(
            q.pop(Duration::from_millis(1)),
            Some(OutMsg::Goodbye(_))
        ));
        assert!(q.is_done());
        // Later pushes are rejected without reviving the queue.
        assert!(!q.push_delta("q", 1, delta(0, 1), 4));
    }

    #[test]
    fn goodbye_then_drain_marks_done() {
        let q = Outbound::new(4, 8, 16);
        q.push_line("PONG".into());
        q.push_goodbye("bye");
        assert!(!q.push_line("late".into()));
        assert!(!q.is_done(), "still has queued messages");
        q.pop(Duration::from_millis(1)).unwrap();
        assert_eq!(
            q.pop(Duration::from_millis(1)),
            Some(OutMsg::Goodbye("GOODBYE bye".into()))
        );
        assert!(q.is_done());
    }
}
