//! Replica-side replication: the tail thread a `--replica-of` server
//! runs alongside its acceptor and writer.
//!
//! The loop is a client of the primary's ordinary wire port. Each
//! attempt: connect, `HELLO`, announce our position with `SYNC`
//! (epoch, last sequence, CRC of the record at that sequence), then
//! consume the primary's answer —
//!
//! - **`OK SYNC tail`**: the primary replays its retained WAL from our
//!   position and keeps shipping live commits; we apply each `SHIP`
//!   through the writer (the single-writer invariant holds for
//!   replication too) and confirm with `WATERMARK` once it is fsynced
//!   locally, which is what releases the primary's gated client acks.
//! - **`OK SYNC snap`**: we are behind the retained tail (or diverged,
//!   or asked with `force`): reassemble the chunked checkpoint payload,
//!   verify its CRC, and adopt it wholesale — the store's history
//!   restarts at the snapshot's sequence and every standing query is
//!   rebuilt (`resync` DELTA).
//!
//! Divergence is caught two ways: at the handshake (the primary
//! compares record CRCs at our announced position) and continuously
//! (periodic `DIGEST` probes; a mismatch at a matching sequence forces
//! a snapshot resync). Either way the response is the same typed
//! `force` re-SYNC — never a silent divergence.
//!
//! The thread exits when the server drains, dies, or is **promoted**:
//! from that moment this node owns its history and must not apply ships
//! from the old primary (the writer also refuses them by role).

use crate::protocol::{self, ReplMsg, MAX_LINE_BYTES, WIRE_VERSION};
use crate::server::{Job, Role, Shared};
use incgraph_durable::scan_records;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// How one connection attempt ended.
enum StreamEnd {
    /// Reconnect and tail again from wherever we are now.
    Reconnect,
    /// Reconnect and demand a snapshot (divergence detected).
    Resync,
    /// The thread is done (drain, kill, or promotion).
    Stop,
}

/// Entry point of the replica tail thread.
pub(crate) fn replica_loop(shared: Arc<Shared>, primary: SocketAddr) {
    let Some(graph) = shared.cfg.repl_graph.clone() else {
        return;
    };
    let mut force_snap = false;
    let mut backoff = Duration::from_millis(100);
    while shared.is_running() && shared.role() == Role::Replica {
        match run_once(&shared, &graph, primary, force_snap) {
            StreamEnd::Stop => break,
            StreamEnd::Resync => {
                incgraph_obs::counter("repl.resyncs", 1);
                force_snap = true;
                backoff = Duration::from_millis(100);
            }
            StreamEnd::Reconnect => {
                force_snap = false;
                backoff = (backoff * 2).min(Duration::from_secs(2));
            }
        }
        // Sleep in slices so drain/promotion is honored promptly.
        let mut slept = Duration::ZERO;
        while slept < backoff && shared.is_running() && shared.role() == Role::Replica {
            let slice = Duration::from_millis(50).min(backoff - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One connection attempt: handshake, bootstrap if told to, then tail
/// until the stream breaks or the server's life changes.
fn run_once(shared: &Arc<Shared>, graph: &str, primary: SocketAddr, force: bool) -> StreamEnd {
    let stream = match TcpStream::connect_timeout(&primary, Duration::from_secs(2)) {
        Ok(s) => s,
        Err(_) => return StreamEnd::Reconnect,
    };
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .is_err()
        || stream
            .set_write_timeout(Some(Duration::from_secs(5)))
            .is_err()
    {
        return StreamEnd::Reconnect;
    }
    let mut conn = LineConn::new(stream);
    if conn
        .send(&format!("HELLO {WIRE_VERSION} repl-tail"))
        .is_err()
    {
        return StreamEnd::Reconnect;
    }
    match conn.recv_blocking(Duration::from_secs(5)) {
        Some(l) if l.starts_with("WELCOME ") => {}
        _ => return StreamEnd::Reconnect,
    }
    // Announce our durable position.
    let (sync_line, our_last) = {
        let guard = shared.store();
        let Some(store) = guard.as_ref() else {
            return StreamEnd::Stop;
        };
        let Some(info) = store.repl_info(graph) else {
            return StreamEnd::Stop;
        };
        let crc = if info.last_seq > info.base_seq {
            store.record_crc(graph, info.last_seq)
        } else {
            None
        };
        (
            protocol::format_sync(
                graph,
                info.epoch,
                info.last_seq,
                crc,
                info.directed,
                info.nodes,
                force,
            ),
            info.last_seq,
        )
    };
    if conn.send(&sync_line).is_err() {
        return StreamEnd::Reconnect;
    }
    let reply = match conn.recv_blocking(Duration::from_secs(10)) {
        Some(l) => l,
        None => return StreamEnd::Reconnect,
    };
    let mut fields = reply.split_whitespace();
    match (fields.next(), fields.next(), fields.next()) {
        (Some("OK"), Some("SYNC"), Some("tail")) => {
            let Some(epoch) = fields.next().and_then(|t| t.parse::<u64>().ok()) else {
                return StreamEnd::Reconnect;
            };
            if adopt_epoch(shared, graph, epoch) == StreamOk::Broken {
                return StreamEnd::Stop;
            }
            tail(shared, graph, &mut conn, our_last)
        }
        (Some("OK"), Some("SYNC"), Some("snap")) => {
            let Some(epoch) = fields.next().and_then(|t| t.parse::<u64>().ok()) else {
                return StreamEnd::Reconnect;
            };
            match bootstrap(shared, graph, &mut conn, epoch) {
                Some(adopted_seq) => tail(shared, graph, &mut conn, adopted_seq),
                None => StreamEnd::Reconnect,
            }
        }
        (Some("ERR"), Some(code), _) => {
            if incgraph_obs::enabled() {
                incgraph_obs::event("repl.sync_refused", &reply);
            }
            match code {
                // The peer fenced itself against our epoch: we are the
                // newer history. Nothing to tail — wait for topology to
                // be fixed (that peer restarting as our replica).
                "stale-epoch" => StreamEnd::Reconnect,
                _ => StreamEnd::Reconnect,
            }
        }
        _ => StreamEnd::Reconnect,
    }
}

#[derive(PartialEq, Eq)]
enum StreamOk {
    Fine,
    Broken,
}

/// Adopts the primary's epoch on this replica (tail mode; snapshot mode
/// carries the epoch inside the adopt job).
fn adopt_epoch(shared: &Arc<Shared>, graph: &str, epoch: u64) -> StreamOk {
    let ours = {
        let guard = shared.store();
        match guard.as_ref().and_then(|s| s.repl_info(graph)) {
            Some(i) => i.epoch,
            None => return StreamOk::Broken,
        }
    };
    if epoch <= ours {
        return StreamOk::Fine;
    }
    let (done_tx, done_rx) = mpsc::channel();
    shared.pending.fetch_add(1, Ordering::Relaxed);
    if shared
        .jobs
        .send(Job::AdoptEpoch {
            graph: graph.to_string(),
            epoch,
            done: done_tx,
        })
        .is_err()
    {
        shared.pending.fetch_sub(1, Ordering::Relaxed);
        return StreamOk::Broken;
    }
    match done_rx.recv_timeout(Duration::from_secs(10)) {
        Ok(Ok(())) => StreamOk::Fine,
        _ => StreamOk::Broken,
    }
}

/// Reassembles and adopts a snapshot bootstrap. Returns the adopted
/// sequence, or `None` if the stream broke or the payload failed its
/// CRC.
fn bootstrap(shared: &Arc<Shared>, graph: &str, conn: &mut LineConn, epoch: u64) -> Option<u64> {
    let mut chunks: Vec<Option<Vec<u8>>> = Vec::new();
    let mut acks = Vec::new();
    let deadline = Duration::from_secs(60);
    loop {
        if !shared.is_running() || shared.role() != Role::Replica {
            return None;
        }
        let line = conn.recv_blocking(deadline)?;
        match protocol::parse_repl(&line) {
            Ok(Some(ReplMsg::Snap {
                index,
                total,
                chunk,
            })) => {
                if chunks.is_empty() {
                    chunks.resize(total, None);
                }
                if total != chunks.len() || index >= total {
                    return None;
                }
                chunks[index] = Some(chunk);
            }
            Ok(Some(ReplMsg::SnapAck {
                token,
                client_seq,
                wal_seq,
            })) => acks.push(crate::dedup::DedupEntry {
                wal_seq,
                client_seq,
                token,
            }),
            Ok(Some(ReplMsg::SnapEnd { seq, crc })) => {
                let mut payload = Vec::new();
                for c in chunks {
                    payload.extend_from_slice(&c?);
                }
                if incgraph_durable::crc::crc32(&payload) != crc {
                    incgraph_obs::counter("repl.snap_crc_failures", 1);
                    return None;
                }
                let (done_tx, done_rx) = mpsc::channel();
                shared.pending.fetch_add(1, Ordering::Relaxed);
                if shared
                    .jobs
                    .send(Job::ReplAdopt {
                        graph: graph.to_string(),
                        payload,
                        epoch,
                        acks,
                        done: done_tx,
                    })
                    .is_err()
                {
                    shared.pending.fetch_sub(1, Ordering::Relaxed);
                    return None;
                }
                let adopted = match done_rx.recv_timeout(Duration::from_secs(60)) {
                    Ok(Ok(covered)) => covered,
                    _ => return None,
                };
                if adopted != seq {
                    return None;
                }
                let _ = conn.send(&format!("WATERMARK {adopted}"));
                return Some(adopted);
            }
            Ok(Some(_)) | Ok(None) => return None, // stream out of shape
            Err(_) => return None,
        }
    }
}

/// The live tail: apply each `SHIP` through the writer, confirm with
/// `WATERMARK`, answer `DIGEST` probes, until the stream or this node's
/// role ends.
fn tail(shared: &Arc<Shared>, graph: &str, conn: &mut LineConn, mut applied: u64) -> StreamEnd {
    loop {
        if !shared.is_running() {
            return StreamEnd::Stop;
        }
        if shared.role() != Role::Replica {
            return StreamEnd::Stop;
        }
        let line = match conn.poll() {
            Ok(Some(l)) => l,
            Ok(None) => continue,
            Err(_) => return StreamEnd::Reconnect,
        };
        match protocol::parse_repl(&line) {
            Ok(Some(ReplMsg::Ship {
                seq,
                token,
                client_seq,
                record,
            })) => {
                // The record bytes are self-validating: the scan accepts
                // them only with an intact CRC and the exact sequence.
                let scan = scan_records(&record, seq);
                if scan.records.len() != 1 || scan.valid_len != record.len() {
                    incgraph_obs::counter("repl.ship_corrupt", 1);
                    return StreamEnd::Resync;
                }
                let batch = scan.records.into_iter().next().expect("one record").batch;
                let identity = token.map(|t| (t, client_seq));
                let (done_tx, done_rx) = mpsc::channel();
                shared.pending.fetch_add(1, Ordering::Relaxed);
                if shared
                    .jobs
                    .send(Job::ReplApply {
                        graph: graph.to_string(),
                        seq,
                        identity,
                        batch,
                        done: done_tx,
                    })
                    .is_err()
                {
                    shared.pending.fetch_sub(1, Ordering::Relaxed);
                    return StreamEnd::Stop;
                }
                match done_rx.recv_timeout(Duration::from_secs(30)) {
                    Ok(Ok(s)) => {
                        applied = s;
                        if conn.send(&format!("WATERMARK {s}")).is_err() {
                            return StreamEnd::Reconnect;
                        }
                    }
                    Ok(Err(e)) if e.starts_with("seq-gap") => return StreamEnd::Reconnect,
                    Ok(Err(e)) if e.starts_with("not-primary") => return StreamEnd::Stop,
                    Ok(Err(_)) => return StreamEnd::Reconnect,
                    Err(_) => return StreamEnd::Stop,
                }
            }
            Ok(Some(ReplMsg::Digest { seq, digest })) => {
                if seq != applied {
                    // Ships still in flight; the probe is for a future
                    // (or past) position — not comparable.
                    continue;
                }
                let ours = {
                    let guard = shared.store();
                    guard.as_ref().and_then(|s| s.repl_digest(graph))
                };
                match ours {
                    Some((our_seq, our_digest)) if our_seq == seq && our_digest != digest => {
                        incgraph_obs::counter("repl.divergence", 1);
                        if incgraph_obs::enabled() {
                            incgraph_obs::event(
                                "repl.divergence",
                                &format!("seq={seq} ours={our_digest} primary={digest}"),
                            );
                        }
                        return StreamEnd::Resync;
                    }
                    _ => {}
                }
            }
            Ok(Some(_)) => return StreamEnd::Reconnect, // SNAP outside bootstrap
            Ok(None) => {
                // OK/ERR/GOODBYE and friends. GOODBYE or ERR ends the
                // stream; anything else (PONG, BUSY) is noise.
                if line.starts_with("GOODBYE") || line.starts_with("ERR") {
                    return StreamEnd::Reconnect;
                }
            }
            Err(_) => return StreamEnd::Reconnect,
        }
    }
}

/// A line-framed connection with a polling read (the socket carries a
/// short read timeout so role/phase changes are honored promptly).
struct LineConn {
    reader: BufReader<TcpStream>,
    partial: Vec<u8>,
}

impl LineConn {
    fn new(stream: TcpStream) -> LineConn {
        LineConn {
            reader: BufReader::with_capacity(64 * 1024, stream),
            partial: Vec::new(),
        }
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        let s = self.reader.get_mut();
        s.write_all(line.as_bytes())?;
        s.write_all(b"\n")?;
        s.flush()
    }

    /// One poll: `Ok(None)` when the read deadline passed mid-line.
    fn poll(&mut self) -> io::Result<Option<String>> {
        loop {
            let (consumed, done) = {
                let avail = match self.reader.fill_buf() {
                    Ok(a) => a,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        return Ok(None)
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if avail.is_empty() {
                    return Err(io::ErrorKind::UnexpectedEof.into());
                }
                match avail.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        self.partial.extend_from_slice(&avail[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        self.partial.extend_from_slice(avail);
                        (avail.len(), false)
                    }
                }
            };
            self.reader.consume(consumed);
            if self.partial.len() > MAX_LINE_BYTES {
                return Err(io::ErrorKind::InvalidData.into());
            }
            if done {
                if self.partial.last() == Some(&b'\r') {
                    self.partial.pop();
                }
                let line = String::from_utf8_lossy(&self.partial).into_owned();
                self.partial.clear();
                return Ok(Some(line));
            }
        }
    }

    /// Polls until a full line arrives or `deadline` passes.
    fn recv_blocking(&mut self, deadline: Duration) -> Option<String> {
        let start = std::time::Instant::now();
        while start.elapsed() < deadline {
            match self.poll() {
                Ok(Some(l)) => return Some(l),
                Ok(None) => continue,
                Err(_) => return None,
            }
        }
        None
    }
}
