//! The shared store behind the service: named graphs, standing queries,
//! and the single-writer commit path with exactly-once client retries.
//!
//! One process hosts one [`Store`]. A store holds **named graphs**, each
//! either in-memory (created over the wire with `GRAPH`) or WAL-durable
//! (the store the server was launched on). All mutation — graph
//! creation, standing-query registration, `ΔG` application — happens on
//! the server's single writer thread holding `&mut Store`, which is what
//! makes the WAL commit protocol and the ack bookkeeping race-free by
//! construction; reads (`QUERY`, `STATUS`) take the shared lock.
//!
//! **Standing queries** are live [`Session`]s owned by the store. After
//! every committed batch the writer runs each affected query's
//! incremental update (the paper's `A_Δ`, bounded by `|AFF|`) and pushes
//! a `DELTA` carrying only the digest entries that changed — the wire
//! analogue of the incremental contract: notification cost tracks the
//! affected area, not `|G|`.
//!
//! **Exactly-once**: clients stamp each batch with a per-token sequence
//! number. The store acks `seq == last` as a duplicate (the retry case)
//! without re-applying, admits `seq == last + 1`, and rejects anything
//! else as a gap. For durable graphs the `(token, seq → WAL seq)` intent
//! is fsynced through [`DedupLog`] *before* the WAL commit (via
//! [`DurableSession::apply_with`]), so the ack table survives crashes
//! with the same once-only semantics — see the [`dedup`](crate::dedup)
//! module docs for the crash analysis.

use crate::dedup::{self, AckRecord, DedupEntry, DedupLog};
use crate::outbound::Outbound;
use crate::protocol::{format_view_rows, ErrCode, ViewRow};
use incgraph_algos::{IncrementalState, QueryClass, Session, SessionError};
use incgraph_dataflow::{DataflowError, DataflowSession, PlanContext};
use incgraph_durable::{
    encode_record, recover, scan_records, CrashPoint, DurableError, DurableOptions, DurableSession,
    WAL_NAME,
};
use incgraph_graph::{DynamicGraph, NodeId, UpdateBatch};
use incgraph_workloads::random_pattern;
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

/// Resource caps guarding the store against a hostile or buggy client.
#[derive(Clone, Debug)]
pub struct StoreLimits {
    /// Max unit updates per `UPDATE` batch.
    pub max_batch_units: usize,
    /// Max nodes per `GRAPH`.
    pub max_nodes: usize,
    /// Max named graphs in the store.
    pub max_graphs: usize,
    /// Max standing queries per session.
    pub max_queries_per_session: usize,
    /// Max changed entries enumerated in one `DELTA`; wider changes (and
    /// digest-length changes) send the `resync` form instead.
    pub max_delta_entries: usize,
}

impl Default for StoreLimits {
    fn default() -> Self {
        StoreLimits {
            max_batch_units: 4096,
            max_nodes: 1 << 20,
            max_graphs: 4096,
            max_queries_per_session: 64,
            max_delta_entries: 256,
        }
    }
}

/// A wire-typed refusal: the `ERR` code plus a human detail.
pub type WireError = (ErrCode, String);

/// How an `UPDATE` failed.
#[derive(Debug)]
pub enum UpdateError {
    /// Refused; reply `ERR` and keep the session.
    Wire(ErrCode, String),
    /// An armed [`CrashPoint`] fired mid-commit: the store is dead and
    /// the server must simulate process death (no replies, no drain).
    Crashed(CrashPoint),
}

/// A successful `UPDATE`: what the `ACK` line carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ack {
    /// Echo of the client sequence.
    pub client_seq: u64,
    /// Store sequence the batch committed under (WAL sequence for
    /// durable graphs).
    pub wal_seq: u64,
    /// Unit updates in the batch.
    pub units: usize,
    /// `true` when this acked a retry without re-applying.
    pub dup: bool,
}

/// The per-class states a durable store tracks from creation, in
/// [`QueryClass::ALL`] order, skipping the undirected-only classes on
/// directed graphs. Shared with the chaos harness so its full-replay
/// reference builds *identical* states (same pattern seed, same source)
/// and essence comparison is byte-exact.
pub fn standing_states(g: &DynamicGraph, pattern_seed: u64) -> Vec<Box<dyn IncrementalState>> {
    QueryClass::ALL
        .into_iter()
        .filter(|c| !(c.requires_undirected() && g.is_directed()))
        .map(|c| {
            let mut b = Session::builder(c);
            if c == QueryClass::Sim {
                b = b.pattern(random_pattern(g, 4, 6, pattern_seed));
            }
            Box::new(b.build(g).expect("direction-filtered class builds"))
                as Box<dyn IncrementalState>
        })
        .collect()
}

/// One registered standing query: a live session plus the digest it last
/// notified, and the owner's outbound queue. `source`/`pattern_seed`
/// are kept so the query can be rebuilt from scratch when a replica
/// adopts a shipped snapshot (the old incremental state describes a
/// world that no longer exists).
struct StandingQuery {
    class: QueryClass,
    session: Session,
    digest: Vec<u64>,
    source: NodeId,
    pattern_seed: u64,
    out: Arc<Outbound>,
}

/// One registered standing *dataflow* plan (`PLAN`): a live
/// [`DataflowSession`] plus the canonical plan text and pattern seed it
/// can be rebuilt from when a replica adopts a shipped snapshot.
struct StandingPlan {
    session: DataflowSession,
    text: String,
    pattern_seed: u64,
    out: Arc<Outbound>,
}

// One Backend exists per named graph for the life of the process, so
// the Memory/Durable size asymmetry never multiplies across a
// collection — boxing would only add a pointer chase to the hot path.
#[allow(clippy::large_enum_variant)]
enum Backend {
    /// Wire-created, lives and dies with the process.
    Memory { graph: DynamicGraph, seq: u64 },
    /// WAL-durable with an exactly-once intent log.
    Durable {
        session: DurableSession,
        dedup: DedupLog,
    },
}

impl Backend {
    fn graph(&self) -> &DynamicGraph {
        match self {
            Backend::Memory { graph, .. } => graph,
            Backend::Durable { session, .. } => session.graph(),
        }
    }

    fn seq(&self) -> u64 {
        match self {
            Backend::Memory { seq, .. } => *seq,
            Backend::Durable { session, .. } => session.last_seq(),
        }
    }
}

struct GraphEntry {
    backend: Backend,
    /// token → last acked batch.
    acks: HashMap<String, AckRecord>,
    /// `(session id, qid)` → standing query.
    queries: BTreeMap<(u64, String), StandingQuery>,
    /// `(session id, qid)` → standing dataflow plan. Plans share the
    /// per-session query cap and the qid namespace with `queries`.
    plans: BTreeMap<(u64, String), StandingPlan>,
}

/// The service's shared state. See the module docs.
pub struct Store {
    graphs: BTreeMap<String, GraphEntry>,
    limits: StoreLimits,
    /// Set on the first real WAL I/O failure; durable writes are refused
    /// (`ERR readonly`) for the life of the process while reads keep
    /// working. Process-lifetime by design: it also guarantees an
    /// orphaned intent's WAL sequence is never reused (see [`DedupLog`]).
    degraded: bool,
}

impl Store {
    /// An empty store holding only wire-created in-memory graphs.
    pub fn new(limits: StoreLimits) -> Self {
        Store {
            graphs: BTreeMap::new(),
            limits,
            degraded: false,
        }
    }

    /// Opens (or initializes) a durable graph named `name` from `dir` and
    /// mounts it into a fresh store. An existing store is recovered —
    /// `nodes`/`directed` then describe the *expected* shape and are only
    /// used when initializing. Tracks [`standing_states`] inside the
    /// durable session so checkpoints and recovery carry all per-class
    /// essences.
    pub fn open_durable(
        dir: &Path,
        name: &str,
        nodes: usize,
        directed: bool,
        options: DurableOptions,
        limits: StoreLimits,
    ) -> Result<Self, DurableError> {
        let manifest = dir.join("MANIFEST");
        let session = if manifest.exists() {
            let (session, report) = recover(dir, options)?;
            if incgraph_obs::enabled() {
                incgraph_obs::event(
                    "service.recovered",
                    &format!(
                        "graph={name} seq={} replayed={}",
                        session.last_seq(),
                        report.wal_records_replayed
                    ),
                );
            }
            session
        } else {
            let graph = DynamicGraph::new(directed, nodes);
            let states = standing_states(&graph, DURABLE_PATTERN_SEED);
            DurableSession::create(dir, graph, states, options)?
        };
        let (dedup, index) = DedupLog::open(dir, session.last_seq())?;
        let mut store = Store::new(limits);
        store.graphs.insert(
            name.to_string(),
            GraphEntry {
                backend: Backend::Durable { session, dedup },
                acks: index.into_iter().collect(),
                queries: BTreeMap::new(),
                plans: BTreeMap::new(),
            },
        );
        Ok(store)
    }

    /// Creates the in-memory graph `name`, or attaches to an existing
    /// graph of the **same shape** (idempotent, so clients can `GRAPH`
    /// unconditionally after reconnecting).
    pub fn open_graph(
        &mut self,
        name: &str,
        nodes: usize,
        directed: bool,
    ) -> Result<(), WireError> {
        if let Some(entry) = self.graphs.get(name) {
            let g = entry.backend.graph();
            return if g.node_count() == nodes && g.is_directed() == directed {
                Ok(())
            } else {
                Err((
                    ErrCode::GraphMismatch,
                    format!(
                        "{name} exists with {} nodes ({})",
                        g.node_count(),
                        if g.is_directed() {
                            "directed"
                        } else {
                            "undirected"
                        }
                    ),
                ))
            };
        }
        if nodes == 0 || nodes > self.limits.max_nodes {
            return Err((
                ErrCode::TooLarge,
                format!("nodes must be in 1..={}", self.limits.max_nodes),
            ));
        }
        if self.graphs.len() >= self.limits.max_graphs {
            return Err((
                ErrCode::TooLarge,
                format!("store caps at {} graphs", self.limits.max_graphs),
            ));
        }
        self.graphs.insert(
            name.to_string(),
            GraphEntry {
                backend: Backend::Memory {
                    graph: DynamicGraph::new(directed, nodes),
                    seq: 0,
                },
                acks: HashMap::new(),
                queries: BTreeMap::new(),
                plans: BTreeMap::new(),
            },
        );
        incgraph_obs::counter("service.graphs_created", 1);
        Ok(())
    }

    /// Registers a standing query for session `sid`, running the batch
    /// fixpoint now. Returns the digest length (what a `RESULT` for this
    /// query will carry).
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        sid: u64,
        qid: &str,
        graph: &str,
        class_name: &str,
        source: NodeId,
        pattern_seed: u64,
        out: Arc<Outbound>,
    ) -> Result<usize, WireError> {
        let Some(class) = QueryClass::from_name(class_name) else {
            return Err((
                ErrCode::UnknownClass,
                format!("{class_name} is not one of the seven classes"),
            ));
        };
        let Some(entry) = self.graphs.get_mut(graph) else {
            return Err((ErrCode::UnknownGraph, format!("no graph {graph}")));
        };
        let key = (sid, qid.to_string());
        if entry.queries.contains_key(&key) || entry.plans.contains_key(&key) {
            return Err((
                ErrCode::DupQuery,
                format!("{qid} is already registered on this session"),
            ));
        }
        let owned = entry.queries.keys().filter(|(s, _)| *s == sid).count()
            + entry.plans.keys().filter(|(s, _)| *s == sid).count();
        if owned >= self.limits.max_queries_per_session {
            return Err((
                ErrCode::TooLarge,
                format!(
                    "session caps at {} standing queries",
                    self.limits.max_queries_per_session
                ),
            ));
        }
        let g = entry.backend.graph();
        if source as usize >= g.node_count() {
            return Err((
                ErrCode::BadCommand,
                format!("source {source} out of range for {graph}"),
            ));
        }
        let _cls = incgraph_obs::class_scope(class.name());
        let _span = incgraph_obs::span("service.register");
        let mut builder = Session::builder(class);
        if class.source_rooted() {
            builder = builder.source(source);
        }
        if class == QueryClass::Sim {
            builder = builder.pattern(random_pattern(g, 4, 6, pattern_seed));
        }
        let session = match builder.build(g) {
            Ok(s) => s,
            Err(SessionError::RequiresUndirected(c)) => {
                return Err((
                    ErrCode::UndirectedRequired,
                    format!("{} needs an undirected graph", c.name()),
                ))
            }
            Err(e) => return Err((ErrCode::BadCommand, e.to_string())),
        };
        let digest = session.digest(g);
        let len = digest.len();
        entry.queries.insert(
            key,
            StandingQuery {
                class,
                session,
                digest,
                source,
                pattern_seed,
                out,
            },
        );
        incgraph_obs::counter("service.registers", 1);
        Ok(len)
    }

    /// Unregisters one standing query of session `sid`.
    pub fn unregister(&mut self, sid: u64, qid: &str) -> Result<(), WireError> {
        for entry in self.graphs.values_mut() {
            if entry.queries.remove(&(sid, qid.to_string())).is_some() {
                return Ok(());
            }
        }
        Err((ErrCode::UnknownQuery, format!("no query {qid}")))
    }

    /// Registers a standing dataflow plan (`PLAN`) for session `sid`:
    /// parses the `incgraph-plan/1` text, builds the member class
    /// sessions, and primes the view. Returns the initial view row count
    /// (what `PLANQ` will enumerate).
    pub fn register_plan(
        &mut self,
        sid: u64,
        qid: &str,
        graph: &str,
        pattern_seed: u64,
        text: &str,
        out: Arc<Outbound>,
    ) -> Result<usize, WireError> {
        let Some(entry) = self.graphs.get_mut(graph) else {
            return Err((ErrCode::UnknownGraph, format!("no graph {graph}")));
        };
        let key = (sid, qid.to_string());
        if entry.queries.contains_key(&key) || entry.plans.contains_key(&key) {
            return Err((
                ErrCode::DupQuery,
                format!("{qid} is already registered on this session"),
            ));
        }
        let owned = entry.queries.keys().filter(|(s, _)| *s == sid).count()
            + entry.plans.keys().filter(|(s, _)| *s == sid).count();
        if owned >= self.limits.max_queries_per_session {
            return Err((
                ErrCode::TooLarge,
                format!(
                    "session caps at {} standing queries",
                    self.limits.max_queries_per_session
                ),
            ));
        }
        let g = entry.backend.graph();
        let _span = incgraph_obs::span("service.plan");
        let ctx = PlanContext {
            pattern: Some(random_pattern(g, 4, 6, pattern_seed)),
            threads: 0,
        };
        let session = match DataflowSession::from_text(text, g, &ctx) {
            Ok(s) => s,
            Err(DataflowError::Session(SessionError::RequiresUndirected(c))) => {
                return Err((
                    ErrCode::UndirectedRequired,
                    format!("{} needs an undirected graph", c.name()),
                ))
            }
            Err(e) => return Err((ErrCode::BadPlan, e.to_string())),
        };
        let rows = session.view().len();
        // Store the canonical form so replica rebuilds and STATUS agree
        // with what the parser admitted, not the client's spelling.
        let canonical = session.plan().display();
        entry.plans.insert(
            key,
            StandingPlan {
                session,
                text: canonical,
                pattern_seed,
                out,
            },
        );
        incgraph_obs::counter("service.plans", 1);
        Ok(rows)
    }

    /// Unregisters one standing plan of session `sid`.
    pub fn unregister_plan(&mut self, sid: u64, qid: &str) -> Result<(), WireError> {
        for entry in self.graphs.values_mut() {
            if entry.plans.remove(&(sid, qid.to_string())).is_some() {
                return Ok(());
            }
        }
        Err((ErrCode::UnknownQuery, format!("no plan {qid}")))
    }

    /// Reads a standing plan's materialized view with the sequence it
    /// reflects (`PLANQ`, over the shared lock).
    pub fn plan_view(&self, sid: u64, qid: &str) -> Option<(Vec<ViewRow>, u64)> {
        self.graphs.values().find_map(|entry| {
            entry
                .plans
                .get(&(sid, qid.to_string()))
                .map(|p| (p.session.view(), entry.backend.seq()))
        })
    }

    /// Drops every standing query and plan of a disconnected session;
    /// returns how many were removed.
    pub fn drop_session(&mut self, sid: u64) -> usize {
        let mut removed = 0;
        for entry in self.graphs.values_mut() {
            let before = entry.queries.len() + entry.plans.len();
            entry.queries.retain(|(s, _), _| *s != sid);
            entry.plans.retain(|(s, _), _| *s != sid);
            removed += before - entry.queries.len() - entry.plans.len();
        }
        removed
    }

    /// Reads a standing query's current digest with the sequence it
    /// reflects (`QUERY`, over the shared lock).
    pub fn query(&self, sid: u64, qid: &str) -> Option<(Vec<u64>, u64)> {
        self.graphs.values().find_map(|entry| {
            entry
                .queries
                .get(&(sid, qid.to_string()))
                .map(|q| (q.digest.clone(), entry.backend.seq()))
        })
    }

    /// Applies one client batch: dedup/gap check, commit (WAL-durable
    /// where the graph is), then incremental notification of every
    /// standing query on the graph. See the module docs for the
    /// exactly-once protocol.
    pub fn apply_update(
        &mut self,
        graph: &str,
        token: &str,
        client_seq: u64,
        batch: &UpdateBatch,
    ) -> Result<Ack, UpdateError> {
        let (ack, applied) = self.apply_update_deferred(graph, token, client_seq, batch)?;
        if let Some(applied) = applied {
            self.notify_queries(graph, std::slice::from_ref(&applied));
        }
        Ok(ack)
    }

    /// The commit half of [`apply_update`]: dedup/gap check, graph
    /// mutation, WAL + dedup-intent fsync, ack bookkeeping — everything
    /// the exactly-once protocol depends on — but **no** standing-query
    /// notification. The caller owns the returned effective ΔG and must
    /// eventually hand it (alone or merged with later batches) to
    /// [`notify_queries`](Self::notify_queries). Returns `None` ops for
    /// a deduplicated retry, which re-acks without re-applying.
    ///
    /// This split is the writer's micro-batch coalescing hook: acks stay
    /// per-batch (a client's durability guarantee must never wait on a
    /// flush window), while the per-query incremental fixpoint and DELTA
    /// push — the part whose cost scales with standing-query count — can
    /// run once per flush over the coalesced net ΔG.
    pub fn apply_update_deferred(
        &mut self,
        graph: &str,
        token: &str,
        client_seq: u64,
        batch: &UpdateBatch,
    ) -> Result<(Ack, Option<incgraph_graph::AppliedBatch>), UpdateError> {
        let wire = |c: ErrCode, d: String| UpdateError::Wire(c, d);
        let Some(entry) = self.graphs.get_mut(graph) else {
            return Err(wire(ErrCode::UnknownGraph, format!("no graph {graph}")));
        };
        if batch.len() > self.limits.max_batch_units {
            return Err(wire(
                ErrCode::TooLarge,
                format!("batch caps at {} units", self.limits.max_batch_units),
            ));
        }
        let last = entry.acks.get(token).copied().unwrap_or_default();
        if client_seq == last.client_seq {
            // The retry of an acked batch: re-ack, never re-apply.
            incgraph_obs::counter("service.dedup_hits", 1);
            return Ok((
                Ack {
                    client_seq,
                    wal_seq: last.wal_seq,
                    units: batch.len(),
                    dup: true,
                },
                None,
            ));
        }
        if client_seq != last.client_seq + 1 {
            return Err(wire(
                ErrCode::SeqGap,
                format!(
                    "expected seq {} or {}",
                    last.client_seq,
                    last.client_seq + 1
                ),
            ));
        }
        let _span = incgraph_obs::span("service.apply");
        let (wal_seq, applied) = match &mut entry.backend {
            Backend::Memory { graph: g, seq } => {
                let applied = batch
                    .apply_validated(g)
                    .map_err(|e| wire(ErrCode::InvalidBatch, e.to_string()))?;
                *seq += 1;
                (*seq, applied)
            }
            Backend::Durable { session, dedup } => {
                if self.degraded {
                    return Err(wire(
                        ErrCode::ReadOnly,
                        "store is in degraded read-only mode after a WAL failure".into(),
                    ));
                }
                match session.apply_with(batch, |wal_seq| dedup.append(token, client_seq, wal_seq))
                {
                    Ok((_, applied)) => (session.last_seq(), applied),
                    Err(DurableError::InvalidBatch(e)) => {
                        return Err(wire(ErrCode::InvalidBatch, e.to_string()))
                    }
                    Err(DurableError::InjectedCrash(p)) => return Err(UpdateError::Crashed(p)),
                    Err(e) => {
                        // Real I/O or corruption: the in-memory graph was
                        // rolled back, but trust in the log is gone —
                        // degrade to read-only for the process lifetime.
                        self.degraded = true;
                        if incgraph_obs::enabled() {
                            incgraph_obs::event("service.degraded", &e.to_string());
                        }
                        return Err(wire(
                            ErrCode::Store,
                            format!("{e}; store degraded to read-only"),
                        ));
                    }
                }
            }
        };
        entry.acks.insert(
            token.to_string(),
            AckRecord {
                client_seq,
                wal_seq,
            },
        );
        incgraph_obs::counter("service.batches", 1);
        Ok((
            Ack {
                client_seq,
                wal_seq,
                units: batch.len(),
                dup: false,
            },
            Some(applied),
        ))
    }

    /// The notification half of [`apply_update`]: runs every standing
    /// query's incremental update over the (coalesced) ΔG of `batches`
    /// and pushes one `DELTA` per query that changed, stamped with the
    /// graph's current committed sequence. `batches` must be the
    /// *effective* applied ops of consecutive committed batches, oldest
    /// first, with none skipped — the net batch the
    /// [`Coalescer`](incgraph_core::Coalescer) builds from them is
    /// equivalent by construction, so each query does one bounded
    /// incremental step instead of one per batch.
    pub fn notify_queries(&mut self, graph: &str, batches: &[incgraph_graph::AppliedBatch]) {
        let Some(entry) = self.graphs.get_mut(graph) else {
            return;
        };
        if batches.is_empty() || (entry.queries.is_empty() && entry.plans.is_empty()) {
            return;
        }
        let _notify = incgraph_obs::span("service.notify");
        let g = match &entry.backend {
            Backend::Memory { graph, .. } => graph,
            Backend::Durable { session, .. } => session.graph(),
        };
        let wal_seq = match &entry.backend {
            Backend::Memory { seq, .. } => *seq,
            Backend::Durable { session, .. } => session.last_seq(),
        };
        let net;
        let applied = if batches.len() == 1 {
            &batches[0]
        } else {
            net = incgraph_core::coalesce_batches(g.is_directed(), batches);
            incgraph_obs::observe("service.coalesced_ops", net.len() as u64);
            &net
        };
        let max_entries = self.limits.max_delta_entries;
        for ((_, qid), q) in entry.queries.iter_mut() {
            let _cls = incgraph_obs::class_scope(q.class.name());
            // The session's typed delta replaces the historical
            // digest-zip: same wire bytes, O(|Δoutput|) instead of
            // O(|Ψ|) per query per commit.
            let delta = q.session.update_guarded(g, applied).delta;
            if delta.resync.is_none() && delta.changes.is_empty() {
                continue;
            }
            let len = q.session.output().digest_len();
            if delta.resync.is_some() || delta.changes.len() > max_entries {
                // Digest geometry changed (BC's bridge list can grow) or
                // the diff is too large to ship: positional diffs are
                // meaningless or uneconomical, ask for a re-QUERY.
                q.out.push_delta(qid, wal_seq, None, len);
            } else {
                let changed: BTreeMap<u32, u64> =
                    delta.changes.iter().map(|c| (c.index, c.new)).collect();
                incgraph_obs::observe("service.delta_entries", changed.len() as u64);
                q.out.push_delta(qid, wal_seq, Some(changed), len);
            }
            q.digest = q.session.digest(g);
        }
        // Standing plans tick after the class queries: one DAG
        // propagation per plan, notified as a `VDELTA` of weighted view
        // rows (empty ticks stay silent, like unchanged digests).
        for ((_, qid), p) in entry.plans.iter_mut() {
            let delta = p.session.apply(g, applied);
            if delta.is_empty() {
                continue;
            }
            incgraph_obs::observe("service.vdelta_rows", delta.len() as u64);
            p.out
                .push_line(format_view_rows("VDELTA", qid, wal_seq, delta.rows()));
        }
    }

    /// Whether durable writes are refused.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Checkpoints every durable graph (graceful shutdown). Best-effort:
    /// failures degrade the store but the drain continues.
    pub fn checkpoint_all(&mut self) {
        for entry in self.graphs.values_mut() {
            if let Backend::Durable { session, .. } = &mut entry.backend {
                if let Err(e) = session.checkpoint() {
                    self.degraded = true;
                    if incgraph_obs::enabled() {
                        incgraph_obs::event("service.degraded", &e.to_string());
                    }
                }
            }
        }
    }

    /// `(graphs, standing queries)` for `STATUS`.
    pub fn counts(&self) -> (usize, usize) {
        (
            self.graphs.len(),
            self.graphs
                .values()
                .map(|e| e.queries.len() + e.plans.len())
                .sum(),
        )
    }

    /// Arms a one-shot crash injection on the named durable graph (the
    /// chaos harness's in-process "kill -9 mid-commit").
    pub fn arm_crash(&mut self, graph: &str, point: Option<CrashPoint>) -> bool {
        match self.graphs.get_mut(graph) {
            Some(GraphEntry {
                backend: Backend::Durable { session, .. },
                ..
            }) => {
                session.arm_crash(point);
                true
            }
            _ => false,
        }
    }

    /// The store's resource caps.
    pub fn limits(&self) -> &StoreLimits {
        &self.limits
    }

    // --- replication -----------------------------------------------------

    /// Replication-facing view of the durable graph `name`; `None` for
    /// unknown or non-durable graphs.
    pub fn repl_info(&self, graph: &str) -> Option<ReplInfo> {
        let entry = self.graphs.get(graph)?;
        let Backend::Durable { session, .. } = &entry.backend else {
            return None;
        };
        Some(ReplInfo {
            epoch: session.epoch(),
            base_seq: session.base_seq(),
            last_seq: session.last_seq(),
            directed: session.graph().is_directed(),
            nodes: session.graph().node_count(),
        })
    }

    /// `(last_seq, digest)` of the durable graph — the divergence probe's
    /// payload on both ends.
    pub fn repl_digest(&self, graph: &str) -> Option<(u64, String)> {
        let entry = self.graphs.get(graph)?;
        let Backend::Durable { session, .. } = &entry.backend else {
            return None;
        };
        Some((session.last_seq(), session.digest()))
    }

    /// CRC of the WAL record at `seq` (recomputed from the scanned
    /// batch), or `None` when `seq` precedes the retained tail or was
    /// never logged. Both the replica (announcing its position in `SYNC`)
    /// and the primary (validating that announcement) use this.
    pub fn record_crc(&self, graph: &str, seq: u64) -> Option<u32> {
        let entry = self.graphs.get(graph)?;
        let Backend::Durable { session, .. } = &entry.backend else {
            return None;
        };
        if seq <= session.base_seq() || seq > session.last_seq() {
            return None;
        }
        let body = std::fs::read(session.dir().join(WAL_NAME)).ok()?;
        let body = body.get(8..)?;
        let scan = scan_records(body, session.base_seq() + 1);
        scan.records
            .iter()
            .find(|r| r.seq == seq)
            .map(|r| record_crc_of(r.seq, &r.batch))
    }

    /// Promotion's commit point: durably bumps the durable graph's epoch.
    pub fn bump_epoch(&mut self, graph: &str) -> Result<u64, WireError> {
        let Some(entry) = self.graphs.get_mut(graph) else {
            return Err((ErrCode::UnknownGraph, format!("no graph {graph}")));
        };
        let Backend::Durable { session, .. } = &mut entry.backend else {
            return Err((ErrCode::BadCommand, format!("{graph} is not durable")));
        };
        session
            .bump_epoch()
            .map_err(|e| (ErrCode::Store, e.to_string()))
    }

    /// Adopts a primary's (higher) epoch on a tailing replica.
    pub fn adopt_epoch(&mut self, graph: &str, epoch: u64) -> Result<(), WireError> {
        let Some(entry) = self.graphs.get_mut(graph) else {
            return Err((ErrCode::UnknownGraph, format!("no graph {graph}")));
        };
        let Backend::Durable { session, .. } = &mut entry.backend else {
            return Err((ErrCode::BadCommand, format!("{graph} is not durable")));
        };
        session
            .adopt_epoch(epoch)
            .map_err(|e| (ErrCode::Store, e.to_string()))
    }

    /// Encodes the durable graph's live world as a bootstrap snapshot:
    /// the checkpoint payload covering `last_seq` plus the current ack
    /// table (latest entry per token, WAL order) for `SNAPACK` shipping.
    pub fn encode_snapshot(&self, graph: &str) -> Option<(u64, Vec<u8>, Vec<DedupEntry>)> {
        let entry = self.graphs.get(graph)?;
        let Backend::Durable { session, .. } = &entry.backend else {
            return None;
        };
        let mut acks: Vec<DedupEntry> = entry
            .acks
            .iter()
            .map(|(token, rec)| DedupEntry {
                wal_seq: rec.wal_seq,
                client_seq: rec.client_seq,
                token: token.clone(),
            })
            .collect();
        acks.sort_by_key(|e| e.wal_seq);
        Some((session.last_seq(), session.encode_snapshot(), acks))
    }

    /// Reads the catch-up tail for a replica at `from_seq`: every
    /// retained WAL record with `seq > from_seq` (raw record bytes, ready
    /// for `SHIP`), each joined with the client identity its dedup intent
    /// recorded, plus the CRC of the record *at* `from_seq` so the caller
    /// can validate the replica's announced position.
    pub fn wal_catchup(
        &self,
        graph: &str,
        from_seq: u64,
    ) -> Result<(Option<u32>, Vec<ShipRecord>), WireError> {
        let Some(entry) = self.graphs.get(graph) else {
            return Err((ErrCode::UnknownGraph, format!("no graph {graph}")));
        };
        let Backend::Durable { session, .. } = &entry.backend else {
            return Err((ErrCode::BadCommand, format!("{graph} is not durable")));
        };
        let bytes = std::fs::read(session.dir().join(WAL_NAME))
            .map_err(|e| (ErrCode::Store, format!("wal read: {e}")))?;
        let body = bytes.get(8..).unwrap_or(&[]);
        let scan = scan_records(body, session.base_seq() + 1);
        let identities: HashMap<u64, (String, u64)> =
            dedup::scan_entries(session.dir(), session.last_seq())
                .map_err(|e| (ErrCode::Store, format!("dedup scan: {e}")))?
                .into_iter()
                .map(|e| (e.wal_seq, (e.token, e.client_seq)))
                .collect();
        let mut crc_at_from = None;
        let mut ships = Vec::new();
        for r in &scan.records {
            if r.seq == from_seq {
                crc_at_from = Some(record_crc_of(r.seq, &r.batch));
            } else if r.seq > from_seq {
                ships.push(ShipRecord {
                    seq: r.seq,
                    identity: identities.get(&r.seq).cloned(),
                    record: encode_record(r.seq, &r.batch),
                });
            }
        }
        Ok((crc_at_from, ships))
    }

    /// Applies one shipped record on a replica, through the same
    /// validated/WAL-fsynced path client updates take. `seq` must be
    /// exactly the next expected sequence (ships arrive in order; a gap
    /// means the stream is broken and the replica must resync). The
    /// shipped client identity lands in the dedup log and ack table so
    /// client retries stay exactly-once across failover.
    pub fn apply_replicated(
        &mut self,
        graph: &str,
        seq: u64,
        identity: Option<(&str, u64)>,
        batch: &UpdateBatch,
    ) -> Result<incgraph_graph::AppliedBatch, UpdateError> {
        let wire = |c: ErrCode, d: String| UpdateError::Wire(c, d);
        let Some(entry) = self.graphs.get_mut(graph) else {
            return Err(wire(ErrCode::UnknownGraph, format!("no graph {graph}")));
        };
        let Backend::Durable { session, dedup } = &mut entry.backend else {
            return Err(wire(ErrCode::BadCommand, format!("{graph} is not durable")));
        };
        if self.degraded {
            return Err(wire(
                ErrCode::ReadOnly,
                "store is in degraded read-only mode after a WAL failure".into(),
            ));
        }
        if seq != session.last_seq() + 1 {
            return Err(wire(
                ErrCode::SeqGap,
                format!("replica at {}, ship at {seq}", session.last_seq()),
            ));
        }
        let _span = incgraph_obs::span("repl.apply");
        match session.apply_with(batch, |wal_seq| match identity {
            Some((token, client_seq)) => dedup.append(token, client_seq, wal_seq),
            None => Ok(()),
        }) {
            Ok((_, applied)) => {
                if let Some((token, client_seq)) = identity {
                    entry.acks.insert(
                        token.to_string(),
                        AckRecord {
                            client_seq,
                            wal_seq: seq,
                        },
                    );
                }
                incgraph_obs::counter("repl.ship_records", 1);
                Ok(applied)
            }
            Err(DurableError::InvalidBatch(e)) => Err(wire(ErrCode::InvalidBatch, e.to_string())),
            Err(DurableError::InjectedCrash(p)) => Err(UpdateError::Crashed(p)),
            Err(e) => {
                self.degraded = true;
                if incgraph_obs::enabled() {
                    incgraph_obs::event("service.degraded", &e.to_string());
                }
                Err(wire(
                    ErrCode::Store,
                    format!("{e}; store degraded to read-only"),
                ))
            }
        }
    }

    /// Replaces the durable graph's world with a shipped snapshot
    /// (bootstrap or divergence resync): installs the payload as the new
    /// base, adopts `epoch`, resets the dedup log and ack table to the
    /// shipped entries, and rebuilds every standing query from scratch
    /// over the new graph, pushing each a `resync` DELTA.
    ///
    /// On failure the graph is unmounted and the store degraded — the
    /// half-installed world must not serve.
    pub fn adopt_snapshot(
        &mut self,
        graph: &str,
        payload: &[u8],
        epoch: u64,
        acks: &[DedupEntry],
    ) -> Result<u64, WireError> {
        let Some(entry) = self.graphs.get_mut(graph) else {
            return Err((ErrCode::UnknownGraph, format!("no graph {graph}")));
        };
        if !matches!(entry.backend, Backend::Durable { .. }) {
            return Err((ErrCode::BadCommand, format!("{graph} is not durable")));
        }
        let mut entry = self.graphs.remove(graph).expect("checked above");
        let Backend::Durable { session, mut dedup } = entry.backend else {
            unreachable!("checked above");
        };
        let mut sorted: Vec<DedupEntry> = acks.to_vec();
        sorted.sort_by_key(|e| e.wal_seq);
        let session = match session
            .install_snapshot(payload, epoch)
            .and_then(|s| dedup.reset(&sorted).map(|()| s))
        {
            Ok(s) => s,
            Err(e) => {
                // The old session was consumed; there is no world to go
                // back to. Leave the graph unmounted and refuse writes.
                self.degraded = true;
                if incgraph_obs::enabled() {
                    incgraph_obs::event("service.degraded", &e.to_string());
                }
                return Err((ErrCode::Store, format!("snapshot install failed: {e}")));
            }
        };
        let covered = session.last_seq();
        entry.acks = sorted
            .into_iter()
            .map(|e| {
                (
                    e.token,
                    AckRecord {
                        client_seq: e.client_seq,
                        wal_seq: e.wal_seq,
                    },
                )
            })
            .collect();
        // Rebuild standing queries over the new world; their old
        // incremental states describe dead history.
        let g = session.graph();
        for ((_, qid), q) in entry.queries.iter_mut() {
            let mut builder = Session::builder(q.class);
            if q.class.source_rooted() {
                builder = builder.source(q.source);
            }
            if q.class == QueryClass::Sim {
                builder = builder.pattern(random_pattern(g, 4, 6, q.pattern_seed));
            }
            if let Ok(s) = builder.build(g) {
                q.digest = s.digest(g);
                q.session = s;
                q.out.push_delta(qid, covered, None, q.digest.len());
            }
        }
        // Standing plans likewise: rebuild from the canonical text and
        // push the full view so the client resyncs.
        for ((_, qid), p) in entry.plans.iter_mut() {
            let ctx = PlanContext {
                pattern: Some(random_pattern(g, 4, 6, p.pattern_seed)),
                threads: 0,
            };
            if let Ok(s) = DataflowSession::from_text(&p.text, g, &ctx) {
                p.out
                    .push_line(format_view_rows("VIEW", qid, covered, &s.view()));
                p.session = s;
            }
        }
        entry.backend = Backend::Durable { session, dedup };
        self.graphs.insert(graph.to_string(), entry);
        Ok(covered)
    }
}

/// Replication-facing facts about a durable graph.
#[derive(Clone, Copy, Debug)]
pub struct ReplInfo {
    /// Durable replication epoch.
    pub epoch: u64,
    /// Sequence the retained WAL tail starts after.
    pub base_seq: u64,
    /// Last committed sequence.
    pub last_seq: u64,
    /// Graph directedness (shape validation in `SYNC`).
    pub directed: bool,
    /// Graph node count (shape validation in `SYNC`).
    pub nodes: usize,
}

/// One catch-up record ready to ship: raw WAL record bytes plus the
/// client identity its dedup intent recorded (if any).
#[derive(Clone, Debug)]
pub struct ShipRecord {
    /// WAL sequence.
    pub seq: u64,
    /// `(token, client_seq)` the batch committed under.
    pub identity: Option<(String, u64)>,
    /// Full encoded WAL record (self-validating).
    pub record: Vec<u8>,
}

/// CRC of the WAL record `(seq, batch)` as stored on disk — recomputed
/// through [`encode_record`], whose layout places it at bytes 12..16.
pub fn record_crc_of(seq: u64, batch: &UpdateBatch) -> u32 {
    let bytes = encode_record(seq, batch);
    u32::from_le_bytes(bytes[12..16].try_into().expect("record header"))
}

/// Pattern seed the durable store's built-in states use; the chaos
/// harness must build its reference with the same seed.
pub const DURABLE_PATTERN_SEED: u64 = 0x1A2B3C4D;
