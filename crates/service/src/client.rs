//! A small blocking client for `incgraph-wire/1`.
//!
//! Used by the CLI (`incgraph serve`'s smoke path and `incgraph ctl`),
//! the load harness, and the chaos tests. It is deliberately simple:
//! one socket, synchronous request/reply, with asynchronous `DELTA`
//! notifications buffered to the side ([`Client::take_deltas`] /
//! [`Client::poll_delta`]).

use crate::protocol::{self, Delta, ViewRow, ViewRows, MAX_LINE_BYTES, WIRE_VERSION};
use crate::store::Ack;
use incgraph_graph::{NodeId, Update, UpdateBatch};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Socket error (including read deadline expiry).
    Io(io::Error),
    /// The peer closed the connection.
    Closed,
    /// The server sent something this client cannot parse.
    Protocol(String),
    /// A typed `ERR <code> <detail>` reply.
    Server {
        /// Error code name (e.g. `seq-gap`).
        code: String,
        /// Human detail.
        detail: String,
    },
    /// The server shed the request with `BUSY <retry-after-ms>`.
    Busy {
        /// Suggested retry delay.
        retry_after_ms: u64,
    },
    /// The server said `GOODBYE <reason>`.
    Goodbye(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Closed => write!(f, "connection closed"),
            ClientError::Protocol(s) => write!(f, "protocol: {s}"),
            ClientError::Server { code, detail } => write!(f, "server error {code}: {detail}"),
            ClientError::Busy { retry_after_ms } => write!(f, "busy, retry in {retry_after_ms}ms"),
            ClientError::Goodbye(r) => write!(f, "goodbye: {r}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One parsed server→client line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Session established.
    Welcome {
        /// Server-assigned session id.
        sid: u64,
    },
    /// An `OK …` acknowledgement; the payload after `OK `.
    Ok(String),
    /// Batch acknowledgement.
    Ack(Ack),
    /// Full digest for a standing query.
    ResultDigest {
        /// Query id.
        qid: String,
        /// Store sequence the digest reflects.
        wal_seq: u64,
        /// The digest values.
        digest: Vec<u64>,
    },
    /// A standing-query notification.
    Delta(Delta),
    /// A standing-plan view-delta notification (`VDELTA`).
    VDelta(ViewRows),
    /// A full plan view (`VIEW`, the reply to `PLANQ`).
    View(ViewRows),
    /// Load shed.
    Busy {
        /// Suggested retry delay.
        retry_after_ms: u64,
    },
    /// Typed error.
    Err {
        /// Error code name.
        code: String,
        /// Human detail.
        detail: String,
    },
    /// Connection is ending.
    Goodbye(String),
    /// `PING` reply.
    Pong,
}

/// Parses one server line into a [`Reply`].
pub fn parse_reply(line: &str) -> Result<Reply, ClientError> {
    let bad = || ClientError::Protocol(format!("unparsable reply `{line}`"));
    let mut it = line.split_whitespace();
    match it.next() {
        Some("WELCOME") => {
            let _version = it.next().ok_or_else(bad)?;
            let sid = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            Ok(Reply::Welcome { sid })
        }
        Some("PONG") => Ok(Reply::Pong),
        Some("OK") => Ok(Reply::Ok(line[2..].trim_start().to_string())),
        Some("ACK") => {
            let client_seq = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let wal_seq = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let units = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let dup = match it.next() {
                None => false,
                Some("dup") => true,
                Some(_) => return Err(bad()),
            };
            Ok(Reply::Ack(Ack {
                client_seq,
                wal_seq,
                units,
                dup,
            }))
        }
        Some("RESULT") => {
            let qid = it.next().ok_or_else(bad)?.to_string();
            let wal_seq = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let n: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let digest: Vec<u64> = it
                .map(|s| s.parse())
                .collect::<Result<_, _>>()
                .map_err(|_| bad())?;
            if digest.len() != n {
                return Err(bad());
            }
            Ok(Reply::ResultDigest {
                qid,
                wal_seq,
                digest,
            })
        }
        Some("DELTA") => protocol::parse_delta(line)
            .map(Reply::Delta)
            .map_err(|e| ClientError::Protocol(e.0)),
        Some("VDELTA") => protocol::parse_view_rows("VDELTA", line)
            .map(Reply::VDelta)
            .map_err(|e| ClientError::Protocol(e.0)),
        Some("VIEW") => protocol::parse_view_rows("VIEW", line)
            .map(Reply::View)
            .map_err(|e| ClientError::Protocol(e.0)),
        Some("BUSY") => {
            let retry_after_ms = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            Ok(Reply::Busy { retry_after_ms })
        }
        Some("ERR") => {
            let code = it.next().ok_or_else(bad)?.to_string();
            let detail = it.collect::<Vec<_>>().join(" ");
            Ok(Reply::Err { code, detail })
        }
        Some("GOODBYE") => Ok(Reply::Goodbye(it.collect::<Vec<_>>().join(" "))),
        _ => Err(bad()),
    }
}

/// A blocking `incgraph-wire/1` client.
pub struct Client {
    reader: BufReader<TcpStream>,
    sid: u64,
    deltas: VecDeque<Delta>,
    vdeltas: VecDeque<ViewRows>,
    partial: Vec<u8>,
}

impl Client {
    /// Connects and completes the `HELLO` handshake. `token` names the
    /// retry identity: reconnecting with the same token preserves
    /// exactly-once `UPDATE` semantics across connections.
    pub fn connect(addr: SocketAddr, token: &str) -> Result<Client, ClientError> {
        Self::connect_timeout(addr, token, Duration::from_secs(10))
    }

    /// [`connect`](Client::connect) with explicit connect + read deadline.
    pub fn connect_timeout(
        addr: SocketAddr,
        token: &str,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let mut c = Client {
            reader: BufReader::with_capacity(16 * 1024, stream),
            sid: 0,
            deltas: VecDeque::new(),
            vdeltas: VecDeque::new(),
            partial: Vec::new(),
        };
        match c.request(&format!("HELLO {WIRE_VERSION} {token}"))? {
            Reply::Welcome { sid } => {
                c.sid = sid;
                Ok(c)
            }
            Reply::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            other => Err(ClientError::Protocol(format!(
                "expected WELCOME, got {other:?}"
            ))),
        }
    }

    /// Connect with bounded retries on refused connections and `BUSY`
    /// sheds — the polite client loop the service docs prescribe.
    pub fn connect_retry(
        addr: SocketAddr,
        token: &str,
        tries: usize,
        backoff: Duration,
    ) -> Result<Client, ClientError> {
        let mut last = ClientError::Closed;
        for _ in 0..tries.max(1) {
            match Self::connect(addr, token) {
                Ok(c) => return Ok(c),
                Err(e @ (ClientError::Io(_) | ClientError::Busy { .. } | ClientError::Closed)) => {
                    last = e;
                    std::thread::sleep(backoff);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// The server-assigned session id.
    pub fn sid(&self) -> u64 {
        self.sid
    }

    /// Adjusts the read deadline for subsequent replies.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Creates (or idempotently attaches to) a named in-memory graph.
    pub fn graph(&mut self, name: &str, nodes: usize, directed: bool) -> Result<(), ClientError> {
        let dir = if directed { "directed" } else { "undirected" };
        self.expect_ok(&format!("GRAPH {name} {nodes} {dir}"))
    }

    /// Registers a standing query; returns the digest length.
    pub fn register(
        &mut self,
        qid: &str,
        graph: &str,
        class: &str,
        source: NodeId,
        pattern_seed: Option<u64>,
    ) -> Result<usize, ClientError> {
        let mut line = format!("REGISTER {qid} {graph} {class} source={source}");
        if let Some(seed) = pattern_seed {
            line.push_str(&format!(" pattern={seed}"));
        }
        let ok = self.expect_ok_payload(&line)?;
        ok.split_whitespace()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad REGISTER reply `{ok}`")))
    }

    /// Drops a standing query.
    pub fn unregister(&mut self, qid: &str) -> Result<(), ClientError> {
        self.expect_ok(&format!("UNREGISTER {qid}"))
    }

    /// Registers a standing dataflow plan (`incgraph-plan/1` text);
    /// returns the initial view's row count.
    pub fn plan(
        &mut self,
        qid: &str,
        graph: &str,
        pattern_seed: u64,
        text: &str,
    ) -> Result<usize, ClientError> {
        let ok = self.expect_ok_payload(&format!("PLAN {qid} {graph} {pattern_seed} {text}"))?;
        ok.split_whitespace()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad PLAN reply `{ok}`")))
    }

    /// Drops a standing plan.
    pub fn unplan(&mut self, qid: &str) -> Result<(), ClientError> {
        self.expect_ok(&format!("UNPLAN {qid}"))
    }

    /// Fetches a standing plan's full current view.
    pub fn planq(&mut self, qid: &str) -> Result<(u64, Vec<ViewRow>), ClientError> {
        match self.request(&format!("PLANQ {qid}"))? {
            Reply::View(v) => Ok((v.wal_seq, v.rows)),
            Reply::Err { code, detail } => Err(ClientError::Server { code, detail }),
            other => Err(ClientError::Protocol(format!(
                "expected VIEW, got {other:?}"
            ))),
        }
    }

    /// Sends one `UPDATE` batch under `client_seq` and waits for the
    /// `ACK`. `BUSY` and `ERR` surface as [`ClientError`]; retry with the
    /// **same** `client_seq` — the server's dedup table makes that safe.
    pub fn update(
        &mut self,
        graph: &str,
        client_seq: u64,
        batch: &UpdateBatch,
    ) -> Result<Ack, ClientError> {
        let mut msg = format!("UPDATE {graph} {client_seq} {}\n", batch.len());
        for u in batch.updates() {
            match *u {
                Update::Insert { src, dst, weight } => {
                    msg.push_str(&format!("+ {src} {dst} {weight}\n"));
                }
                Update::Delete { src, dst } => {
                    msg.push_str(&format!("- {src} {dst}\n"));
                }
            }
        }
        self.send_raw(&msg)?;
        match self.recv_reply()? {
            Reply::Ack(ack) => Ok(ack),
            Reply::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            Reply::Err { code, detail } => Err(ClientError::Server { code, detail }),
            other => Err(ClientError::Protocol(format!(
                "expected ACK, got {other:?}"
            ))),
        }
    }

    /// [`update`](Client::update), retrying `BUSY` sheds (same sequence
    /// number) up to `tries` times, honoring the server's retry hint.
    pub fn update_retry(
        &mut self,
        graph: &str,
        client_seq: u64,
        batch: &UpdateBatch,
        tries: usize,
    ) -> Result<Ack, ClientError> {
        let mut last_hint = 1u64;
        for _ in 0..tries.max(1) {
            match self.update(graph, client_seq, batch) {
                Err(ClientError::Busy { retry_after_ms }) => {
                    last_hint = retry_after_ms;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1000)));
                }
                other => return other,
            }
        }
        Err(ClientError::Busy {
            retry_after_ms: last_hint,
        })
    }

    /// Fetches the current full digest of a standing query.
    pub fn query(&mut self, qid: &str) -> Result<(u64, Vec<u64>), ClientError> {
        match self.request(&format!("QUERY {qid}"))? {
            Reply::ResultDigest {
                wal_seq, digest, ..
            } => Ok((wal_seq, digest)),
            Reply::Err { code, detail } => Err(ClientError::Server { code, detail }),
            other => Err(ClientError::Protocol(format!(
                "expected RESULT, got {other:?}"
            ))),
        }
    }

    /// Server status line payload (after `OK `).
    pub fn status(&mut self) -> Result<String, ClientError> {
        self.expect_ok_payload("STATUS")
    }

    /// Promotes a replica to primary; returns the new epoch.
    pub fn promote(&mut self) -> Result<u64, ClientError> {
        let payload = self.expect_ok_payload("PROMOTE")?;
        payload
            .split_whitespace()
            .nth(1)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad PROMOTE payload: {payload}")))
    }

    /// Reads one raw protocol line (chaos tests inspect replication
    /// traffic with this). `None` on read timeout.
    pub fn recv_raw_line(&mut self) -> Result<Option<String>, ClientError> {
        self.read_line_opt()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request("PING")? {
            Reply::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected PONG, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and stop (when enabled server-side).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.expect_ok("SHUTDOWN")
    }

    /// Polite disconnect; returns the server's `GOODBYE` reason.
    pub fn bye(mut self) -> Result<String, ClientError> {
        self.send_raw("BYE\n")?;
        loop {
            match self.recv_reply() {
                Ok(Reply::Goodbye(reason)) => return Ok(reason),
                Ok(_) => continue,
                Err(ClientError::Goodbye(reason)) => return Ok(reason),
                Err(ClientError::Closed) => return Ok(String::new()),
                Err(e) => return Err(e),
            }
        }
    }

    /// Drains the buffered `DELTA` notifications received so far.
    pub fn take_deltas(&mut self) -> Vec<Delta> {
        self.deltas.drain(..).collect()
    }

    /// Waits up to `timeout` for the next `DELTA` (buffered ones first).
    /// `Ok(None)` on timeout.
    pub fn poll_delta(&mut self, timeout: Duration) -> Result<Option<Delta>, ClientError> {
        if let Some(d) = self.deltas.pop_front() {
            return Ok(Some(d));
        }
        let old = self.reader.get_ref().read_timeout()?;
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let got = self.read_line_opt();
        self.reader.get_ref().set_read_timeout(old)?;
        match got? {
            None => Ok(None),
            Some(line) => match parse_reply(&line)? {
                Reply::Delta(d) => Ok(Some(d)),
                Reply::VDelta(v) => {
                    self.vdeltas.push_back(v);
                    Ok(None)
                }
                Reply::Goodbye(r) => Err(ClientError::Goodbye(r)),
                other => Err(ClientError::Protocol(format!(
                    "expected DELTA, got {other:?}"
                ))),
            },
        }
    }

    /// Drains the buffered `VDELTA` notifications received so far.
    pub fn take_vdeltas(&mut self) -> Vec<ViewRows> {
        self.vdeltas.drain(..).collect()
    }

    /// Waits up to `timeout` for the next `VDELTA` (buffered ones
    /// first). `Ok(None)` on timeout.
    pub fn poll_vdelta(&mut self, timeout: Duration) -> Result<Option<ViewRows>, ClientError> {
        if let Some(v) = self.vdeltas.pop_front() {
            return Ok(Some(v));
        }
        let old = self.reader.get_ref().read_timeout()?;
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let got = self.read_line_opt();
        self.reader.get_ref().set_read_timeout(old)?;
        match got? {
            None => Ok(None),
            Some(line) => match parse_reply(&line)? {
                Reply::VDelta(v) => Ok(Some(v)),
                Reply::Delta(d) => {
                    self.deltas.push_back(d);
                    Ok(None)
                }
                Reply::Goodbye(r) => Err(ClientError::Goodbye(r)),
                other => Err(ClientError::Protocol(format!(
                    "expected VDELTA, got {other:?}"
                ))),
            },
        }
    }

    /// Sends raw bytes (chaos tests craft malformed traffic with this).
    pub fn send_raw(&mut self, msg: &str) -> Result<(), ClientError> {
        let s = self.reader.get_mut();
        s.write_all(msg.as_bytes())?;
        s.flush()?;
        Ok(())
    }

    /// Reads the next non-`DELTA` reply, buffering deltas to the side.
    /// `GOODBYE` surfaces as [`ClientError::Goodbye`].
    pub fn recv_reply(&mut self) -> Result<Reply, ClientError> {
        loop {
            let line = match self.read_line_opt()? {
                Some(l) => l,
                None => return Err(ClientError::Io(io::ErrorKind::TimedOut.into())),
            };
            match parse_reply(&line)? {
                Reply::Delta(d) => self.deltas.push_back(d),
                Reply::VDelta(v) => self.vdeltas.push_back(v),
                Reply::Goodbye(r) => return Err(ClientError::Goodbye(r)),
                other => return Ok(other),
            }
        }
    }

    fn request(&mut self, line: &str) -> Result<Reply, ClientError> {
        self.send_raw(&format!("{line}\n"))?;
        self.recv_reply()
    }

    fn expect_ok(&mut self, line: &str) -> Result<(), ClientError> {
        self.expect_ok_payload(line).map(|_| ())
    }

    fn expect_ok_payload(&mut self, line: &str) -> Result<String, ClientError> {
        match self.request(line)? {
            Reply::Ok(payload) => Ok(payload),
            Reply::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            Reply::Err { code, detail } => Err(ClientError::Server { code, detail }),
            other => Err(ClientError::Protocol(format!("expected OK, got {other:?}"))),
        }
    }

    /// Bounded line read. `Ok(None)` when the read deadline passes with
    /// an incomplete line (the partial bytes are kept for the next call).
    fn read_line_opt(&mut self) -> Result<Option<String>, ClientError> {
        loop {
            let (consumed, done) = {
                let avail = match self.reader.fill_buf() {
                    Ok(a) => a,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        return Ok(None)
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(ClientError::Io(e)),
                };
                if avail.is_empty() {
                    return Err(ClientError::Closed);
                }
                match avail.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        self.partial.extend_from_slice(&avail[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        self.partial.extend_from_slice(avail);
                        (avail.len(), false)
                    }
                }
            };
            self.reader.consume(consumed);
            if self.partial.len() > MAX_LINE_BYTES {
                return Err(ClientError::Protocol("reply line too long".into()));
            }
            if done {
                if self.partial.last() == Some(&b'\r') {
                    self.partial.pop();
                }
                let line = String::from_utf8_lossy(&self.partial).into_owned();
                self.partial.clear();
                return Ok(Some(line));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_reply_shapes() {
        assert_eq!(parse_reply("PONG").unwrap(), Reply::Pong);
        assert_eq!(
            parse_reply("WELCOME incgraph-wire/1 7").unwrap(),
            Reply::Welcome { sid: 7 }
        );
        assert_eq!(
            parse_reply("ACK 3 12 4 dup").unwrap(),
            Reply::Ack(Ack {
                client_seq: 3,
                wal_seq: 12,
                units: 4,
                dup: true
            })
        );
        assert_eq!(
            parse_reply("RESULT q1 9 3 1 2 3").unwrap(),
            Reply::ResultDigest {
                qid: "q1".into(),
                wal_seq: 9,
                digest: vec![1, 2, 3]
            }
        );
        assert_eq!(
            parse_reply("BUSY 50").unwrap(),
            Reply::Busy { retry_after_ms: 50 }
        );
        assert!(matches!(
            parse_reply("ERR seq-gap expected 4").unwrap(),
            Reply::Err { code, .. } if code == "seq-gap"
        ));
        assert!(matches!(
            parse_reply("GOODBYE shutting-down").unwrap(),
            Reply::Goodbye(r) if r == "shutting-down"
        ));
        assert!(parse_reply("RESULT q1 9 3 1 2").is_err(), "digest count");
        assert!(parse_reply("???").is_err());
    }
}
