//! Durable exactly-once intent log.
//!
//! The service acks an `UPDATE` only after the batch's WAL record is
//! fsynced. A client whose ack was lost (cut connection, dropped bytes)
//! retries the same `(token, client_seq)` — possibly against a restarted
//! server — and the retry must be applied **exactly once**. The WAL
//! itself cannot answer "was this client batch already committed?"
//! because its records carry no client identity; this sidecar log does.
//!
//! One record per committed batch: `(wal_seq, client_seq, token)`,
//! CRC-framed like the WAL. The commit protocol (enforced through
//! [`DurableSession::apply_with`](incgraph_durable::DurableSession::apply_with))
//! is *intent first*:
//!
//! 1. append + fsync the intent, naming the WAL sequence the batch is
//!    about to take;
//! 2. append + fsync the WAL record (the commit point);
//! 3. ack the client.
//!
//! A crash between 1 and 2 leaves an intent whose WAL sequence was never
//! committed; [`DedupLog::open`] *physically truncates* the log at the
//! first intent with `wal_seq > last committed WAL sequence` (intents
//! are appended in WAL order, so uncommitted ones are a suffix). The
//! orphan must not merely be skipped: its WAL sequence will be reused by
//! the next committed batch, and a retained orphan would then alias into
//! a false ack on a later open. With it gone, the client's retry
//! re-applies cleanly. A crash between 2 and 3 leaves both records, so
//! the retry is recognized and re-acked without re-applying. A WAL
//! append that fails with a *real* I/O error flips the graph into
//! degraded read-only mode (no further commits for the life of the
//! process), which keeps the orphaned intent's WAL sequence from ever
//! being claimed by a different batch.

use incgraph_durable::crc::crc32;
use incgraph_durable::DurableError;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the intent log inside a graph's durable directory.
pub const DEDUP_NAME: &str = "dedup.log";

/// File magic.
pub const DEDUP_MAGIC: &[u8; 8] = b"IDUP0001";

/// Last acknowledged batch of one client token on one graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AckRecord {
    /// Client-supplied sequence number (strictly increasing from 1).
    pub client_seq: u64,
    /// WAL sequence the batch committed under.
    pub wal_seq: u64,
}

/// One decoded intent, in log (= WAL-sequence) order. Used by the
/// replication catch-up path (which ships each committed record's client
/// identity alongside the WAL bytes) and by the failover oracle's
/// offline exactly-once audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DedupEntry {
    /// WAL sequence the batch committed under.
    pub wal_seq: u64,
    /// Client-supplied sequence number.
    pub client_seq: u64,
    /// Client retry identity.
    pub token: String,
}

/// An open, append-position intent log.
pub struct DedupLog {
    file: File,
    path: PathBuf,
}

/// Parses the valid committed prefix of a dedup-log *body* (the bytes
/// after the magic): entries in order plus the byte length of that
/// prefix. Stops at the first torn/corrupt record or the first intent
/// past `committed_wal_seq` — the same longest-valid-prefix rule
/// [`DedupLog::open`] truncates by.
fn parse_body(body: &[u8], committed_wal_seq: u64) -> (Vec<DedupEntry>, usize) {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    while body.len() - pos >= 8 {
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(body[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = pos.checked_add(8 + len).filter(|&e| e <= body.len()) else {
            break; // torn tail
        };
        let payload = &body[pos + 8..end];
        if crc32(payload) != crc || len < 18 {
            break;
        }
        let wal_seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let client_seq = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let tlen = u16::from_le_bytes(payload[16..18].try_into().unwrap()) as usize;
        if 18 + tlen != len {
            break;
        }
        let Ok(token) = std::str::from_utf8(&payload[18..]) else {
            break;
        };
        if wal_seq > committed_wal_seq {
            break;
        }
        entries.push(DedupEntry {
            wal_seq,
            client_seq,
            token: token.to_string(),
        });
        pos = end;
    }
    (entries, pos)
}

/// Read-only scan of the intent log in `dir`: the committed entries in
/// WAL order, without opening the log for append or truncating anything.
/// A missing log reads as empty. Safe on a store another process holds
/// the `LOCK` on — nothing is mutated.
pub fn scan_entries(dir: &Path, committed_wal_seq: u64) -> Result<Vec<DedupEntry>, DurableError> {
    let path = dir.join(DEDUP_NAME);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    if bytes.len() < 8 || &bytes[..8] != DEDUP_MAGIC {
        return Err(DurableError::Corrupt(format!(
            "{}: bad dedup log magic",
            path.display()
        )));
    }
    Ok(parse_body(&bytes[8..], committed_wal_seq).0)
}

fn encode_entry(token: &str, client_seq: u64, wal_seq: u64) -> Vec<u8> {
    let t = token.as_bytes();
    let mut payload = Vec::with_capacity(18 + t.len());
    payload.extend_from_slice(&wal_seq.to_le_bytes());
    payload.extend_from_slice(&client_seq.to_le_bytes());
    payload.extend_from_slice(&(t.len() as u16).to_le_bytes());
    payload.extend_from_slice(t);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

impl DedupLog {
    /// Opens (or creates) the intent log in `dir`, folding its valid
    /// prefix into a token → last-ack index. Intents beyond
    /// `committed_wal_seq` were never committed and are discarded; a torn
    /// tail is truncated so subsequent appends extend a clean log.
    pub fn open(
        dir: &Path,
        committed_wal_seq: u64,
    ) -> Result<(DedupLog, HashMap<String, AckRecord>), DurableError> {
        let path = dir.join(DEDUP_NAME);
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let fresh = bytes.is_empty();
        if fresh {
            file.write_all(DEDUP_MAGIC)?;
            file.sync_data()?;
        } else if bytes.len() < 8 || &bytes[..8] != DEDUP_MAGIC {
            return Err(DurableError::Corrupt(format!(
                "{}: bad dedup log magic",
                path.display()
            )));
        }
        let body = if fresh { &[][..] } else { &bytes[8..] };
        // `parse_body` stops at the first torn record *or* the first
        // intent past `committed_wal_seq` — intents are appended in
        // WAL-sequence order, so uncommitted ones are a suffix. The
        // truncation below physically discards that suffix: an orphan
        // merely skipped but kept in the file could alias into a false
        // ack once its WAL sequence is reused by a later batch.
        let (entries, pos) = parse_body(body, committed_wal_seq);
        let mut index: HashMap<String, AckRecord> = HashMap::new();
        for e in entries {
            let rec = index.entry(e.token).or_default();
            if e.client_seq >= rec.client_seq {
                *rec = AckRecord {
                    client_seq: e.client_seq,
                    wal_seq: e.wal_seq,
                };
            }
        }
        // Truncate the torn/uncommitted tail so the next append starts at
        // a record boundary.
        let valid_end = 8 + pos as u64;
        file.set_len(valid_end)?;
        file.sync_data()?;
        file.seek(SeekFrom::Start(valid_end))?;
        Ok((DedupLog { file, path }, index))
    }

    /// Appends and fsyncs one intent. Called from the pre-commit hook:
    /// after this returns, the intent is durable and the WAL append may
    /// proceed.
    pub fn append(
        &mut self,
        token: &str,
        client_seq: u64,
        wal_seq: u64,
    ) -> Result<(), DurableError> {
        let _span = incgraph_obs::span("service.intent");
        let entry = encode_entry(token, client_seq, wal_seq);
        self.file.write_all(&entry)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Rewrites the log from scratch with the given entries (WAL order)
    /// and fsyncs. Snapshot adoption uses this: the shipped ack table
    /// replaces whatever local history the old log described, which is
    /// dead once the store's world is the primary's snapshot.
    pub fn reset(&mut self, entries: &[DedupEntry]) -> Result<(), DurableError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes: Vec<u8> = Vec::with_capacity(8 + entries.len() * 32);
        bytes.extend_from_slice(DEDUP_MAGIC);
        for e in entries {
            bytes.extend_from_slice(&encode_entry(&e.token, e.client_seq, e.wal_seq));
        }
        self.file.write_all(&bytes)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The log's path (diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("incgraph-dedup-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_reload_folds_to_latest_ack() {
        let dir = temp_dir("fold");
        {
            let (mut log, index) = DedupLog::open(&dir, 0).unwrap();
            assert!(index.is_empty());
            log.append("alice", 1, 10).unwrap();
            log.append("bob", 1, 11).unwrap();
            log.append("alice", 2, 12).unwrap();
        }
        let (_, index) = DedupLog::open(&dir, 12).unwrap();
        assert_eq!(
            index["alice"],
            AckRecord {
                client_seq: 2,
                wal_seq: 12
            }
        );
        assert_eq!(
            index["bob"],
            AckRecord {
                client_seq: 1,
                wal_seq: 11
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_intents_are_discarded_on_open() {
        let dir = temp_dir("uncommitted");
        {
            let (mut log, _) = DedupLog::open(&dir, 0).unwrap();
            log.append("alice", 1, 10).unwrap();
            // Intent for WAL seq 11 whose commit never happened.
            log.append("alice", 2, 11).unwrap();
        }
        let (_, index) = DedupLog::open(&dir, 10).unwrap();
        assert_eq!(
            index["alice"],
            AckRecord {
                client_seq: 1,
                wal_seq: 10
            },
            "the uncommitted intent must not count as acked"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphaned_intent_is_physically_discarded_not_just_skipped() {
        let dir = temp_dir("orphan-alias");
        {
            let (mut log, _) = DedupLog::open(&dir, 0).unwrap();
            log.append("alice", 1, 10).unwrap();
            // Crash between intent fsync and WAL append: seq 11 is an
            // orphan whose WAL slot the next committed batch will reuse.
            log.append("alice", 2, 11).unwrap();
        }
        {
            // Restart: the orphan must be cut out of the file, not
            // merely excluded from the index.
            let (mut log, index) = DedupLog::open(&dir, 10).unwrap();
            assert_eq!(index["alice"].client_seq, 1);
            // A different client commits under the recycled WAL seq 11.
            log.append("bob", 1, 11).unwrap();
        }
        // Second restart, WAL now committed through 11. If the orphan
        // had survived the first open, alice's seq 2 would now alias in
        // as acked and her retry would be swallowed as a dup.
        let (_, index) = DedupLog::open(&dir, 11).unwrap();
        assert_eq!(
            index["alice"],
            AckRecord {
                client_seq: 1,
                wal_seq: 10
            },
            "orphaned intent must not resurrect once its wal_seq is recycled"
        );
        assert_eq!(
            index["bob"],
            AckRecord {
                client_seq: 1,
                wal_seq: 11
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let dir = temp_dir("torn");
        {
            let (mut log, _) = DedupLog::open(&dir, 0).unwrap();
            log.append("alice", 1, 10).unwrap();
        }
        // Tear the tail: append half a record's worth of garbage.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(DEDUP_NAME))
                .unwrap();
            f.write_all(&[0x55; 11]).unwrap();
        }
        let (mut log, index) = DedupLog::open(&dir, 10).unwrap();
        assert_eq!(index["alice"].client_seq, 1);
        log.append("alice", 2, 11).unwrap();
        let (_, index) = DedupLog::open(&dir, 11).unwrap();
        assert_eq!(index["alice"].client_seq, 2, "append after tear works");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
