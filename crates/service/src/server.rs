//! The threaded TCP server: sessions, deadlines, backpressure,
//! admission control, graceful drain, and abrupt (chaos) death.
//!
//! # Threading model
//!
//! - **acceptor** — one thread polling the nonblocking listener. Each
//!   accepted connection becomes a *session* with two small-stack
//!   threads: a **reader** parsing commands off the socket and a
//!   **sender** draining the session's bounded [`Outbound`] queue.
//! - **writer** — exactly one thread owns all mutation of the shared
//!   [`Store`]. Readers submit write jobs over an mpsc channel; `QUERY`
//!   and `STATUS` read under the shared lock without queueing. Single
//!   ownership of the commit path is what makes WAL append order, ack
//!   bookkeeping, and standing-query notification race-free.
//!
//! # Robustness behaviors (the contract `docs/SERVICE.md` documents)
//!
//! - **Deadlines**: reads poll with a short timeout so a dead peer
//!   cannot pin a thread; a session idle past `idle_timeout` is reaped
//!   with `GOODBYE idle-timeout`. Writes carry `write_timeout`.
//! - **Backpressure**: each session's outbound queue is bounded — past
//!   the soft cap deltas coalesce, past the hard cap the session dies
//!   with `ERR slow-consumer` (see [`outbound`](crate::outbound)).
//! - **Admission control**: when the writer's queue exceeds
//!   `max_pending` jobs, new write commands are shed with
//!   `BUSY <retry-after-ms>` instead of growing the queue without bound.
//!   A shed `UPDATE` was not applied; the client retries the same
//!   sequence number and the dedup table keeps it exactly-once.
//! - **Graceful shutdown** ([`ServerHandle::shutdown`]): stop accepting,
//!   drain queued jobs (their acks still go out), checkpoint durable
//!   graphs, `GOODBYE shutting-down` to every session.
//! - **Abrupt death** ([`ServerHandle::kill`], or an armed
//!   [`CrashPoint`] firing mid-commit): simulated `kill -9` — no drain,
//!   no checkpoint, no goodbyes; sockets are reset and the store is
//!   dropped where it stands. The chaos harness restarts on the same
//!   directory and recovery must hold.

use crate::dedup::DedupEntry;
use crate::outbound::{OutMsg, Outbound};
use crate::protocol::{self, Command, ErrCode, MAX_LINE_BYTES, WIRE_VERSION};
use crate::store::{Store, UpdateError};
use incgraph_durable::{encode_record, CrashPoint};
use incgraph_graph::{NodeId, UpdateBatch};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Socket read poll interval — the granularity at which idle and
    /// shutdown checks run. Short keeps reaping prompt; it is *not* the
    /// idle deadline itself.
    pub read_poll: Duration,
    /// Deadline for one socket write before the peer counts as dead.
    pub write_timeout: Duration,
    /// A session silent this long is reaped.
    pub idle_timeout: Duration,
    /// Max concurrent sessions; beyond it new connections get `BUSY`.
    pub max_sessions: usize,
    /// Max queued writer jobs before write commands get `BUSY`.
    pub max_pending: usize,
    /// Retry hint on `BUSY` lines, milliseconds.
    pub retry_after_ms: u64,
    /// Outbound queue soft cap (delta coalescing starts here).
    pub out_soft: usize,
    /// Outbound queue hard cap (slow-consumer disconnect).
    pub out_hard: usize,
    /// Whether the wire `SHUTDOWN` command is honored.
    pub allow_remote_shutdown: bool,
    /// Micro-batch coalescing: buffer up to this many committed update
    /// batches before running one coalesced standing-query notification
    /// pass. `1` (the default) notifies after every batch, the
    /// historical behavior. Commit, WAL fsync, and `ACK` always stay
    /// per-batch — coalescing only amortizes the per-query incremental
    /// fixpoint and `DELTA` push.
    pub flush_ops: usize,
    /// Micro-batch coalescing deadline: a partial buffer older than
    /// this flushes even if `flush_ops` was never reached, bounding
    /// `DELTA` staleness under a trickle of updates.
    pub flush_window: Duration,
    /// Name of the durable graph subject to replication (`serve` sets
    /// this to the graph it mounted). `None` disables every replication
    /// verb on this server.
    pub repl_graph: Option<String>,
    /// Start as a replica tailing this primary; the server then refuses
    /// writes (`ERR not-primary`) until promoted.
    pub replica_of: Option<SocketAddr>,
    /// Emit a `DIGEST` divergence probe to every replica after this many
    /// shipped records (0 disables).
    pub digest_every: u64,
    /// Semi-sync window: a client ack held back waiting for replica
    /// watermarks is released after this long even if no watermark
    /// arrived (availability over strict replica durability — the
    /// failover oracle pins this high so acks imply replication).
    pub repl_ack_timeout: Duration,
    /// A replica whose tail request lags the primary by more than this
    /// many records is bootstrapped with a snapshot instead. Keep it
    /// under `out_hard`: the tail catch-up is pushed through the
    /// replica's bounded outbound queue in one burst.
    pub snapshot_lag: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            read_poll: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_sessions: 4096,
            max_pending: 1024,
            retry_after_ms: 50,
            out_soft: 64,
            out_hard: 1024,
            allow_remote_shutdown: true,
            flush_ops: 1,
            flush_window: Duration::from_millis(10),
            repl_graph: None,
            replica_of: None,
            digest_every: 32,
            repl_ack_timeout: Duration::from_secs(2),
            snapshot_lag: 512,
        }
    }
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const KILLED: u8 = 2;

/// Replication role of a running server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; ships them to attached replicas.
    Primary,
    /// Read-only; tails a primary and refuses writes.
    Replica,
    /// A deposed ex-primary that saw a higher epoch: read-only forever
    /// (restart as a replica to rejoin).
    Fenced,
}

impl Role {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Role::Primary => 0,
            Role::Replica => 1,
            Role::Fenced => 2,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Role {
        match v {
            1 => Role::Replica,
            2 => Role::Fenced,
            _ => Role::Primary,
        }
    }

    /// Wire name (`STATUS role=…`).
    pub fn name(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Replica => "replica",
            Role::Fenced => "fenced",
        }
    }
}

pub(crate) enum Job {
    Graph {
        name: String,
        nodes: usize,
        directed: bool,
        out: Arc<Outbound>,
    },
    Register {
        sid: u64,
        qid: String,
        graph: String,
        class: String,
        source: NodeId,
        pattern_seed: u64,
        out: Arc<Outbound>,
    },
    Unregister {
        sid: u64,
        qid: String,
        out: Arc<Outbound>,
    },
    Plan {
        sid: u64,
        qid: String,
        graph: String,
        pattern_seed: u64,
        text: String,
        out: Arc<Outbound>,
    },
    Unplan {
        sid: u64,
        qid: String,
        out: Arc<Outbound>,
    },
    Update {
        graph: String,
        token: String,
        client_seq: u64,
        batch: UpdateBatch,
        out: Arc<Outbound>,
    },
    DropSession {
        sid: u64,
    },
    /// A replica's handshake: validate, fence or feed (catch-up tail or
    /// snapshot), and register the session as a replication sink.
    Sync {
        sid: u64,
        graph: String,
        epoch: u64,
        from_seq: u64,
        crc: Option<u32>,
        directed: bool,
        nodes: usize,
        force: bool,
        out: Arc<Outbound>,
    },
    /// A replica reports `seq` fsynced; gated client acks may release.
    Watermark {
        sid: u64,
        seq: u64,
    },
    /// Operator promotion of this (replica) node to primary.
    Promote {
        out: Arc<Outbound>,
    },
    /// Replica-side: apply one shipped record through the writer (the
    /// single-writer invariant holds for replication too).
    ReplApply {
        graph: String,
        seq: u64,
        identity: Option<(String, u64)>,
        batch: UpdateBatch,
        done: mpsc::Sender<Result<u64, String>>,
    },
    /// Replica-side: adopt a bootstrap/resync snapshot.
    ReplAdopt {
        graph: String,
        payload: Vec<u8>,
        epoch: u64,
        acks: Vec<DedupEntry>,
        done: mpsc::Sender<Result<u64, String>>,
    },
    /// Replica-side: adopt the primary's (higher) epoch on tail sync.
    AdoptEpoch {
        graph: String,
        epoch: u64,
        done: mpsc::Sender<Result<(), String>>,
    },
}

struct SessionSlot {
    out: Arc<Outbound>,
    stream: TcpStream,
}

pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    /// `None` once the writer dropped the store (drain finished or
    /// killed) — that drop releases the durable `LOCK` file.
    store: RwLock<Option<Store>>,
    pub(crate) jobs: mpsc::Sender<Job>,
    pub(crate) pending: AtomicUsize,
    phase: AtomicU8,
    sessions: Mutex<HashMap<u64, SessionSlot>>,
    next_sid: AtomicU64,
    /// Current [`Role`], as `Role::as_u8`.
    pub(crate) role: AtomicU8,
    /// Primary: committed-minus-min-watermark over live sinks. Replica:
    /// updated by the tail thread from `DIGEST`/`SHIP` arrivals.
    pub(crate) repl_lag: AtomicU64,
    /// Live replication sinks (primary side), for `STATUS`.
    pub(crate) repl_sinks: AtomicUsize,
}

impl Shared {
    pub(crate) fn phase(&self) -> u8 {
        self.phase.load(Ordering::Acquire)
    }

    pub(crate) fn is_running(&self) -> bool {
        self.phase() == RUNNING
    }

    pub(crate) fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire))
    }

    pub(crate) fn set_role(&self, role: Role) {
        self.role.store(role.as_u8(), Ordering::Release);
    }

    fn shared_role_refuses_writes(&self) -> bool {
        self.role() != Role::Primary
    }

    pub(crate) fn store(&self) -> std::sync::RwLockReadGuard<'_, Option<Store>> {
        self.store.read().unwrap_or_else(|e| e.into_inner())
    }

    fn store_mut(&self) -> std::sync::RwLockWriteGuard<'_, Option<Store>> {
        self.store.write().unwrap_or_else(|e| e.into_inner())
    }

    fn sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, SessionSlot>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Abrupt death: reset every session socket and drop queued output.
    fn kill_sessions(&self) {
        let mut sessions = self.sessions();
        for (_, slot) in sessions.drain() {
            slot.out.close_now();
            let _ = slot.stream.shutdown(Shutdown::Both);
        }
    }
}

/// Marker type: the namespace for [`Server::start`].
pub struct Server;

/// Handle to a running server: address, lifecycle, chaos hooks.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    repl: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and writer threads, and returns the
    /// handle. The store moves behind the handle's shared lock; dropping
    /// the handle (or [`kill`](ServerHandle::kill) /
    /// [`shutdown`](ServerHandle::shutdown)) releases it.
    pub fn start(store: Store, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel::<Job>();
        let primary = cfg.replica_of;
        let initial_role = if primary.is_some() {
            Role::Replica
        } else {
            Role::Primary
        };
        let shared = Arc::new(Shared {
            cfg,
            store: RwLock::new(Some(store)),
            jobs: tx,
            pending: AtomicUsize::new(0),
            phase: AtomicU8::new(RUNNING),
            sessions: Mutex::new(HashMap::new()),
            next_sid: AtomicU64::new(1),
            role: AtomicU8::new(initial_role.as_u8()),
            repl_lag: AtomicU64::new(0),
            repl_sinks: AtomicUsize::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("svc-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        let writer = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("svc-writer".into())
                .spawn(move || writer_loop(rx, shared))?
        };
        let repl = match primary {
            Some(primary_addr) => Some({
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name("svc-repl".into())
                    .spawn(move || crate::repl::replica_loop(shared, primary_addr))?
            }),
            None => None,
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            writer: Some(writer),
            repl,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful drain and blocks until it finishes: no new
    /// connections or write jobs, queued jobs processed (their acks
    /// delivered), durable graphs checkpointed, every session told
    /// `GOODBYE shutting-down`, store dropped.
    pub fn shutdown(&mut self) {
        self.shared
            .phase
            .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire)
            .ok();
        self.join();
    }

    /// Simulated `kill -9`: sockets reset, queued work and output
    /// dropped, **no** checkpoint and no goodbyes. The store is dropped
    /// where it stands, so a durable graph's next opener exercises real
    /// recovery.
    pub fn kill(&mut self) {
        self.shared.phase.store(KILLED, Ordering::Release);
        self.shared.kill_sessions();
        self.join();
    }

    /// Blocks until the server exits by itself (wire `SHUTDOWN`, or an
    /// injected crash firing).
    pub fn wait(&mut self) {
        self.join();
    }

    /// Whether the server has fully stopped.
    pub fn is_stopped(&self) -> bool {
        self.writer.is_none() || self.writer.as_ref().is_some_and(|w| w.is_finished())
    }

    /// Arms a one-shot [`CrashPoint`] on a durable graph: the next
    /// commit that reaches the point dies as if the process were killed
    /// there. Returns `false` if the graph is unknown or not durable.
    pub fn arm_crash(&self, graph: &str, point: CrashPoint) -> bool {
        match self.shared.store_mut().as_mut() {
            Some(store) => store.arm_crash(graph, Some(point)),
            None => false,
        }
    }

    /// Whether the store entered degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.shared.store().as_ref().is_some_and(Store::is_degraded)
    }

    /// Live session count (tests and ops).
    pub fn session_count(&self) -> usize {
        self.shared.sessions().len()
    }

    /// Current replication role.
    pub fn role(&self) -> Role {
        self.shared.role()
    }

    /// Committed-minus-acknowledged replication lag (primary side).
    pub fn repl_lag(&self) -> u64 {
        self.shared.repl_lag.load(Ordering::Relaxed)
    }

    fn join(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
        if let Some(h) = self.repl.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.writer.is_some() || self.acceptor.is_some() {
            // Leaked handle: abrupt stop so the process can exit.
            self.shared.phase.store(KILLED, Ordering::Release);
            self.shared.kill_sessions();
            self.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.phase() != RUNNING {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                incgraph_obs::counter("service.accepts", 1);
                let sid = shared.next_sid.fetch_add(1, Ordering::Relaxed);
                if !spawn_session(&shared, stream, sid) {
                    incgraph_obs::counter("service.accept_shed", 1);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping the listener closes the socket; in-flight sessions are
    // finished by their own threads (or killed by the handle).
}

fn spawn_session(shared: &Arc<Shared>, stream: TcpStream, sid: u64) -> bool {
    let cfg = &shared.cfg;
    {
        let sessions = shared.sessions();
        if sessions.len() >= cfg.max_sessions {
            // Shed at the door with the same BUSY shape commands get —
            // on a throwaway thread with a tight timeout, so a peer
            // that connects and never reads cannot stall the accept
            // loop for the full write_timeout per shed connection.
            let mut s = stream;
            let retry_after_ms = cfg.retry_after_ms;
            let spawned = thread::Builder::new()
                .name("svc-shed".into())
                .stack_size(64 * 1024)
                .spawn(move || {
                    let _ = s.set_write_timeout(Some(Duration::from_millis(100)));
                    let _ = s.write_all(format!("BUSY {retry_after_ms}\n").as_bytes());
                    let _ = s.shutdown(Shutdown::Both);
                });
            // If the spawn fails the socket just drops; the client sees
            // a reset instead of BUSY, which is still a shed.
            drop(spawned);
            return false;
        }
    }
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_poll));
    let out = Arc::new(Outbound::new(
        cfg.out_soft,
        cfg.out_hard,
        shared
            .store()
            .as_ref()
            .map(|s| s.limits().max_delta_entries)
            .unwrap_or(256),
    ));
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    };
    shared.sessions().insert(
        sid,
        SessionSlot {
            out: Arc::clone(&out),
            stream: match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return false,
            },
        },
    );
    incgraph_obs::gauge("service.sessions", shared.sessions().len() as u64);
    let reader = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(&out);
        thread::Builder::new()
            .name(format!("svc-r{sid}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                reader_loop(shared, stream, sid, out);
            })
    };
    let sender = {
        let shared = Arc::clone(shared);
        thread::Builder::new()
            .name(format!("svc-w{sid}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                sender_loop(shared, write_stream, out);
            })
    };
    if reader.is_err() || sender.is_err() {
        shared.sessions().remove(&sid);
        return false;
    }
    true
}

/// One bounded line read. `buf` accumulates across timeout polls so a
/// slowly-arriving line is not lost.
enum LineStatus {
    Line,
    Eof,
    Timeout,
    TooLong,
}

fn poll_line(r: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> io::Result<LineStatus> {
    loop {
        let (consumed, status) = {
            let avail = match r.fill_buf() {
                Ok(a) => a,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineStatus::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if avail.is_empty() {
                return Ok(LineStatus::Eof);
            }
            match avail.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&avail[..pos]);
                    (pos + 1, Some(LineStatus::Line))
                }
                None => {
                    buf.extend_from_slice(avail);
                    (avail.len(), None)
                }
            }
        };
        r.consume(consumed);
        if buf.len() > MAX_LINE_BYTES {
            return Ok(LineStatus::TooLong);
        }
        if let Some(s) = status {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(s);
        }
    }
}

struct SessionCtx {
    sid: u64,
    token: Option<String>,
    out: Arc<Outbound>,
}

impl SessionCtx {
    fn err(&self, code: ErrCode, detail: &str) {
        self.out.push_line(format!("ERR {code} {detail}"));
    }
}

fn reader_loop(shared: Arc<Shared>, stream: TcpStream, sid: u64, out: Arc<Outbound>) {
    let mut reader = BufReader::with_capacity(16 * 1024, stream);
    let mut ctx = SessionCtx {
        sid,
        token: None,
        out,
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();
    loop {
        match shared.phase() {
            RUNNING => {}
            DRAINING => break, // the writer sends the GOODBYE after the drain
            _ => break,        // killed: socket is already reset
        }
        if ctx.out.is_closing() {
            break; // slow-consumer or BYE already decided the ending
        }
        match poll_line(&mut reader, &mut buf) {
            Ok(LineStatus::Timeout) => {
                if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    incgraph_obs::counter("service.reaped", 1);
                    ctx.out.push_goodbye("idle-timeout");
                    break;
                }
            }
            Ok(LineStatus::Eof) | Err(_) => break,
            Ok(LineStatus::TooLong) => {
                ctx.err(ErrCode::TooLarge, "line exceeds 1 MiB");
                ctx.out.push_goodbye("protocol-error");
                break;
            }
            Ok(LineStatus::Line) => {
                last_activity = Instant::now();
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                if !handle_line(&shared, &mut ctx, &line, &mut reader, &mut last_activity) {
                    break;
                }
            }
        }
    }
    // Session teardown. The DropSession send must mirror `submit`'s
    // pending accounting: the writer decrements for every job received.
    shared.pending.fetch_add(1, Ordering::Relaxed);
    if shared.jobs.send(Job::DropSession { sid }).is_err() {
        shared.pending.fetch_sub(1, Ordering::Relaxed);
    }
    if shared.phase() == DRAINING {
        // The writer owns the final GOODBYE: leave the slot and the
        // sender alive so the broadcast can reach this session.
        return;
    }
    // Normal exit (BYE/EOF/reap/kill): make sure the sender terminates.
    // A queued GOODBYE still drains; otherwise the queue closes cold.
    if !ctx.out.is_closing() {
        ctx.out.close_now();
    }
    shared.sessions().remove(&sid);
    incgraph_obs::gauge("service.sessions", shared.sessions().len() as u64);
}

/// Handles one parsed line. Returns `false` to end the session.
fn handle_line(
    shared: &Arc<Shared>,
    ctx: &mut SessionCtx,
    line: &str,
    reader: &mut BufReader<TcpStream>,
    last_activity: &mut Instant,
) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    let cmd = match protocol::parse_command(line) {
        Ok(c) => c,
        Err(e) => {
            ctx.err(ErrCode::BadCommand, &e.0);
            return true;
        }
    };
    if ctx.token.is_none() && !matches!(cmd, Command::Hello { .. }) {
        ctx.err(ErrCode::NeedHello, "say HELLO first");
        return true;
    }
    match cmd {
        Command::Hello { version, token } => {
            if ctx.token.is_some() {
                ctx.err(ErrCode::AlreadyHello, "session already established");
            } else if version != WIRE_VERSION {
                ctx.err(ErrCode::BadProto, &format!("server speaks {WIRE_VERSION}"));
                ctx.out.push_goodbye("protocol-error");
                return false;
            } else {
                ctx.token = Some(token);
                ctx.out
                    .push_line(format!("WELCOME {WIRE_VERSION} {}", ctx.sid));
            }
            true
        }
        Command::Ping => {
            ctx.out.push_line("PONG".into());
            true
        }
        Command::Bye => {
            ctx.out.push_goodbye("bye");
            false
        }
        Command::Status => {
            let pending = shared.pending.load(Ordering::Relaxed);
            let sessions = shared.sessions().len();
            match shared.store().as_ref() {
                None => ctx.err(ErrCode::ShuttingDown, "store is gone"),
                Some(store) => {
                    let (graphs, queries) = store.counts();
                    let phase = match shared.phase() {
                        RUNNING => "running",
                        DRAINING => "draining",
                        _ => "killed",
                    };
                    let mut line = format!(
                        "OK STATUS graphs={graphs} queries={queries} sessions={sessions} \
                         pending={pending} degraded={} phase={phase}",
                        store.is_degraded() as u8
                    );
                    if let Some(info) = shared
                        .cfg
                        .repl_graph
                        .as_deref()
                        .and_then(|g| store.repl_info(g))
                    {
                        line.push_str(&format!(
                            " role={} epoch={} repl_seq={} repl_sinks={} repl_lag={}",
                            shared.role().name(),
                            info.epoch,
                            info.last_seq,
                            shared.repl_sinks.load(Ordering::Relaxed),
                            shared.repl_lag.load(Ordering::Relaxed),
                        ));
                    }
                    ctx.out.push_line(line);
                }
            }
            true
        }
        Command::Query { qid } => {
            match shared.store().as_ref().and_then(|s| s.query(ctx.sid, &qid)) {
                Some((digest, seq)) => {
                    let mut line = format!("RESULT {qid} {seq} {}", digest.len());
                    for v in &digest {
                        line.push(' ');
                        line.push_str(&v.to_string());
                    }
                    ctx.out.push_line(line);
                }
                None => ctx.err(ErrCode::UnknownQuery, &format!("no query {qid}")),
            }
            true
        }
        Command::Shutdown => {
            if !shared.cfg.allow_remote_shutdown {
                ctx.err(ErrCode::BadCommand, "SHUTDOWN is disabled on this server");
                return true;
            }
            ctx.out.push_line("OK SHUTDOWN".into());
            shared
                .phase
                .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire)
                .ok();
            true
        }
        Command::Graph {
            name,
            nodes,
            directed,
        } => submit(
            shared,
            ctx,
            Job::Graph {
                name,
                nodes,
                directed,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::Register {
            qid,
            graph,
            class,
            source,
            pattern_seed,
        } => submit(
            shared,
            ctx,
            Job::Register {
                sid: ctx.sid,
                qid,
                graph,
                class,
                source,
                pattern_seed,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::Unregister { qid } => submit(
            shared,
            ctx,
            Job::Unregister {
                sid: ctx.sid,
                qid,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::Plan {
            qid,
            graph,
            pattern_seed,
            text,
        } => submit(
            shared,
            ctx,
            Job::Plan {
                sid: ctx.sid,
                qid,
                graph,
                pattern_seed,
                text,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::Unplan { qid } => submit(
            shared,
            ctx,
            Job::Unplan {
                sid: ctx.sid,
                qid,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::Planq { qid } => {
            match shared
                .store()
                .as_ref()
                .and_then(|s| s.plan_view(ctx.sid, &qid))
            {
                Some((rows, seq)) => {
                    ctx.out
                        .push_line(protocol::format_view_rows("VIEW", &qid, seq, &rows));
                }
                None => ctx.err(ErrCode::UnknownQuery, &format!("no plan {qid}")),
            }
            true
        }
        Command::UpdateHeader { graph, seq, k } => {
            read_and_submit_update(shared, ctx, reader, last_activity, graph, seq, k)
        }
        Command::Sync {
            graph,
            epoch,
            from_seq,
            crc,
            directed,
            nodes,
            force,
        } => submit(
            shared,
            ctx,
            Job::Sync {
                sid: ctx.sid,
                graph,
                epoch,
                from_seq,
                crc,
                directed,
                nodes,
                force,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::Watermark { seq } => {
            // Watermarks bypass BUSY shedding: dropping one only delays
            // gated acks until the next, but a BUSY line interleaved in
            // the replication stream would be noise the replica skips.
            shared.pending.fetch_add(1, Ordering::Relaxed);
            if shared
                .jobs
                .send(Job::Watermark { sid: ctx.sid, seq })
                .is_err()
            {
                shared.pending.fetch_sub(1, Ordering::Relaxed);
            }
            true
        }
        Command::Promote => submit(
            shared,
            ctx,
            Job::Promote {
                out: Arc::clone(&ctx.out),
            },
        ),
    }
}

/// Reads the `k` unit lines of an `UPDATE` body, then submits the batch.
/// A malformed body is a framing violation — the stream position is no
/// longer trustworthy, so the session ends.
fn read_and_submit_update(
    shared: &Arc<Shared>,
    ctx: &mut SessionCtx,
    reader: &mut BufReader<TcpStream>,
    last_activity: &mut Instant,
    graph: String,
    client_seq: u64,
    k: usize,
) -> bool {
    let max_units = shared
        .store()
        .as_ref()
        .map(|s| s.limits().max_batch_units)
        .unwrap_or(4096);
    if k > max_units {
        ctx.err(
            ErrCode::TooLarge,
            &format!("batch caps at {max_units} units"),
        );
        ctx.out.push_goodbye("protocol-error");
        return false;
    }
    let mut batch = UpdateBatch::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut read = 0usize;
    while read < k {
        if shared.phase() == KILLED {
            return false;
        }
        match poll_line(reader, &mut buf) {
            Ok(LineStatus::Timeout) => {
                if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    incgraph_obs::counter("service.reaped", 1);
                    ctx.out.push_goodbye("idle-timeout");
                    return false;
                }
            }
            Ok(LineStatus::Eof) | Err(_) => return false,
            Ok(LineStatus::TooLong) => {
                ctx.err(ErrCode::TooLarge, "line exceeds 1 MiB");
                ctx.out.push_goodbye("protocol-error");
                return false;
            }
            Ok(LineStatus::Line) => {
                *last_activity = Instant::now();
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                if let Err(e) = protocol::parse_update_line(&line, &mut batch) {
                    ctx.err(ErrCode::BadCommand, &e.0);
                    ctx.out.push_goodbye("protocol-error");
                    return false;
                }
                read += 1;
            }
        }
    }
    // The full body is read first so the stream stays framed; only then
    // is the batch judged. A non-primary refuses writes here — clients
    // redirect to the primary and retry the same sequence.
    if shared.shared_role_refuses_writes() {
        ctx.err(
            ErrCode::NotPrimary,
            &format!(
                "{} is read-only; send writes to the primary",
                shared.role().name()
            ),
        );
        return true;
    }
    // The dispatcher guarantees a HELLO preceded this, but a typed error
    // beats a panic if that invariant ever breaks: degrade to ERR and
    // keep the process up.
    let Some(token) = ctx.token.clone() else {
        ctx.err(ErrCode::NeedHello, "no session token for UPDATE");
        return true;
    };
    submit(
        shared,
        ctx,
        Job::Update {
            graph,
            token,
            client_seq,
            batch,
            out: Arc::clone(&ctx.out),
        },
    )
}

/// Admission-controlled submit to the writer.
fn submit(shared: &Arc<Shared>, ctx: &SessionCtx, job: Job) -> bool {
    if shared.phase() != RUNNING {
        ctx.err(ErrCode::ShuttingDown, "server is draining");
        return true;
    }
    if shared.pending.load(Ordering::Relaxed) >= shared.cfg.max_pending {
        incgraph_obs::counter("service.busy", 1);
        ctx.out
            .push_line(format!("BUSY {}", shared.cfg.retry_after_ms));
        return true;
    }
    shared.pending.fetch_add(1, Ordering::Relaxed);
    if shared.jobs.send(job).is_err() {
        shared.pending.fetch_sub(1, Ordering::Relaxed);
        ctx.err(ErrCode::ShuttingDown, "writer is gone");
    }
    true
}

/// Committed-but-unnotified ΔG batches, per graph, awaiting one
/// coalesced standing-query pass. Owned by the writer thread.
#[derive(Default)]
struct PendingNotify {
    /// `graph → applied batches`, oldest first. The graph list stays
    /// tiny (one entry per graph updated inside the window).
    by_graph: Vec<(String, Vec<incgraph_graph::AppliedBatch>)>,
    /// Total buffered batches across graphs (the `flush_ops` counter).
    batches: usize,
    /// When the oldest buffered batch was committed (the `flush_window`
    /// deadline anchor).
    oldest: Option<Instant>,
}

impl PendingNotify {
    fn push(&mut self, graph: &str, applied: incgraph_graph::AppliedBatch) {
        match self.by_graph.iter_mut().find(|(g, _)| g == graph) {
            Some((_, list)) => list.push(applied),
            None => self.by_graph.push((graph.to_string(), vec![applied])),
        }
        self.batches += 1;
        self.oldest.get_or_insert_with(Instant::now);
    }

    fn is_empty(&self) -> bool {
        self.batches == 0
    }

    fn deadline_due(&self, window: Duration) -> bool {
        self.oldest.is_some_and(|t| t.elapsed() >= window)
    }

    /// Runs the coalesced notification pass and empties the buffer.
    /// `store` is the caller's already-acquired write guard.
    fn flush(&mut self, store: &mut Store) {
        for (graph, batches) in self.by_graph.drain(..) {
            store.notify_queries(&graph, &batches);
        }
        self.batches = 0;
        self.oldest = None;
    }

    fn discard(&mut self) {
        self.by_graph.clear();
        self.batches = 0;
        self.oldest = None;
    }
}

/// One attached replication sink: the replica session's outbound queue
/// plus the highest sequence it has confirmed fsynced.
struct Sink {
    out: Arc<Outbound>,
    watermark: u64,
}

/// One client ack held back by semi-sync gating: released when every
/// live sink's watermark reaches `wal_seq`, when the last sink detaches,
/// or after `repl_ack_timeout`.
struct PendingAck {
    wal_seq: u64,
    line: String,
    out: Arc<Outbound>,
    since: Instant,
}

/// Writer-thread-owned mutable state (no locks: exactly one writer).
#[derive(Default)]
struct WriterState {
    pending_notify: PendingNotify,
    sinks: HashMap<u64, Sink>,
    pending_acks: VecDeque<PendingAck>,
    ships_since_digest: u64,
}

impl WriterState {
    /// Drops sinks whose outbound closed (slow consumer, disconnect) and
    /// publishes the live-sink count.
    fn prune_sinks(&mut self, shared: &Shared) {
        let before = self.sinks.len();
        self.sinks.retain(|_, s| !s.out.is_closing());
        if self.sinks.len() != before {
            incgraph_obs::counter("repl.sink_drops", (before - self.sinks.len()) as u64);
        }
        shared.repl_sinks.store(self.sinks.len(), Ordering::Relaxed);
    }

    /// Releases every gated ack the semi-sync rule now allows. With no
    /// live sinks there is nothing to wait for; otherwise an ack needs
    /// every sink's watermark at or past its sequence, or its timeout.
    fn release_acks(&mut self, shared: &Shared, committed: Option<u64>) {
        self.prune_sinks(shared);
        let min_wm = self.sinks.values().map(|s| s.watermark).min();
        let timeout = shared.cfg.repl_ack_timeout;
        while let Some(front) = self.pending_acks.front() {
            let due = match min_wm {
                None => true,
                Some(wm) => front.wal_seq <= wm || front.since.elapsed() >= timeout,
            };
            if !due {
                break;
            }
            let ack = self.pending_acks.pop_front().expect("front exists");
            ack.out.push_line(ack.line);
        }
        if let (Some(committed), Some(wm)) = (committed, min_wm) {
            let lag = committed.saturating_sub(wm);
            shared.repl_lag.store(lag, Ordering::Relaxed);
            incgraph_obs::gauge("repl.lag_seqs", lag);
        }
    }

    /// Pushes one line to every live sink.
    fn broadcast(&mut self, line: &str) {
        for sink in self.sinks.values() {
            sink.out.push_line(line.to_string());
            incgraph_obs::counter("repl.ship_bytes", line.len() as u64 + 1);
        }
    }
}

fn writer_loop(rx: mpsc::Receiver<Job>, shared: Arc<Shared>) {
    let flush_ops = shared.cfg.flush_ops.max(1);
    let flush_window = shared.cfg.flush_window;
    let mut st = WriterState::default();
    loop {
        // With batches buffered, wake early enough to honor the window.
        let tick = Duration::from_millis(25);
        let timeout = match st.pending_notify.oldest {
            Some(t) => (flush_window.saturating_sub(t.elapsed())).min(tick),
            None => tick,
        };
        match rx.recv_timeout(timeout) {
            Ok(job) => {
                shared.pending.fetch_sub(1, Ordering::Relaxed);
                match shared.phase() {
                    KILLED => {
                        st.pending_notify.discard(); // simulated death
                        continue;
                    }
                    _ => {
                        if process_job(&shared, job, &mut st) == JobOutcome::Crashed {
                            // Simulated process death mid-commit.
                            st.pending_notify.discard();
                            shared.phase.store(KILLED, Ordering::Release);
                            shared.kill_sessions();
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => match shared.phase() {
                KILLED => break,
                DRAINING
                    if shared.pending.load(Ordering::Relaxed) == 0
                        && st.pending_notify.is_empty() =>
                {
                    break
                }
                _ => {}
            },
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        // Timed-out gated acks release on the tick even when no
        // watermark arrives (sink death, partition).
        if !st.pending_acks.is_empty() || !st.sinks.is_empty() {
            st.release_acks(&shared, None);
        }
        // Flush outside job processing so both the count trigger and the
        // deadline trigger go through the same path.
        if !st.pending_notify.is_empty()
            && (st.pending_notify.batches >= flush_ops
                || st.pending_notify.deadline_due(flush_window))
        {
            let mut guard = shared.store_mut();
            match guard.as_mut() {
                Some(store) => st.pending_notify.flush(store),
                None => st.pending_notify.discard(),
            }
        }
    }
    // Exit path. Graceful: checkpoint, then goodbye every session.
    // Killed: drop everything where it stands.
    let killed = shared.phase() == KILLED;
    {
        let mut guard = shared.store_mut();
        if let Some(store) = guard.as_mut() {
            if !killed {
                // Queued updates were acked; their DELTAs must go out
                // before the goodbyes — and gated acks were committed,
                // so they go out too.
                for ack in st.pending_acks.drain(..) {
                    ack.out.push_line(ack.line);
                }
                st.pending_notify.flush(store);
                store.checkpoint_all();
            }
        }
        // Dropping the store releases the durable LOCK file.
        *guard = None;
    }
    if !killed {
        let sessions = shared.sessions();
        for slot in sessions.values() {
            slot.out.push_goodbye("shutting-down");
        }
    }
    shared
        .phase
        .store(if killed { KILLED } else { DRAINING }, Ordering::Release);
}

#[derive(PartialEq, Eq)]
enum JobOutcome {
    Done,
    Crashed,
}

fn process_job(shared: &Arc<Shared>, job: Job, st: &mut WriterState) -> JobOutcome {
    let mut guard = shared.store_mut();
    let Some(store) = guard.as_mut() else {
        st.pending_notify.discard();
        return JobOutcome::Done;
    };
    // Any non-commit job flushes buffered notifications first: a
    // `REGISTER` snapshots the committed graph, so a standing query
    // created mid-window must not later receive a DELTA for batches its
    // initial digest already includes (double-apply).
    if !st.pending_notify.is_empty()
        && !matches!(
            job,
            Job::Update { .. } | Job::ReplApply { .. } | Job::Watermark { .. }
        )
    {
        st.pending_notify.flush(store);
    }
    match job {
        Job::Graph {
            name,
            nodes,
            directed,
            out,
        } => {
            match store.open_graph(&name, nodes, directed) {
                Ok(()) => out.push_line(format!("OK GRAPH {name}")),
                Err((c, d)) => out.push_line(format!("ERR {c} {d}")),
            };
        }
        Job::Register {
            sid,
            qid,
            graph,
            class,
            source,
            pattern_seed,
            out,
        } => {
            match store.register(
                sid,
                &qid,
                &graph,
                &class,
                source,
                pattern_seed,
                Arc::clone(&out),
            ) {
                Ok(len) => out.push_line(format!("OK REGISTER {qid} {len}")),
                Err((c, d)) => out.push_line(format!("ERR {c} {d}")),
            };
        }
        Job::Unregister { sid, qid, out } => {
            match store.unregister(sid, &qid) {
                Ok(()) => out.push_line(format!("OK UNREGISTER {qid}")),
                Err((c, d)) => out.push_line(format!("ERR {c} {d}")),
            };
        }
        Job::Plan {
            sid,
            qid,
            graph,
            pattern_seed,
            text,
            out,
        } => {
            match store.register_plan(sid, &qid, &graph, pattern_seed, &text, Arc::clone(&out)) {
                Ok(rows) => out.push_line(format!("OK PLAN {qid} {rows}")),
                Err((c, d)) => out.push_line(format!("ERR {c} {d}")),
            };
        }
        Job::Unplan { sid, qid, out } => {
            match store.unregister_plan(sid, &qid) {
                Ok(()) => out.push_line(format!("OK UNPLAN {qid}")),
                Err((c, d)) => out.push_line(format!("ERR {c} {d}")),
            };
        }
        Job::Update {
            graph,
            token,
            client_seq,
            batch,
            out,
        } => match store.apply_update_deferred(&graph, &token, client_seq, &batch) {
            Ok((ack, applied)) => {
                // The ACK rides the per-batch commit + fsync; only the
                // standing-query notification is deferred to the flush.
                let dup = if ack.dup { " dup" } else { "" };
                let line = format!("ACK {} {} {}{dup}", ack.client_seq, ack.wal_seq, ack.units);
                let replicated = shared.cfg.repl_graph.as_deref() == Some(graph.as_str());
                if replicated && !ack.dup {
                    // Ship the fsynced record to every attached replica
                    // before deciding the ack's fate.
                    let record = encode_record(ack.wal_seq, &batch);
                    st.broadcast(&protocol::format_ship(
                        ack.wal_seq,
                        Some((&token, client_seq)),
                        &record,
                    ));
                    st.ships_since_digest += 1;
                    if shared.cfg.digest_every > 0
                        && st.ships_since_digest >= shared.cfg.digest_every
                        && !st.sinks.is_empty()
                    {
                        st.ships_since_digest = 0;
                        if let Some((seq, digest)) = store.repl_digest(&graph) {
                            st.broadcast(&protocol::format_digest(seq, &digest));
                        }
                    }
                }
                // Semi-sync gating: with live sinks attached, the ack
                // waits for their watermarks (or the timeout); without,
                // it goes out now. Dup re-acks reference an old sequence
                // and release immediately through the same queue.
                st.prune_sinks(shared);
                if replicated && !st.sinks.is_empty() {
                    st.pending_acks.push_back(PendingAck {
                        wal_seq: ack.wal_seq,
                        line,
                        out,
                        since: Instant::now(),
                    });
                    st.release_acks(
                        shared,
                        Some(store.repl_info(&graph).map_or(0, |i| i.last_seq)),
                    );
                } else {
                    out.push_line(line);
                }
                if let Some(applied) = applied {
                    st.pending_notify.push(&graph, applied);
                }
            }
            Err(UpdateError::Wire(c, d)) => {
                out.push_line(format!("ERR {c} {d}"));
            }
            Err(UpdateError::Crashed(p)) => {
                if incgraph_obs::enabled() {
                    incgraph_obs::event("service.crash", p.name());
                }
                return JobOutcome::Crashed;
            }
        },
        Job::DropSession { sid } => {
            if st.sinks.remove(&sid).is_some() {
                shared.repl_sinks.store(st.sinks.len(), Ordering::Relaxed);
                st.release_acks(shared, None);
            }
            store.drop_session(sid);
        }
        Job::Sync {
            sid,
            graph,
            epoch,
            from_seq,
            crc,
            directed,
            nodes,
            force,
            out,
        } => process_sync(
            shared, store, st, sid, &graph, epoch, from_seq, crc, directed, nodes, force, out,
        ),
        Job::Watermark { sid, seq } => {
            if let Some(sink) = st.sinks.get_mut(&sid) {
                sink.watermark = sink.watermark.max(seq);
                incgraph_obs::gauge("repl.watermark_seq", seq);
            }
            let committed = shared
                .cfg
                .repl_graph
                .as_deref()
                .and_then(|g| store.repl_info(g))
                .map(|i| i.last_seq);
            st.release_acks(shared, committed);
        }
        Job::Promote { out } => match shared.role() {
            Role::Replica => {
                let Some(graph) = shared.cfg.repl_graph.clone() else {
                    out.push_line(format!(
                        "ERR {} no replicated graph on this server",
                        ErrCode::BadCommand
                    ));
                    return JobOutcome::Done;
                };
                match store.bump_epoch(&graph) {
                    Ok(epoch) => {
                        shared.set_role(Role::Primary);
                        incgraph_obs::counter("repl.promotions", 1);
                        out.push_line(format!("OK PROMOTE {epoch}"));
                    }
                    Err((c, d)) => {
                        out.push_line(format!("ERR {c} {d}"));
                    }
                }
            }
            Role::Primary => {
                out.push_line(format!("ERR {} already primary", ErrCode::BadCommand));
            }
            Role::Fenced => {
                out.push_line(format!(
                    "ERR {} node is fenced; restart it as a replica to rejoin",
                    ErrCode::BadCommand
                ));
            }
        },
        Job::ReplApply {
            graph,
            seq,
            identity,
            batch,
            done,
        } => {
            if shared.role() != Role::Replica {
                // A promotion raced the stream: drop the ship on the
                // floor — this node now owns its own history.
                let _ = done.send(Err(format!("{} promoted mid-stream", ErrCode::NotPrimary)));
                return JobOutcome::Done;
            }
            let identity_ref = identity.as_ref().map(|(t, c)| (t.as_str(), *c));
            match store.apply_replicated(&graph, seq, identity_ref, &batch) {
                Ok(applied) => {
                    st.pending_notify.push(&graph, applied);
                    let _ = done.send(Ok(seq));
                }
                Err(UpdateError::Wire(c, d)) => {
                    let _ = done.send(Err(format!("{c} {d}")));
                }
                Err(UpdateError::Crashed(p)) => {
                    if incgraph_obs::enabled() {
                        incgraph_obs::event("service.crash", p.name());
                    }
                    let _ = done.send(Err(format!("{} injected crash", ErrCode::Store)));
                    return JobOutcome::Crashed;
                }
            }
        }
        Job::ReplAdopt {
            graph,
            payload,
            epoch,
            acks,
            done,
        } => {
            if shared.role() != Role::Replica {
                let _ = done.send(Err(format!("{} promoted mid-stream", ErrCode::NotPrimary)));
                return JobOutcome::Done;
            }
            match store.adopt_snapshot(&graph, &payload, epoch, &acks) {
                Ok(covered) => {
                    let _ = done.send(Ok(covered));
                }
                Err((c, d)) => {
                    let _ = done.send(Err(format!("{c} {d}")));
                }
            }
        }
        Job::AdoptEpoch { graph, epoch, done } => {
            if shared.role() != Role::Replica {
                let _ = done.send(Err(format!("{} promoted mid-stream", ErrCode::NotPrimary)));
                return JobOutcome::Done;
            }
            match store.adopt_epoch(&graph, epoch) {
                Ok(()) => {
                    let _ = done.send(Ok(()));
                }
                Err((c, d)) => {
                    let _ = done.send(Err(format!("{c} {d}")));
                }
            }
        }
    }
    JobOutcome::Done
}

/// Handles one `SYNC` handshake on the writer: fencing, shape
/// validation, tail-vs-snapshot decision, catch-up push, and sink
/// registration. Epoch comparison comes first — a higher epoch fences
/// this node no matter what else is wrong with the request.
#[allow(clippy::too_many_arguments)]
fn process_sync(
    shared: &Arc<Shared>,
    store: &mut Store,
    st: &mut WriterState,
    sid: u64,
    graph: &str,
    epoch: u64,
    from_seq: u64,
    crc: Option<u32>,
    directed: bool,
    nodes: usize,
    force: bool,
    out: Arc<Outbound>,
) {
    if shared.cfg.repl_graph.as_deref() != Some(graph) {
        out.push_line(format!(
            "ERR {} {graph} is not replicated on this server",
            ErrCode::UnknownGraph
        ));
        return;
    }
    let Some(info) = store.repl_info(graph) else {
        out.push_line(format!(
            "ERR {} {graph} is not durable",
            ErrCode::UnknownGraph
        ));
        return;
    };
    if epoch > info.epoch {
        // The requester has seen a later epoch than ours: we were
        // deposed while partitioned. Fence — refuse writes forever (a
        // restart as a replica rejoins cleanly) — so no batch is ever
        // double-acked by two primaries.
        if shared.role() == Role::Primary {
            shared.set_role(Role::Fenced);
            incgraph_obs::counter("repl.fenced", 1);
            if incgraph_obs::enabled() {
                incgraph_obs::event(
                    "repl.fenced",
                    &format!("our epoch {} vs peer {epoch}", info.epoch),
                );
            }
        }
        out.push_line(format!(
            "ERR {} this node is at epoch {} and is deposed",
            ErrCode::StaleEpoch,
            info.epoch
        ));
        return;
    }
    if shared.role() != Role::Primary {
        out.push_line(format!(
            "ERR {} {} does not serve the replication stream",
            ErrCode::NotPrimary,
            shared.role().name()
        ));
        return;
    }
    if info.directed != directed || info.nodes != nodes {
        out.push_line(format!(
            "ERR {} {graph} is {} with {} nodes",
            ErrCode::GraphMismatch,
            if info.directed {
                "directed"
            } else {
                "undirected"
            },
            info.nodes
        ));
        return;
    }
    incgraph_obs::counter("repl.syncs", 1);
    // Decide tail vs snapshot. A tail needs the replica's position to be
    // inside our retained history *and* its record CRC to match ours at
    // that position — anything else (divergence, pre-base lag, a future
    // sequence from a forked history, an explicit force, or a lag past
    // the configured bound) bootstraps from a snapshot.
    let lag_snap = info.last_seq.saturating_sub(from_seq) > shared.cfg.snapshot_lag;
    let out_of_range = from_seq < info.base_seq || from_seq > info.last_seq;
    let mut snap = force || out_of_range || lag_snap;
    let mut tail_ships = Vec::new();
    if !snap {
        match store.wal_catchup(graph, from_seq) {
            Ok((crc_at_from, ships)) => {
                let diverged = match (crc, crc_at_from) {
                    (Some(theirs), Some(ours)) => theirs != ours,
                    // from_seq == base: no record to compare, trust BASE.
                    (None, None) => false,
                    // One side has a record the other cannot name.
                    _ => from_seq != info.base_seq,
                };
                if diverged {
                    incgraph_obs::counter("repl.divergence", 1);
                    snap = true;
                } else {
                    tail_ships = ships;
                }
            }
            Err((c, d)) => {
                out.push_line(format!("ERR {c} {d}"));
                return;
            }
        }
    }
    if snap {
        let Some((snap_seq, payload, acks)) = store.encode_snapshot(graph) else {
            out.push_line(format!(
                "ERR {} {graph} cannot be snapshotted",
                ErrCode::Store
            ));
            return;
        };
        out.push_line(format!("OK SYNC snap {} {snap_seq}", info.epoch));
        // 256 KiB raw chunks: 512 KiB hexed + header, inside the 1 MiB
        // line cap.
        const CHUNK: usize = 256 * 1024;
        let total = payload.len().div_ceil(CHUNK).max(1);
        for (i, chunk) in payload.chunks(CHUNK).enumerate() {
            out.push_line(protocol::format_snap(i, total, chunk));
        }
        if payload.is_empty() {
            out.push_line(protocol::format_snap(0, 1, &[]));
        }
        for e in &acks {
            out.push_line(protocol::format_snapack(&e.token, e.client_seq, e.wal_seq));
        }
        out.push_line(protocol::format_snapend(
            snap_seq,
            incgraph_durable::crc::crc32(&payload),
        ));
        incgraph_obs::counter("repl.snapshots_sent", 1);
        st.sinks.insert(
            sid,
            Sink {
                out,
                watermark: snap_seq,
            },
        );
    } else {
        out.push_line(format!("OK SYNC tail {} {}", info.epoch, info.last_seq));
        for ship in &tail_ships {
            let identity = ship.identity.as_ref().map(|(t, c)| (t.as_str(), *c));
            out.push_line(protocol::format_ship(ship.seq, identity, &ship.record));
        }
        st.sinks.insert(
            sid,
            Sink {
                out,
                watermark: from_seq,
            },
        );
    }
    shared.repl_sinks.store(st.sinks.len(), Ordering::Relaxed);
}

fn sender_loop(shared: Arc<Shared>, stream: TcpStream, out: Arc<Outbound>) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut w = BufWriter::with_capacity(16 * 1024, stream);
    loop {
        match out.pop(Duration::from_millis(50)) {
            Some(msg) => {
                let goodbye = matches!(msg, OutMsg::Goodbye(_));
                let mut line = msg.render();
                line.push('\n');
                if w.write_all(line.as_bytes()).is_err() {
                    out.close_now();
                    break;
                }
                if goodbye {
                    let _ = w.flush();
                    let _ = w.get_ref().shutdown(Shutdown::Both);
                    break;
                }
                // Flush eagerly once the queue is drained; batches of
                // queued messages ride one syscall.
                if out.is_empty() && w.flush().is_err() {
                    out.close_now();
                    break;
                }
            }
            None => {
                if out.is_done() || shared.phase() == KILLED {
                    let _ = w.flush();
                    break;
                }
                if w.flush().is_err() {
                    out.close_now();
                    break;
                }
            }
        }
    }
}
