//! The threaded TCP server: sessions, deadlines, backpressure,
//! admission control, graceful drain, and abrupt (chaos) death.
//!
//! # Threading model
//!
//! - **acceptor** — one thread polling the nonblocking listener. Each
//!   accepted connection becomes a *session* with two small-stack
//!   threads: a **reader** parsing commands off the socket and a
//!   **sender** draining the session's bounded [`Outbound`] queue.
//! - **writer** — exactly one thread owns all mutation of the shared
//!   [`Store`]. Readers submit write jobs over an mpsc channel; `QUERY`
//!   and `STATUS` read under the shared lock without queueing. Single
//!   ownership of the commit path is what makes WAL append order, ack
//!   bookkeeping, and standing-query notification race-free.
//!
//! # Robustness behaviors (the contract `docs/SERVICE.md` documents)
//!
//! - **Deadlines**: reads poll with a short timeout so a dead peer
//!   cannot pin a thread; a session idle past `idle_timeout` is reaped
//!   with `GOODBYE idle-timeout`. Writes carry `write_timeout`.
//! - **Backpressure**: each session's outbound queue is bounded — past
//!   the soft cap deltas coalesce, past the hard cap the session dies
//!   with `ERR slow-consumer` (see [`outbound`](crate::outbound)).
//! - **Admission control**: when the writer's queue exceeds
//!   `max_pending` jobs, new write commands are shed with
//!   `BUSY <retry-after-ms>` instead of growing the queue without bound.
//!   A shed `UPDATE` was not applied; the client retries the same
//!   sequence number and the dedup table keeps it exactly-once.
//! - **Graceful shutdown** ([`ServerHandle::shutdown`]): stop accepting,
//!   drain queued jobs (their acks still go out), checkpoint durable
//!   graphs, `GOODBYE shutting-down` to every session.
//! - **Abrupt death** ([`ServerHandle::kill`], or an armed
//!   [`CrashPoint`] firing mid-commit): simulated `kill -9` — no drain,
//!   no checkpoint, no goodbyes; sockets are reset and the store is
//!   dropped where it stands. The chaos harness restarts on the same
//!   directory and recovery must hold.

use crate::outbound::{OutMsg, Outbound};
use crate::protocol::{self, Command, ErrCode, MAX_LINE_BYTES, WIRE_VERSION};
use crate::store::{Store, UpdateError};
use incgraph_durable::CrashPoint;
use incgraph_graph::{NodeId, UpdateBatch};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Socket read poll interval — the granularity at which idle and
    /// shutdown checks run. Short keeps reaping prompt; it is *not* the
    /// idle deadline itself.
    pub read_poll: Duration,
    /// Deadline for one socket write before the peer counts as dead.
    pub write_timeout: Duration,
    /// A session silent this long is reaped.
    pub idle_timeout: Duration,
    /// Max concurrent sessions; beyond it new connections get `BUSY`.
    pub max_sessions: usize,
    /// Max queued writer jobs before write commands get `BUSY`.
    pub max_pending: usize,
    /// Retry hint on `BUSY` lines, milliseconds.
    pub retry_after_ms: u64,
    /// Outbound queue soft cap (delta coalescing starts here).
    pub out_soft: usize,
    /// Outbound queue hard cap (slow-consumer disconnect).
    pub out_hard: usize,
    /// Whether the wire `SHUTDOWN` command is honored.
    pub allow_remote_shutdown: bool,
    /// Micro-batch coalescing: buffer up to this many committed update
    /// batches before running one coalesced standing-query notification
    /// pass. `1` (the default) notifies after every batch, the
    /// historical behavior. Commit, WAL fsync, and `ACK` always stay
    /// per-batch — coalescing only amortizes the per-query incremental
    /// fixpoint and `DELTA` push.
    pub flush_ops: usize,
    /// Micro-batch coalescing deadline: a partial buffer older than
    /// this flushes even if `flush_ops` was never reached, bounding
    /// `DELTA` staleness under a trickle of updates.
    pub flush_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            read_poll: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_sessions: 4096,
            max_pending: 1024,
            retry_after_ms: 50,
            out_soft: 64,
            out_hard: 1024,
            allow_remote_shutdown: true,
            flush_ops: 1,
            flush_window: Duration::from_millis(10),
        }
    }
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const KILLED: u8 = 2;

enum Job {
    Graph {
        name: String,
        nodes: usize,
        directed: bool,
        out: Arc<Outbound>,
    },
    Register {
        sid: u64,
        qid: String,
        graph: String,
        class: String,
        source: NodeId,
        pattern_seed: u64,
        out: Arc<Outbound>,
    },
    Unregister {
        sid: u64,
        qid: String,
        out: Arc<Outbound>,
    },
    Update {
        graph: String,
        token: String,
        client_seq: u64,
        batch: UpdateBatch,
        out: Arc<Outbound>,
    },
    DropSession {
        sid: u64,
    },
}

struct SessionSlot {
    out: Arc<Outbound>,
    stream: TcpStream,
}

struct Shared {
    cfg: ServerConfig,
    /// `None` once the writer dropped the store (drain finished or
    /// killed) — that drop releases the durable `LOCK` file.
    store: RwLock<Option<Store>>,
    jobs: mpsc::Sender<Job>,
    pending: AtomicUsize,
    phase: AtomicU8,
    sessions: Mutex<HashMap<u64, SessionSlot>>,
    next_sid: AtomicU64,
}

impl Shared {
    fn phase(&self) -> u8 {
        self.phase.load(Ordering::Acquire)
    }

    fn store(&self) -> std::sync::RwLockReadGuard<'_, Option<Store>> {
        self.store.read().unwrap_or_else(|e| e.into_inner())
    }

    fn store_mut(&self) -> std::sync::RwLockWriteGuard<'_, Option<Store>> {
        self.store.write().unwrap_or_else(|e| e.into_inner())
    }

    fn sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, SessionSlot>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Abrupt death: reset every session socket and drop queued output.
    fn kill_sessions(&self) {
        let mut sessions = self.sessions();
        for (_, slot) in sessions.drain() {
            slot.out.close_now();
            let _ = slot.stream.shutdown(Shutdown::Both);
        }
    }
}

/// Marker type: the namespace for [`Server::start`].
pub struct Server;

/// Handle to a running server: address, lifecycle, chaos hooks.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and writer threads, and returns the
    /// handle. The store moves behind the handle's shared lock; dropping
    /// the handle (or [`kill`](ServerHandle::kill) /
    /// [`shutdown`](ServerHandle::shutdown)) releases it.
    pub fn start(store: Store, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel::<Job>();
        let shared = Arc::new(Shared {
            cfg,
            store: RwLock::new(Some(store)),
            jobs: tx,
            pending: AtomicUsize::new(0),
            phase: AtomicU8::new(RUNNING),
            sessions: Mutex::new(HashMap::new()),
            next_sid: AtomicU64::new(1),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("svc-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        let writer = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("svc-writer".into())
                .spawn(move || writer_loop(rx, shared))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            writer: Some(writer),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful drain and blocks until it finishes: no new
    /// connections or write jobs, queued jobs processed (their acks
    /// delivered), durable graphs checkpointed, every session told
    /// `GOODBYE shutting-down`, store dropped.
    pub fn shutdown(&mut self) {
        self.shared
            .phase
            .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire)
            .ok();
        self.join();
    }

    /// Simulated `kill -9`: sockets reset, queued work and output
    /// dropped, **no** checkpoint and no goodbyes. The store is dropped
    /// where it stands, so a durable graph's next opener exercises real
    /// recovery.
    pub fn kill(&mut self) {
        self.shared.phase.store(KILLED, Ordering::Release);
        self.shared.kill_sessions();
        self.join();
    }

    /// Blocks until the server exits by itself (wire `SHUTDOWN`, or an
    /// injected crash firing).
    pub fn wait(&mut self) {
        self.join();
    }

    /// Whether the server has fully stopped.
    pub fn is_stopped(&self) -> bool {
        self.writer.is_none() || self.writer.as_ref().is_some_and(|w| w.is_finished())
    }

    /// Arms a one-shot [`CrashPoint`] on a durable graph: the next
    /// commit that reaches the point dies as if the process were killed
    /// there. Returns `false` if the graph is unknown or not durable.
    pub fn arm_crash(&self, graph: &str, point: CrashPoint) -> bool {
        match self.shared.store_mut().as_mut() {
            Some(store) => store.arm_crash(graph, Some(point)),
            None => false,
        }
    }

    /// Whether the store entered degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.shared.store().as_ref().is_some_and(Store::is_degraded)
    }

    /// Live session count (tests and ops).
    pub fn session_count(&self) -> usize {
        self.shared.sessions().len()
    }

    fn join(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.writer.is_some() || self.acceptor.is_some() {
            // Leaked handle: abrupt stop so the process can exit.
            self.shared.phase.store(KILLED, Ordering::Release);
            self.shared.kill_sessions();
            self.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.phase() != RUNNING {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                incgraph_obs::counter("service.accepts", 1);
                let sid = shared.next_sid.fetch_add(1, Ordering::Relaxed);
                if !spawn_session(&shared, stream, sid) {
                    incgraph_obs::counter("service.accept_shed", 1);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping the listener closes the socket; in-flight sessions are
    // finished by their own threads (or killed by the handle).
}

fn spawn_session(shared: &Arc<Shared>, stream: TcpStream, sid: u64) -> bool {
    let cfg = &shared.cfg;
    {
        let sessions = shared.sessions();
        if sessions.len() >= cfg.max_sessions {
            // Shed at the door with the same BUSY shape commands get —
            // on a throwaway thread with a tight timeout, so a peer
            // that connects and never reads cannot stall the accept
            // loop for the full write_timeout per shed connection.
            let mut s = stream;
            let retry_after_ms = cfg.retry_after_ms;
            let spawned = thread::Builder::new()
                .name("svc-shed".into())
                .stack_size(64 * 1024)
                .spawn(move || {
                    let _ = s.set_write_timeout(Some(Duration::from_millis(100)));
                    let _ = s.write_all(format!("BUSY {retry_after_ms}\n").as_bytes());
                    let _ = s.shutdown(Shutdown::Both);
                });
            // If the spawn fails the socket just drops; the client sees
            // a reset instead of BUSY, which is still a shed.
            drop(spawned);
            return false;
        }
    }
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_poll));
    let out = Arc::new(Outbound::new(
        cfg.out_soft,
        cfg.out_hard,
        shared
            .store()
            .as_ref()
            .map(|s| s.limits().max_delta_entries)
            .unwrap_or(256),
    ));
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    };
    shared.sessions().insert(
        sid,
        SessionSlot {
            out: Arc::clone(&out),
            stream: match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return false,
            },
        },
    );
    incgraph_obs::gauge("service.sessions", shared.sessions().len() as u64);
    let reader = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(&out);
        thread::Builder::new()
            .name(format!("svc-r{sid}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                reader_loop(shared, stream, sid, out);
            })
    };
    let sender = {
        let shared = Arc::clone(shared);
        thread::Builder::new()
            .name(format!("svc-w{sid}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                sender_loop(shared, write_stream, out);
            })
    };
    if reader.is_err() || sender.is_err() {
        shared.sessions().remove(&sid);
        return false;
    }
    true
}

/// One bounded line read. `buf` accumulates across timeout polls so a
/// slowly-arriving line is not lost.
enum LineStatus {
    Line,
    Eof,
    Timeout,
    TooLong,
}

fn poll_line(r: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> io::Result<LineStatus> {
    loop {
        let (consumed, status) = {
            let avail = match r.fill_buf() {
                Ok(a) => a,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineStatus::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if avail.is_empty() {
                return Ok(LineStatus::Eof);
            }
            match avail.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&avail[..pos]);
                    (pos + 1, Some(LineStatus::Line))
                }
                None => {
                    buf.extend_from_slice(avail);
                    (avail.len(), None)
                }
            }
        };
        r.consume(consumed);
        if buf.len() > MAX_LINE_BYTES {
            return Ok(LineStatus::TooLong);
        }
        if let Some(s) = status {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(s);
        }
    }
}

struct SessionCtx {
    sid: u64,
    token: Option<String>,
    out: Arc<Outbound>,
}

impl SessionCtx {
    fn err(&self, code: ErrCode, detail: &str) {
        self.out.push_line(format!("ERR {code} {detail}"));
    }
}

fn reader_loop(shared: Arc<Shared>, stream: TcpStream, sid: u64, out: Arc<Outbound>) {
    let mut reader = BufReader::with_capacity(16 * 1024, stream);
    let mut ctx = SessionCtx {
        sid,
        token: None,
        out,
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();
    loop {
        match shared.phase() {
            RUNNING => {}
            DRAINING => break, // the writer sends the GOODBYE after the drain
            _ => break,        // killed: socket is already reset
        }
        if ctx.out.is_closing() {
            break; // slow-consumer or BYE already decided the ending
        }
        match poll_line(&mut reader, &mut buf) {
            Ok(LineStatus::Timeout) => {
                if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    incgraph_obs::counter("service.reaped", 1);
                    ctx.out.push_goodbye("idle-timeout");
                    break;
                }
            }
            Ok(LineStatus::Eof) | Err(_) => break,
            Ok(LineStatus::TooLong) => {
                ctx.err(ErrCode::TooLarge, "line exceeds 1 MiB");
                ctx.out.push_goodbye("protocol-error");
                break;
            }
            Ok(LineStatus::Line) => {
                last_activity = Instant::now();
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                if !handle_line(&shared, &mut ctx, &line, &mut reader, &mut last_activity) {
                    break;
                }
            }
        }
    }
    // Session teardown. The DropSession send must mirror `submit`'s
    // pending accounting: the writer decrements for every job received.
    shared.pending.fetch_add(1, Ordering::Relaxed);
    if shared.jobs.send(Job::DropSession { sid }).is_err() {
        shared.pending.fetch_sub(1, Ordering::Relaxed);
    }
    if shared.phase() == DRAINING {
        // The writer owns the final GOODBYE: leave the slot and the
        // sender alive so the broadcast can reach this session.
        return;
    }
    // Normal exit (BYE/EOF/reap/kill): make sure the sender terminates.
    // A queued GOODBYE still drains; otherwise the queue closes cold.
    if !ctx.out.is_closing() {
        ctx.out.close_now();
    }
    shared.sessions().remove(&sid);
    incgraph_obs::gauge("service.sessions", shared.sessions().len() as u64);
}

/// Handles one parsed line. Returns `false` to end the session.
fn handle_line(
    shared: &Arc<Shared>,
    ctx: &mut SessionCtx,
    line: &str,
    reader: &mut BufReader<TcpStream>,
    last_activity: &mut Instant,
) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    let cmd = match protocol::parse_command(line) {
        Ok(c) => c,
        Err(e) => {
            ctx.err(ErrCode::BadCommand, &e.0);
            return true;
        }
    };
    if ctx.token.is_none() && !matches!(cmd, Command::Hello { .. }) {
        ctx.err(ErrCode::NeedHello, "say HELLO first");
        return true;
    }
    match cmd {
        Command::Hello { version, token } => {
            if ctx.token.is_some() {
                ctx.err(ErrCode::AlreadyHello, "session already established");
            } else if version != WIRE_VERSION {
                ctx.err(ErrCode::BadProto, &format!("server speaks {WIRE_VERSION}"));
                ctx.out.push_goodbye("protocol-error");
                return false;
            } else {
                ctx.token = Some(token);
                ctx.out
                    .push_line(format!("WELCOME {WIRE_VERSION} {}", ctx.sid));
            }
            true
        }
        Command::Ping => {
            ctx.out.push_line("PONG".into());
            true
        }
        Command::Bye => {
            ctx.out.push_goodbye("bye");
            false
        }
        Command::Status => {
            let pending = shared.pending.load(Ordering::Relaxed);
            let sessions = shared.sessions().len();
            match shared.store().as_ref() {
                None => ctx.err(ErrCode::ShuttingDown, "store is gone"),
                Some(store) => {
                    let (graphs, queries) = store.counts();
                    let phase = match shared.phase() {
                        RUNNING => "running",
                        DRAINING => "draining",
                        _ => "killed",
                    };
                    ctx.out.push_line(format!(
                        "OK STATUS graphs={graphs} queries={queries} sessions={sessions} \
                         pending={pending} degraded={} phase={phase}",
                        store.is_degraded() as u8
                    ));
                }
            }
            true
        }
        Command::Query { qid } => {
            match shared.store().as_ref().and_then(|s| s.query(ctx.sid, &qid)) {
                Some((digest, seq)) => {
                    let mut line = format!("RESULT {qid} {seq} {}", digest.len());
                    for v in &digest {
                        line.push(' ');
                        line.push_str(&v.to_string());
                    }
                    ctx.out.push_line(line);
                }
                None => ctx.err(ErrCode::UnknownQuery, &format!("no query {qid}")),
            }
            true
        }
        Command::Shutdown => {
            if !shared.cfg.allow_remote_shutdown {
                ctx.err(ErrCode::BadCommand, "SHUTDOWN is disabled on this server");
                return true;
            }
            ctx.out.push_line("OK SHUTDOWN".into());
            shared
                .phase
                .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire)
                .ok();
            true
        }
        Command::Graph {
            name,
            nodes,
            directed,
        } => submit(
            shared,
            ctx,
            Job::Graph {
                name,
                nodes,
                directed,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::Register {
            qid,
            graph,
            class,
            source,
            pattern_seed,
        } => submit(
            shared,
            ctx,
            Job::Register {
                sid: ctx.sid,
                qid,
                graph,
                class,
                source,
                pattern_seed,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::Unregister { qid } => submit(
            shared,
            ctx,
            Job::Unregister {
                sid: ctx.sid,
                qid,
                out: Arc::clone(&ctx.out),
            },
        ),
        Command::UpdateHeader { graph, seq, k } => {
            read_and_submit_update(shared, ctx, reader, last_activity, graph, seq, k)
        }
    }
}

/// Reads the `k` unit lines of an `UPDATE` body, then submits the batch.
/// A malformed body is a framing violation — the stream position is no
/// longer trustworthy, so the session ends.
fn read_and_submit_update(
    shared: &Arc<Shared>,
    ctx: &mut SessionCtx,
    reader: &mut BufReader<TcpStream>,
    last_activity: &mut Instant,
    graph: String,
    client_seq: u64,
    k: usize,
) -> bool {
    let max_units = shared
        .store()
        .as_ref()
        .map(|s| s.limits().max_batch_units)
        .unwrap_or(4096);
    if k > max_units {
        ctx.err(
            ErrCode::TooLarge,
            &format!("batch caps at {max_units} units"),
        );
        ctx.out.push_goodbye("protocol-error");
        return false;
    }
    let mut batch = UpdateBatch::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut read = 0usize;
    while read < k {
        if shared.phase() == KILLED {
            return false;
        }
        match poll_line(reader, &mut buf) {
            Ok(LineStatus::Timeout) => {
                if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    incgraph_obs::counter("service.reaped", 1);
                    ctx.out.push_goodbye("idle-timeout");
                    return false;
                }
            }
            Ok(LineStatus::Eof) | Err(_) => return false,
            Ok(LineStatus::TooLong) => {
                ctx.err(ErrCode::TooLarge, "line exceeds 1 MiB");
                ctx.out.push_goodbye("protocol-error");
                return false;
            }
            Ok(LineStatus::Line) => {
                *last_activity = Instant::now();
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                if let Err(e) = protocol::parse_update_line(&line, &mut batch) {
                    ctx.err(ErrCode::BadCommand, &e.0);
                    ctx.out.push_goodbye("protocol-error");
                    return false;
                }
                read += 1;
            }
        }
    }
    let token = ctx.token.clone().expect("checked before dispatch");
    submit(
        shared,
        ctx,
        Job::Update {
            graph,
            token,
            client_seq,
            batch,
            out: Arc::clone(&ctx.out),
        },
    )
}

/// Admission-controlled submit to the writer.
fn submit(shared: &Arc<Shared>, ctx: &SessionCtx, job: Job) -> bool {
    if shared.phase() != RUNNING {
        ctx.err(ErrCode::ShuttingDown, "server is draining");
        return true;
    }
    if shared.pending.load(Ordering::Relaxed) >= shared.cfg.max_pending {
        incgraph_obs::counter("service.busy", 1);
        ctx.out
            .push_line(format!("BUSY {}", shared.cfg.retry_after_ms));
        return true;
    }
    shared.pending.fetch_add(1, Ordering::Relaxed);
    if shared.jobs.send(job).is_err() {
        shared.pending.fetch_sub(1, Ordering::Relaxed);
        ctx.err(ErrCode::ShuttingDown, "writer is gone");
    }
    true
}

/// Committed-but-unnotified ΔG batches, per graph, awaiting one
/// coalesced standing-query pass. Owned by the writer thread.
#[derive(Default)]
struct PendingNotify {
    /// `graph → applied batches`, oldest first. The graph list stays
    /// tiny (one entry per graph updated inside the window).
    by_graph: Vec<(String, Vec<incgraph_graph::AppliedBatch>)>,
    /// Total buffered batches across graphs (the `flush_ops` counter).
    batches: usize,
    /// When the oldest buffered batch was committed (the `flush_window`
    /// deadline anchor).
    oldest: Option<Instant>,
}

impl PendingNotify {
    fn push(&mut self, graph: &str, applied: incgraph_graph::AppliedBatch) {
        match self.by_graph.iter_mut().find(|(g, _)| g == graph) {
            Some((_, list)) => list.push(applied),
            None => self.by_graph.push((graph.to_string(), vec![applied])),
        }
        self.batches += 1;
        self.oldest.get_or_insert_with(Instant::now);
    }

    fn is_empty(&self) -> bool {
        self.batches == 0
    }

    fn deadline_due(&self, window: Duration) -> bool {
        self.oldest.is_some_and(|t| t.elapsed() >= window)
    }

    /// Runs the coalesced notification pass and empties the buffer.
    /// `store` is the caller's already-acquired write guard.
    fn flush(&mut self, store: &mut Store) {
        for (graph, batches) in self.by_graph.drain(..) {
            store.notify_queries(&graph, &batches);
        }
        self.batches = 0;
        self.oldest = None;
    }

    fn discard(&mut self) {
        self.by_graph.clear();
        self.batches = 0;
        self.oldest = None;
    }
}

fn writer_loop(rx: mpsc::Receiver<Job>, shared: Arc<Shared>) {
    let flush_ops = shared.cfg.flush_ops.max(1);
    let flush_window = shared.cfg.flush_window;
    let mut pending_notify = PendingNotify::default();
    loop {
        // With batches buffered, wake early enough to honor the window.
        let tick = Duration::from_millis(25);
        let timeout = match pending_notify.oldest {
            Some(t) => (flush_window.saturating_sub(t.elapsed())).min(tick),
            None => tick,
        };
        match rx.recv_timeout(timeout) {
            Ok(job) => {
                shared.pending.fetch_sub(1, Ordering::Relaxed);
                match shared.phase() {
                    KILLED => {
                        pending_notify.discard(); // simulated death
                        continue;
                    }
                    _ => {
                        if process_job(&shared, job, &mut pending_notify) == JobOutcome::Crashed {
                            // Simulated process death mid-commit.
                            pending_notify.discard();
                            shared.phase.store(KILLED, Ordering::Release);
                            shared.kill_sessions();
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => match shared.phase() {
                KILLED => break,
                DRAINING
                    if shared.pending.load(Ordering::Relaxed) == 0 && pending_notify.is_empty() =>
                {
                    break
                }
                _ => {}
            },
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        // Flush outside job processing so both the count trigger and the
        // deadline trigger go through the same path.
        if !pending_notify.is_empty()
            && (pending_notify.batches >= flush_ops || pending_notify.deadline_due(flush_window))
        {
            let mut guard = shared.store_mut();
            match guard.as_mut() {
                Some(store) => pending_notify.flush(store),
                None => pending_notify.discard(),
            }
        }
    }
    // Exit path. Graceful: checkpoint, then goodbye every session.
    // Killed: drop everything where it stands.
    let killed = shared.phase() == KILLED;
    {
        let mut guard = shared.store_mut();
        if let Some(store) = guard.as_mut() {
            if !killed {
                // Queued updates were acked; their DELTAs must go out
                // before the goodbyes.
                pending_notify.flush(store);
                store.checkpoint_all();
            }
        }
        // Dropping the store releases the durable LOCK file.
        *guard = None;
    }
    if !killed {
        let sessions = shared.sessions();
        for slot in sessions.values() {
            slot.out.push_goodbye("shutting-down");
        }
    }
    shared
        .phase
        .store(if killed { KILLED } else { DRAINING }, Ordering::Release);
}

#[derive(PartialEq, Eq)]
enum JobOutcome {
    Done,
    Crashed,
}

fn process_job(shared: &Arc<Shared>, job: Job, pending_notify: &mut PendingNotify) -> JobOutcome {
    let mut guard = shared.store_mut();
    let Some(store) = guard.as_mut() else {
        pending_notify.discard();
        return JobOutcome::Done;
    };
    // Any non-Update job flushes buffered notifications first: a
    // `REGISTER` snapshots the committed graph, so a standing query
    // created mid-window must not later receive a DELTA for batches its
    // initial digest already includes (double-apply).
    if !pending_notify.is_empty() && !matches!(job, Job::Update { .. }) {
        pending_notify.flush(store);
    }
    match job {
        Job::Graph {
            name,
            nodes,
            directed,
            out,
        } => {
            match store.open_graph(&name, nodes, directed) {
                Ok(()) => out.push_line(format!("OK GRAPH {name}")),
                Err((c, d)) => out.push_line(format!("ERR {c} {d}")),
            };
        }
        Job::Register {
            sid,
            qid,
            graph,
            class,
            source,
            pattern_seed,
            out,
        } => {
            match store.register(
                sid,
                &qid,
                &graph,
                &class,
                source,
                pattern_seed,
                Arc::clone(&out),
            ) {
                Ok(len) => out.push_line(format!("OK REGISTER {qid} {len}")),
                Err((c, d)) => out.push_line(format!("ERR {c} {d}")),
            };
        }
        Job::Unregister { sid, qid, out } => {
            match store.unregister(sid, &qid) {
                Ok(()) => out.push_line(format!("OK UNREGISTER {qid}")),
                Err((c, d)) => out.push_line(format!("ERR {c} {d}")),
            };
        }
        Job::Update {
            graph,
            token,
            client_seq,
            batch,
            out,
        } => match store.apply_update_deferred(&graph, &token, client_seq, &batch) {
            Ok((ack, applied)) => {
                // The ACK rides the per-batch commit + fsync; only the
                // standing-query notification is deferred to the flush.
                let dup = if ack.dup { " dup" } else { "" };
                out.push_line(format!(
                    "ACK {} {} {}{dup}",
                    ack.client_seq, ack.wal_seq, ack.units
                ));
                if let Some(applied) = applied {
                    pending_notify.push(&graph, applied);
                }
            }
            Err(UpdateError::Wire(c, d)) => {
                out.push_line(format!("ERR {c} {d}"));
            }
            Err(UpdateError::Crashed(p)) => {
                if incgraph_obs::enabled() {
                    incgraph_obs::event("service.crash", p.name());
                }
                return JobOutcome::Crashed;
            }
        },
        Job::DropSession { sid } => {
            store.drop_session(sid);
        }
    }
    JobOutcome::Done
}

fn sender_loop(shared: Arc<Shared>, stream: TcpStream, out: Arc<Outbound>) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut w = BufWriter::with_capacity(16 * 1024, stream);
    loop {
        match out.pop(Duration::from_millis(50)) {
            Some(msg) => {
                let goodbye = matches!(msg, OutMsg::Goodbye(_));
                let mut line = msg.render();
                line.push('\n');
                if w.write_all(line.as_bytes()).is_err() {
                    out.close_now();
                    break;
                }
                if goodbye {
                    let _ = w.flush();
                    let _ = w.get_ref().shutdown(Shutdown::Both);
                    break;
                }
                // Flush eagerly once the queue is drained; batches of
                // queued messages ride one syscall.
                if out.is_empty() && w.flush().is_err() {
                    out.close_now();
                    break;
                }
            }
            None => {
                if out.is_done() || shared.phase() == KILLED {
                    let _ = w.flush();
                    break;
                }
                if w.flush().is_err() {
                    out.close_now();
                    break;
                }
            }
        }
    }
}
