//! The `incgraph load` harness: many concurrent sessions, per-class
//! latency percentiles.
//!
//! Each worker session owns a private named graph, registers one
//! standing query (classes round-robin across the seven
//! [`QueryClass`]es), and streams seeded random `ΔG` batches, timing
//! each `UPDATE`→`ACK` round trip. Latencies are recorded through the
//! observability registry under the class scope
//! (`service.load.latency_us`), so the same [`Histogram`] machinery that
//! powers profiling yields the p50/p99 per class here.
//!
//! `BUSY` sheds are retried with the server's hint and counted — under
//! deliberate overload the report shows load shedding working instead of
//! the harness failing.
//!
//! [`Histogram`]: incgraph_obs::Histogram

use crate::client::{Client, ClientError};
use incgraph_algos::QueryClass;
use incgraph_graph::UpdateBatch;
use incgraph_obs::Registry;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent sessions to drive.
    pub sessions: usize,
    /// Batches each session sends.
    pub batches_per_session: usize,
    /// Unit updates per batch.
    pub units_per_batch: usize,
    /// Nodes in each session's private graph.
    pub nodes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            sessions: 64,
            batches_per_session: 20,
            units_per_batch: 8,
            nodes: 64,
            seed: 0xC0FFEE,
        }
    }
}

/// Latency summary for one query class.
#[derive(Clone, Debug)]
pub struct ClassPercentiles {
    /// Class name (e.g. `sssp`).
    pub class: &'static str,
    /// Acked batches timed under this class.
    pub count: u64,
    /// Median `UPDATE`→`ACK` round trip, microseconds.
    pub p50_us: u64,
    /// 99th percentile round trip, microseconds.
    pub p99_us: u64,
    /// Worst observed round trip, microseconds.
    pub max_us: u64,
}

/// Outcome of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Sessions that completed their full schedule.
    pub sessions_ok: usize,
    /// Sessions that errored out.
    pub sessions_failed: usize,
    /// Total acknowledged batches.
    pub batches_acked: u64,
    /// Total `BUSY` sheds absorbed by retries.
    pub busy_sheds: u64,
    /// Total `DELTA` notifications received.
    pub deltas_received: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-class latency percentiles.
    pub classes: Vec<ClassPercentiles>,
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "load: {} ok / {} failed sessions, {} acked batches, {} busy sheds, \
             {} deltas, {:.2}s",
            self.sessions_ok,
            self.sessions_failed,
            self.batches_acked,
            self.busy_sheds,
            self.deltas_received,
            self.elapsed.as_secs_f64()
        )?;
        for c in &self.classes {
            writeln!(
                f,
                "  {:<6} n={:<7} p50={}us p99={}us max={}us",
                c.class, c.count, c.p50_us, c.p99_us, c.max_us
            )?;
        }
        Ok(())
    }
}

const LATENCY_METRIC: &str = "service.load.latency_us";

struct Shared {
    acked: AtomicU64,
    busy: AtomicU64,
    deltas: AtomicU64,
}

/// Runs the load harness against a live server and reports per-class
/// percentiles. Installs its own observability registry for the run
/// (restoring nothing afterwards — callers owning a recorder should
/// snapshot it first).
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let registry = Arc::new(Registry::new());
    incgraph_obs::install(registry.clone());
    let shared = Arc::new(Shared {
        acked: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        deltas: AtomicU64::new(0),
    });
    let start = Instant::now();
    let mut handles = Vec::with_capacity(cfg.sessions);
    let mut failed = 0usize;
    for i in 0..cfg.sessions {
        let cfg = cfg.clone();
        let shared = Arc::clone(&shared);
        // A spawn refusal (OS thread exhaustion) downgrades this
        // session to "failed" instead of sinking the whole run.
        match thread::Builder::new()
            .name(format!("load-{i}"))
            .stack_size(256 * 1024)
            .spawn(move || worker(i, &cfg, &shared))
        {
            Ok(h) => handles.push(h),
            Err(e) => {
                failed += 1;
                if incgraph_obs::enabled() {
                    incgraph_obs::event("service.load.spawn_failed", &e.to_string());
                }
            }
        }
    }
    let mut ok = 0usize;
    for h in handles {
        match h.join() {
            Ok(Ok(())) => ok += 1,
            _ => failed += 1,
        }
    }
    let elapsed = start.elapsed();
    incgraph_obs::uninstall();
    let snap = registry.snapshot();
    let mut classes = Vec::new();
    for class in QueryClass::ALL {
        let key = (class.name().to_string(), LATENCY_METRIC.to_string());
        if let Some(h) = snap.hists.get(&key) {
            classes.push(ClassPercentiles {
                class: class.name(),
                count: h.count(),
                p50_us: h.quantile(0.50),
                p99_us: h.quantile(0.99),
                max_us: h.max(),
            });
        }
    }
    LoadReport {
        sessions_ok: ok,
        sessions_failed: failed,
        batches_acked: shared.acked.load(Ordering::Relaxed),
        busy_sheds: shared.busy.load(Ordering::Relaxed),
        deltas_received: shared.deltas.load(Ordering::Relaxed),
        elapsed,
        classes,
    }
}

fn worker(i: usize, cfg: &LoadConfig, shared: &Shared) -> Result<(), ClientError> {
    let class = QueryClass::ALL[i % QueryClass::ALL.len()];
    let token = format!("load-{i}");
    let mut client = Client::connect_retry(cfg.addr, &token, 50, Duration::from_millis(20))?;
    let graph = format!("lg{i}");
    // Undirected satisfies every class's shape requirement.
    client.graph(&graph, cfg.nodes, false)?;
    client.register("q0", &graph, class.name(), 0, Some(cfg.seed))?;
    let mut rng = cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for k in 1..=cfg.batches_per_session as u64 {
        let mut batch = UpdateBatch::new();
        for _ in 0..cfg.units_per_batch {
            let u = (next() as usize % cfg.nodes) as u32;
            let mut v = (next() as usize % cfg.nodes) as u32;
            if v == u {
                v = (v + 1) % cfg.nodes as u32;
            }
            if next() % 4 == 0 {
                batch.delete(u, v);
            } else {
                // Weight is a function of the endpoints so re-inserting
                // an existing edge is always the benign no-op case, never
                // a conflicting-insert rejection.
                batch.insert(u, v, 1 + (u + v) % 8);
            }
        }
        let t0 = Instant::now();
        let mut tries = 0usize;
        loop {
            match client.update(&graph, k, &batch) {
                Ok(_) => break,
                Err(ClientError::Busy { retry_after_ms }) => {
                    shared.busy.fetch_add(1, Ordering::Relaxed);
                    tries += 1;
                    if tries > 200 {
                        return Err(ClientError::Busy { retry_after_ms });
                    }
                    thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 200)));
                }
                Err(e) => return Err(e),
            }
        }
        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        {
            let _scope = incgraph_obs::class_scope(class.name());
            incgraph_obs::observe(LATENCY_METRIC, us);
        }
        shared.acked.fetch_add(1, Ordering::Relaxed);
        shared
            .deltas
            .fetch_add(client.take_deltas().len() as u64, Ordering::Relaxed);
    }
    shared
        .deltas
        .fetch_add(client.take_deltas().len() as u64, Ordering::Relaxed);
    let _ = client.bye();
    Ok(())
}
