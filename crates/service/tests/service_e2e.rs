//! End-to-end tests over real sockets: handshake, standing queries,
//! exactly-once retries, admission control, idle reaping, graceful
//! drain, and kill/recover on a durable store.

use incgraph_durable::{DurableError, DurableOptions};
use incgraph_graph::UpdateBatch;
use incgraph_service::client::{Client, ClientError, Reply};
use incgraph_service::load::{run_load, LoadConfig};
use incgraph_service::server::{Server, ServerConfig, ServerHandle};
use incgraph_service::store::{Store, StoreLimits};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "incgraph-svc-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        read_poll: Duration::from_millis(10),
        idle_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

fn memory_server(cfg: ServerConfig) -> ServerHandle {
    Server::start(Store::new(StoreLimits::default()), cfg).expect("start server")
}

#[test]
fn roundtrip_register_update_delta_query() {
    let mut server = memory_server(quick_cfg());
    let mut c = Client::connect(server.addr(), "alice").unwrap();
    assert!(c.sid() > 0);
    c.ping().unwrap();
    c.graph("g0", 16, false).unwrap();
    let digest_len = c.register("q1", "g0", "sssp", 0, None).unwrap();
    assert!(digest_len > 0);

    let mut batch = UpdateBatch::new();
    batch.insert(0, 1, 2).insert(1, 2, 3);
    let ack = c.update("g0", 1, &batch).unwrap();
    assert_eq!((ack.client_seq, ack.wal_seq, ack.units), (1, 1, 2));
    assert!(!ack.dup);

    let delta = c
        .poll_delta(Duration::from_secs(5))
        .unwrap()
        .expect("a DELTA should follow the batch");
    assert_eq!(delta.qid, "q1");
    assert_eq!(delta.wal_seq, 1);

    let (seq, digest) = c.query("q1").unwrap();
    assert_eq!(seq, 1);
    assert_eq!(digest.len(), digest_len);

    let status = c.status().unwrap();
    assert!(status.contains("graphs=1"), "{status}");
    assert!(status.contains("degraded=0"), "{status}");

    assert_eq!(c.bye().unwrap(), "bye");
    server.shutdown();
}

#[test]
fn exactly_once_dup_ack_and_seq_gap() {
    let mut server = memory_server(quick_cfg());
    let mut c = Client::connect(server.addr(), "bob").unwrap();
    c.graph("g0", 8, true).unwrap();

    let mut b1 = UpdateBatch::new();
    b1.insert(0, 1, 1);
    let a1 = c.update("g0", 1, &b1).unwrap();
    assert!(!a1.dup);

    // Retry of an acked sequence re-acks without re-applying.
    let a1r = c.update("g0", 1, &b1).unwrap();
    assert!(a1r.dup);
    assert_eq!(a1r.wal_seq, a1.wal_seq);

    // Skipping ahead is a typed error, not silent reordering.
    let mut b3 = UpdateBatch::new();
    b3.insert(1, 2, 1);
    match c.update("g0", 3, &b3) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "seq-gap"),
        other => panic!("expected seq-gap, got {other:?}"),
    }

    // The next-in-order sequence still applies.
    let a2 = c.update("g0", 2, &b3).unwrap();
    assert!(!a2.dup);
    assert_eq!(a2.wal_seq, 2);
    server.shutdown();
}

#[test]
fn commands_before_hello_and_bad_version_are_rejected() {
    let mut server = memory_server(quick_cfg());
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    let mut s = stream.try_clone().unwrap();
    s.write_all(b"PING\n").unwrap();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR need-hello"), "{line}");

    s.write_all(b"HELLO incgraph-wire/99 eve\n").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR bad-proto"), "{line}");
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("GOODBYE protocol-error"), "{line}");
    server.shutdown();
}

#[test]
fn saturated_writer_sheds_with_busy() {
    let cfg = ServerConfig {
        max_pending: 0,
        retry_after_ms: 7,
        ..quick_cfg()
    };
    let mut server = memory_server(cfg);
    let mut c = Client::connect(server.addr(), "carol").unwrap();
    match c.graph("g0", 8, false) {
        Err(ClientError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 7),
        other => panic!("expected BUSY, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn idle_sessions_are_reaped() {
    let cfg = ServerConfig {
        read_poll: Duration::from_millis(10),
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let mut server = memory_server(cfg);
    let mut c = Client::connect(server.addr(), "dan").unwrap();
    match c.recv_reply() {
        Err(ClientError::Goodbye(reason)) => assert_eq!(reason, "idle-timeout"),
        other => panic!("expected idle-timeout goodbye, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn wire_shutdown_drains_and_says_goodbye() {
    let mut server = memory_server(quick_cfg());
    let mut c = Client::connect(server.addr(), "erin").unwrap();
    c.graph("g0", 8, false).unwrap();
    c.shutdown_server().unwrap();
    // The drain completes server-side; the session hears GOODBYE.
    match c.recv_reply() {
        Err(ClientError::Goodbye(reason)) => assert_eq!(reason, "shutting-down"),
        Err(ClientError::Closed) => {} // goodbye raced the close
        other => panic!("expected shutdown goodbye, got {other:?}"),
    }
    server.wait();
    assert!(server.is_stopped());
    assert!(Client::connect(server.addr(), "erin2").is_err());
}

fn durable_server(dir: &Path, cfg: ServerConfig) -> ServerHandle {
    let store = Store::open_durable(
        dir,
        "g0",
        16,
        false,
        DurableOptions::default(),
        StoreLimits::default(),
    )
    .expect("open durable store");
    Server::start(store, cfg).expect("start server")
}

#[test]
fn kill_then_restart_preserves_acked_batches_and_dedup() {
    let dir = temp_dir("kill-restart");
    let d1;
    {
        let mut server = durable_server(&dir, quick_cfg());
        let mut c = Client::connect(server.addr(), "frank").unwrap();
        let mut b1 = UpdateBatch::new();
        b1.insert(0, 1, 1).insert(1, 2, 1);
        let mut b2 = UpdateBatch::new();
        b2.insert(2, 3, 1);
        assert_eq!(c.update("g0", 1, &b1).unwrap().wal_seq, 1);
        assert_eq!(c.update("g0", 2, &b2).unwrap().wal_seq, 2);
        c.register("q1", "g0", "sssp", 0, None).unwrap();
        d1 = c.query("q1").unwrap().1;
        server.kill(); // no checkpoint, no goodbyes — store dropped cold
    }
    {
        let mut server = durable_server(&dir, quick_cfg());
        let mut c = Client::connect(server.addr(), "frank").unwrap();
        // Dedup state survived: retrying the last acked batch is a dup.
        let mut b2 = UpdateBatch::new();
        b2.insert(2, 3, 1);
        let ack = c.update("g0", 2, &b2).unwrap();
        assert!(ack.dup, "recovered dedup log must re-ack, not re-apply");
        assert_eq!(ack.wal_seq, 2);
        // Recovered state answers the same standing query identically.
        c.register("q2", "g0", "sssp", 0, None).unwrap();
        assert_eq!(c.query("q2").unwrap().1, d1);
        // And the session continues exactly-once from where it left off.
        let mut b3 = UpdateBatch::new();
        b3.insert(3, 4, 1);
        assert_eq!(c.update("g0", 3, &b3).unwrap().wal_seq, 3);
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_opener_gets_store_busy() {
    let dir = temp_dir("lock-busy");
    let store = Store::open_durable(
        &dir,
        "g0",
        8,
        false,
        DurableOptions::default(),
        StoreLimits::default(),
    )
    .unwrap();
    match Store::open_durable(
        &dir,
        "g0",
        8,
        false,
        DurableOptions::default(),
        StoreLimits::default(),
    ) {
        Err(DurableError::StoreBusy { .. }) => {}
        Err(other) => panic!("expected StoreBusy, got {other:?}"),
        Ok(_) => panic!("expected StoreBusy, second open succeeded"),
    }
    drop(store);
    // Releasing the lock admits the next opener.
    Store::open_durable(
        &dir,
        "g0",
        8,
        false,
        DurableOptions::default(),
        StoreLimits::default(),
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_query_and_unknown_graph_are_typed_errors() {
    let mut server = memory_server(quick_cfg());
    let mut c = Client::connect(server.addr(), "gail").unwrap();
    match c.query("nope") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown-query"),
        other => panic!("{other:?}"),
    }
    let mut b = UpdateBatch::new();
    b.insert(0, 1, 1);
    match c.update("nograph", 1, &b) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown-graph"),
        other => panic!("{other:?}"),
    }
    match c.register("q", "nograph", "sssp", 0, None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown-graph"),
        other => panic!("{other:?}"),
    }
    c.graph("g0", 8, true).unwrap();
    match c.register("q", "g0", "lcc", 0, None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "undirected-required"),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn second_hello_is_rejected_but_session_survives() {
    let mut server = memory_server(quick_cfg());
    let mut c = Client::connect(server.addr(), "hank").unwrap();
    c.send_raw("HELLO incgraph-wire/1 hank2\n").unwrap();
    match c.recv_reply().unwrap() {
        Reply::Err { code, .. } => assert_eq!(code, "already-hello"),
        other => panic!("{other:?}"),
    }
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn coalesced_flush_merges_deltas_and_stamps_final_seq() {
    let cfg = ServerConfig {
        flush_ops: 3,
        // Park the deadline far out so only the count trigger fires.
        flush_window: Duration::from_secs(30),
        ..quick_cfg()
    };
    let mut server = memory_server(cfg);
    let mut c = Client::connect(server.addr(), "iris").unwrap();
    c.graph("g0", 16, false).unwrap();
    c.register("q1", "g0", "sssp", 0, None).unwrap();
    // Every batch is acked individually at its own wal_seq — the commit
    // path is never deferred, only the standing-query notification.
    for seq in 1..=3u64 {
        let mut b = UpdateBatch::new();
        b.insert(0, seq as u32, seq as u32);
        let ack = c.update("g0", seq, &b).unwrap();
        assert!(!ack.dup);
        assert_eq!(ack.wal_seq, seq);
    }
    // One coalesced DELTA covers all three batches, stamped at the last
    // committed sequence.
    let delta = c
        .poll_delta(Duration::from_secs(5))
        .unwrap()
        .expect("one coalesced DELTA after the third batch");
    assert_eq!(delta.qid, "q1");
    assert_eq!(delta.wal_seq, 3);
    assert!(
        c.poll_delta(Duration::from_millis(200)).unwrap().is_none(),
        "batches inside one flush window must not produce extra DELTAs"
    );
    // The standing query caught up to the committed frontier.
    let (seq, _) = c.query("q1").unwrap();
    assert_eq!(seq, 3);
    server.shutdown();
}

#[test]
fn flush_window_bounds_delta_staleness_under_a_trickle() {
    let cfg = ServerConfig {
        // The count trigger is unreachable; only the deadline flushes.
        flush_ops: 1000,
        flush_window: Duration::from_millis(50),
        ..quick_cfg()
    };
    let mut server = memory_server(cfg);
    let mut c = Client::connect(server.addr(), "judy").unwrap();
    c.graph("g0", 16, false).unwrap();
    c.register("q1", "g0", "sssp", 0, None).unwrap();
    let mut b = UpdateBatch::new();
    b.insert(0, 1, 2);
    assert_eq!(c.update("g0", 1, &b).unwrap().wal_seq, 1);
    let delta = c
        .poll_delta(Duration::from_secs(5))
        .unwrap()
        .expect("the window deadline must flush a partial buffer");
    assert_eq!(delta.wal_seq, 1);
    server.shutdown();
}

#[test]
fn register_mid_window_flushes_first_and_never_double_applies() {
    let cfg = ServerConfig {
        flush_ops: 1000,
        flush_window: Duration::from_secs(30),
        ..quick_cfg()
    };
    let mut server = memory_server(cfg);
    let mut c = Client::connect(server.addr(), "kate").unwrap();
    c.graph("g0", 16, false).unwrap();
    c.register("q1", "g0", "sssp", 0, None).unwrap();
    let mut b = UpdateBatch::new();
    b.insert(0, 1, 2).insert(1, 2, 3);
    assert_eq!(c.update("g0", 1, &b).unwrap().wal_seq, 1);
    // The REGISTER arrives with a batch still buffered: the writer must
    // flush q1 first, then snapshot — so q2's initial digest already
    // includes batch 1 and q1 still hears exactly one DELTA for it.
    c.register("q2", "g0", "sssp", 0, None).unwrap();
    let delta = c
        .poll_delta(Duration::from_secs(5))
        .unwrap()
        .expect("q1 must be notified before the new registration");
    assert_eq!(delta.qid, "q1");
    assert_eq!(delta.wal_seq, 1);
    assert!(
        c.poll_delta(Duration::from_millis(200)).unwrap().is_none(),
        "q2 registered after the flush and must not see batch 1 again"
    );
    let (s1, d1) = c.query("q1").unwrap();
    let (s2, d2) = c.query("q2").unwrap();
    assert_eq!((s1, s2), (1, 1));
    assert_eq!(d1, d2, "both queries converge on the committed state");
    server.shutdown();
}

#[test]
fn standing_plan_emits_correct_view_deltas_under_churn() {
    // The acceptance scenario: a standing `filter(sssp.dist < k) |> count`
    // plan over a live server must push VDELTA rows that, applied to the
    // initial view, always equal the server's own full view (PLANQ).
    let mut server = memory_server(quick_cfg());
    let mut c = Client::connect(server.addr(), "lena").unwrap();
    c.graph("g0", 16, false).unwrap();
    let rows = c
        .plan(
            "p1",
            "g0",
            0,
            "d = sssp(source=0); near = filter(d, val < 4); n = count(near)",
        )
        .unwrap();
    // Empty graph: only the source is within distance 4 → count 1.
    assert_eq!(rows, 1);
    let (_, view0) = c.planq("p1").unwrap();
    assert_eq!(view0, vec![(0, 1, 1)]);

    // Maintain a client-side materialization from the pushed deltas and
    // pin it to the server's view after every batch.
    let mut mat: std::collections::BTreeMap<(u64, u64), i64> =
        view0.iter().map(|&(k, v, w)| ((k, v), w)).collect();
    type Inserts = &'static [(u32, u32, u32)];
    type Deletes = &'static [(u32, u32)];
    let churn: &[(Inserts, Deletes)] = &[
        (&[(0, 1, 1), (1, 2, 1)], &[]), // count 1 → 3
        (&[(2, 3, 1), (3, 4, 1)], &[]), // count 3 → 4 (node 4 at dist 4)
        (&[], &[(0, 1)]),               // sever the chain: back to 1
        (&[(0, 4, 2), (4, 5, 1)], &[]), // re-grow from the other side
    ];
    for (seq, (ins, dels)) in churn.iter().enumerate() {
        let mut b = UpdateBatch::new();
        for &(u, v, w) in *ins {
            b.insert(u, v, w);
        }
        for &(u, v) in *dels {
            b.delete(u, v);
        }
        let ack = c.update("g0", seq as u64 + 1, &b).unwrap();
        let vd = c
            .poll_vdelta(Duration::from_secs(5))
            .unwrap()
            .expect("every effective batch must push a VDELTA");
        assert_eq!(vd.qid, "p1");
        assert_eq!(vd.wal_seq, ack.wal_seq);
        for (k, v, w) in vd.rows {
            let e = mat.entry((k, v)).or_insert(0);
            *e += w;
            if *e == 0 {
                mat.remove(&(k, v));
            }
        }
        let (qseq, qview) = c.planq("p1").unwrap();
        assert_eq!(qseq, ack.wal_seq);
        let replayed: Vec<(u64, u64, i64)> = mat.iter().map(|(&(k, v), &w)| (k, v, w)).collect();
        assert_eq!(replayed, qview, "delta replay diverged at batch {seq}");
    }
    // The final count reflects the last topology: 0,4,5 within dist 4 of 0
    // plus any survivors of the earlier inserts still connected.
    assert_eq!(mat.len(), 1, "count plan has a single aggregate row");

    // A batch that cannot move the view (edge far outside the radius)
    // pushes nothing.
    let mut quiet = UpdateBatch::new();
    quiet.insert(10, 11, 6);
    c.update("g0", 5, &quiet).unwrap();
    assert!(
        c.poll_vdelta(Duration::from_millis(300)).unwrap().is_none(),
        "a batch that leaves the view unchanged must not push a VDELTA"
    );

    // UNPLAN stops the stream; PLANQ then reports unknown-query.
    c.unplan("p1").unwrap();
    match c.planq("p1") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown-query"),
        other => panic!("{other:?}"),
    }
    // A malformed plan is a typed refusal.
    match c.plan("p2", "g0", 0, "x = frobnicate(q)") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "bad-plan"),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn load_harness_smoke_all_classes() {
    let mut server = memory_server(quick_cfg());
    let report = run_load(&LoadConfig {
        addr: server.addr(),
        sessions: 14,
        batches_per_session: 5,
        units_per_batch: 4,
        nodes: 16,
        seed: 7,
    });
    assert_eq!(report.sessions_ok, 14, "{report}");
    assert_eq!(report.sessions_failed, 0);
    assert_eq!(report.batches_acked, 14 * 5);
    // Two full rounds over the seven classes → every class has samples.
    assert_eq!(report.classes.len(), 7, "{report}");
    for c in &report.classes {
        assert_eq!(c.count, 10, "{report}");
        assert!(c.p50_us <= c.p99_us && c.p99_us <= c.max_us.max(c.p99_us));
    }
    server.shutdown();
}
