//! Replication end-to-end over real sockets: tail shipping, snapshot
//! bootstrap, semi-sync ack gating, promotion, epoch fencing, and the
//! deposed primary's demotion on rejoin.

use incgraph_durable::DurableOptions;
use incgraph_graph::UpdateBatch;
use incgraph_service::client::{Client, ClientError};
use incgraph_service::server::{Role, Server, ServerConfig, ServerHandle};
use incgraph_service::store::{Store, StoreLimits};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const GRAPH: &str = "g0";
const NODES: usize = 16;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "incgraph-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn repl_cfg() -> ServerConfig {
    ServerConfig {
        read_poll: Duration::from_millis(10),
        idle_timeout: Duration::from_secs(30),
        repl_graph: Some(GRAPH.to_string()),
        ..ServerConfig::default()
    }
}

fn open_node(dir: &Path, cfg: ServerConfig) -> ServerHandle {
    let store = Store::open_durable(
        dir,
        GRAPH,
        NODES,
        false,
        DurableOptions::default(),
        StoreLimits::default(),
    )
    .expect("open durable store");
    Server::start(store, cfg).expect("start server")
}

fn batch_at(i: u32) -> UpdateBatch {
    let mut b = UpdateBatch::new();
    b.insert(i % NODES as u32, (i + 1) % NODES as u32, i + 1);
    b
}

/// Polls `f` until it returns true or the deadline passes.
fn wait_until(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

fn status_field(status: &str, key: &str) -> Option<String> {
    status
        .split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{key}=")).map(str::to_string))
}

#[test]
fn tail_replication_gates_acks_and_replica_serves_reads() {
    let pdir = temp_dir("tail-p");
    let rdir = temp_dir("tail-r");
    let mut primary = open_node(&pdir, repl_cfg());
    let mut replica = open_node(
        &rdir,
        ServerConfig {
            replica_of: Some(primary.addr()),
            // Pinned high: within this test an ACK must imply the
            // replica has fsynced the batch.
            repl_ack_timeout: Duration::from_secs(30),
            ..repl_cfg()
        },
    );
    assert_eq!(replica.role(), Role::Replica);

    let mut pc = Client::connect(primary.addr(), "writer").unwrap();
    // Wait for the replica's sink to attach so gating is in force.
    wait_until("replica sink attach", Duration::from_secs(10), || {
        let s = pc.status().unwrap();
        status_field(&s, "repl_sinks").as_deref() == Some("1")
    });

    let mut rc = Client::connect(replica.addr(), "reader").unwrap();
    for seq in 1..=5u64 {
        let ack = pc.update(GRAPH, seq, &batch_at(seq as u32)).unwrap();
        assert_eq!(ack.wal_seq, seq);
        // Semi-sync: the ack was released by the replica's WATERMARK,
        // so the replica must already hold this sequence durably.
        let rs = rc.status().unwrap();
        let repl_seq: u64 = status_field(&rs, "repl_seq").unwrap().parse().unwrap();
        assert!(
            repl_seq >= seq,
            "ack for seq {seq} released before replica watermark ({rs})"
        );
    }

    // The replica answers standing queries over the replicated state
    // with the same digest as the primary.
    let mut pq = Client::connect(primary.addr(), "pq").unwrap();
    pq.register("q1", GRAPH, "sssp", 0, None).unwrap();
    let (pseq, pdigest) = pq.query("q1").unwrap();
    rc.register("q1", GRAPH, "sssp", 0, None).unwrap();
    let (rseq, rdigest) = rc.query("q1").unwrap();
    assert_eq!((pseq, pdigest), (rseq, rdigest));

    // Writes to the replica are refused with a typed error.
    match rc.update(GRAPH, 1, &batch_at(99)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "not-primary"),
        other => panic!("expected not-primary, got {other:?}"),
    }
    let rs = rc.status().unwrap();
    assert_eq!(status_field(&rs, "role").as_deref(), Some("replica"));

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn snapshot_bootstrap_when_replica_lags_past_threshold() {
    let pdir = temp_dir("snap-p");
    let rdir = temp_dir("snap-r");
    let mut primary = open_node(
        &pdir,
        ServerConfig {
            snapshot_lag: 3,
            ..repl_cfg()
        },
    );
    let mut pc = Client::connect(primary.addr(), "writer").unwrap();
    for seq in 1..=10u64 {
        pc.update(GRAPH, seq, &batch_at(seq as u32)).unwrap();
    }
    // Replica starts at seq 0, lag 10 > 3 → bootstrap by snapshot.
    let mut replica = open_node(
        &rdir,
        ServerConfig {
            replica_of: Some(primary.addr()),
            ..repl_cfg()
        },
    );
    let mut rc = Client::connect(replica.addr(), "reader").unwrap();
    wait_until("snapshot adoption", Duration::from_secs(10), || {
        let s = rc.status().unwrap();
        status_field(&s, "repl_seq").as_deref() == Some("10")
    });
    // Dedup state rode the snapshot: the primary's acked batches are
    // known to the replica (matters after promotion).
    pc.register("q1", GRAPH, "sssp", 0, None).unwrap();
    rc.register("q1", GRAPH, "sssp", 0, None).unwrap();
    assert_eq!(pc.query("q1").unwrap(), rc.query("q1").unwrap());

    // And the stream continues live past the bootstrap.
    pc.update(GRAPH, 11, &batch_at(11)).unwrap();
    wait_until("live tail after snapshot", Duration::from_secs(10), || {
        let s = rc.status().unwrap();
        status_field(&s, "repl_seq").as_deref() == Some("11")
    });

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// Acceptance-pinned: a primary that hears a SYNC carrying a higher
/// epoch fences itself — no write it acks after that point can race a
/// promoted replica's history (split-brain double-ack).
#[test]
fn stale_epoch_primary_is_fenced() {
    let pdir = temp_dir("fence-p");
    let mut primary = open_node(&pdir, repl_cfg());
    let mut pc = Client::connect(primary.addr(), "writer").unwrap();
    pc.update(GRAPH, 1, &batch_at(1)).unwrap();

    // A peer claiming epoch 2 (this node is at 1) announces itself.
    let stream = TcpStream::connect(primary.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut s = stream.try_clone().unwrap();
    let mut line = String::new();
    s.write_all(b"HELLO incgraph-wire/1 newer\n").unwrap();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("WELCOME"), "{line}");
    s.write_all(format!("SYNC {GRAPH} 2 0 - undirected {NODES}\n").as_bytes())
        .unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR stale-epoch"), "{line}");

    // The deposed primary now refuses writes — even retries of batches
    // it previously acked.
    wait_until("fence takes effect", Duration::from_secs(5), || {
        matches!(
            pc.update(GRAPH, 2, &batch_at(2)),
            Err(ClientError::Server { ref code, .. }) if code == "not-primary"
        )
    });
    let status = pc.status().unwrap();
    assert_eq!(status_field(&status, "role").as_deref(), Some("fenced"));

    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
}

#[test]
fn failover_promote_then_deposed_primary_rejoins_demoted() {
    let pdir = temp_dir("failover-p");
    let rdir = temp_dir("failover-r");
    let mut primary = open_node(&pdir, repl_cfg());
    let mut replica = open_node(
        &rdir,
        ServerConfig {
            replica_of: Some(primary.addr()),
            repl_ack_timeout: Duration::from_secs(30),
            ..repl_cfg()
        },
    );
    let mut pc = Client::connect(primary.addr(), "writer").unwrap();
    wait_until("replica sink attach", Duration::from_secs(10), || {
        let s = pc.status().unwrap();
        status_field(&s, "repl_sinks").as_deref() == Some("1")
    });
    for seq in 1..=3u64 {
        pc.update(GRAPH, seq, &batch_at(seq as u32)).unwrap();
    }

    // Primary dies cold; operator promotes the replica.
    primary.kill();
    let mut rc = Client::connect(replica.addr(), "op").unwrap();
    let epoch = rc.promote().unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(replica.role(), Role::Primary);

    // The new primary accepts writes and continues the history: a
    // retry of the last acked batch is a dup, the next applies.
    let mut wc = Client::connect(replica.addr(), "writer").unwrap();
    let dup = wc.update(GRAPH, 3, &batch_at(3)).unwrap();
    assert!(dup.dup, "client-acked batch must survive failover as dup");
    assert_eq!(dup.wal_seq, 3);
    let a4 = wc.update(GRAPH, 4, &batch_at(4)).unwrap();
    assert!(!a4.dup);
    assert_eq!(a4.wal_seq, 4);
    let status = wc.status().unwrap();
    assert_eq!(status_field(&status, "role").as_deref(), Some("primary"));
    assert_eq!(status_field(&status, "epoch").as_deref(), Some("2"));

    // The deposed primary restarts as a replica of the new primary: its
    // stale epoch-1 history (it never saw batch 4) is reconciled and it
    // adopts epoch 2.
    let mut old = open_node(
        &pdir,
        ServerConfig {
            replica_of: Some(replica.addr()),
            ..repl_cfg()
        },
    );
    let mut oc = Client::connect(old.addr(), "rejoin").unwrap();
    wait_until(
        "deposed primary catches up",
        Duration::from_secs(10),
        || {
            let s = oc.status().unwrap();
            status_field(&s, "repl_seq").as_deref() == Some("4")
                && status_field(&s, "epoch").as_deref() == Some("2")
        },
    );
    wc.register("q1", GRAPH, "sssp", 0, None).unwrap();
    oc.register("q1", GRAPH, "sssp", 0, None).unwrap();
    assert_eq!(wc.query("q1").unwrap(), oc.query("q1").unwrap());

    old.shutdown();
    replica.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn promote_without_sync_makes_a_lone_replica_writable() {
    let rdir = temp_dir("lone-r");
    // Replica of an address nobody listens on: it retries quietly.
    let mut replica = open_node(
        &rdir,
        ServerConfig {
            replica_of: Some("127.0.0.1:1".parse().unwrap()),
            ..repl_cfg()
        },
    );
    let mut c = Client::connect(replica.addr(), "op").unwrap();
    match c.update(GRAPH, 1, &batch_at(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "not-primary"),
        other => panic!("expected not-primary, got {other:?}"),
    }
    assert_eq!(c.promote().unwrap(), 2);
    // Second promote is a typed error, not a double bump.
    match c.promote() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "bad-command"),
        other => panic!("expected bad-command, got {other:?}"),
    }
    assert_eq!(c.update(GRAPH, 1, &batch_at(1)).unwrap().wal_seq, 1);
    replica.shutdown();

    // The epoch bump is durable across restart.
    let mut again = open_node(&rdir, repl_cfg());
    let mut c2 = Client::connect(again.addr(), "op2").unwrap();
    let status = c2.status().unwrap();
    assert_eq!(status_field(&status, "epoch").as_deref(), Some("2"));
    again.shutdown();
    let _ = std::fs::remove_dir_all(&rdir);
}
