//! Dedup intent-log property tests, in the style of the WAL's
//! `prop_wal.rs`: seeded entry streams through append → mutilate →
//! reopen.
//!
//! The log's recovery contract is *longest valid committed prefix*:
//! whatever happens to the byte stream — a torn tail from a crash
//! mid-append, a flipped bit from storage rot, intents past the
//! committed WAL frontier — `DedupLog::open` must fold exactly the
//! unharmed committed leading entries into its index, physically
//! truncate the rest, and leave a log that clean appends extend. These
//! tests check that contract over every truncation boundary and every
//! single-byte corruption of the file.

use incgraph_service::dedup::{self, DedupLog, DEDUP_NAME};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "incgraph-dedup-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a log of `n` intents (unique tokens, wal_seq 1..=n) and
/// returns the raw file bytes plus the file offset where each entry
/// ends (first element: end of the magic).
fn build_log(dir: &Path, n: u64) -> (Vec<u8>, Vec<usize>) {
    let (mut log, index) = DedupLog::open(dir, 0).unwrap();
    assert!(index.is_empty());
    let path = log.path().to_path_buf();
    let mut ends = vec![8usize];
    for i in 1..=n {
        log.append(&format!("tok{i:02}"), i * 10, i).unwrap();
        ends.push(std::fs::metadata(&path).unwrap().len() as usize);
    }
    drop(log);
    (std::fs::read(&path).unwrap(), ends)
}

fn write_log(dir: &Path, bytes: &[u8]) {
    std::fs::write(dir.join(DEDUP_NAME), bytes).unwrap();
}

/// Asserts that reopening recovers exactly the first `expect` entries,
/// that the file is truncated to that boundary, and that the log still
/// accepts appends afterwards.
fn assert_recovers(dir: &Path, committed: u64, expect: usize, ends: &[usize], ctx: &str) {
    let scanned = dedup::scan_entries(dir, committed).unwrap();
    assert_eq!(scanned.len(), expect, "scan_entries disagrees: {ctx}");
    let (mut log, index) = DedupLog::open(dir, committed).unwrap();
    assert_eq!(index.len(), expect, "index size: {ctx}");
    for i in 1..=expect as u64 {
        let rec = index
            .get(&format!("tok{i:02}"))
            .unwrap_or_else(|| panic!("entry {i} lost: {ctx}"));
        assert_eq!((rec.client_seq, rec.wal_seq), (i * 10, i), "{ctx}");
        assert_eq!(
            (
                scanned[i as usize - 1].client_seq,
                scanned[i as usize - 1].wal_seq
            ),
            (i * 10, i),
            "{ctx}"
        );
    }
    let truncated = std::fs::metadata(log.path()).unwrap().len() as usize;
    assert_eq!(truncated, ends[expect], "file not cut at boundary: {ctx}");
    // A post-recovery append must extend the clean prefix.
    log.append("fresh", 1, committed + 1).unwrap();
    drop(log);
    let again = dedup::scan_entries(dir, committed + 1).unwrap();
    assert_eq!(again.len(), expect + 1, "append after recovery: {ctx}");
    assert_eq!(again[expect].token, "fresh", "{ctx}");
}

#[test]
fn truncation_at_every_boundary_recovers_longest_valid_prefix() {
    let dir = temp_dir("trunc");
    let (bytes, ends) = build_log(&dir, 8);
    let n = ends.len() - 1;
    for cut in 0..=bytes.len() {
        write_log(&dir, &bytes[..cut]);
        if cut > 0 && cut < 8 {
            // A torn magic is corruption, not an empty log: refuse.
            assert!(
                DedupLog::open(&dir, n as u64).is_err(),
                "cut {cut}: partial magic must not open"
            );
            assert!(dedup::scan_entries(&dir, n as u64).is_err());
            continue;
        }
        let expect = ends[1..].iter().filter(|&&e| e <= cut).count();
        assert_recovers(&dir, n as u64, expect, &ends, &format!("cut at byte {cut}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_byte_corruption_cuts_the_log_at_the_damaged_entry() {
    let dir = temp_dir("flip");
    let (bytes, ends) = build_log(&dir, 6);
    let n = ends.len() - 1;
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        write_log(&dir, &bad);
        if pos < 8 {
            assert!(
                DedupLog::open(&dir, n as u64).is_err(),
                "flip {pos}: damaged magic must not open"
            );
            continue;
        }
        // The entry the damaged byte falls in dies; everything before
        // it survives.
        let hit = ends[1..].iter().filter(|&&e| e <= pos).count();
        assert_recovers(&dir, n as u64, hit, &ends, &format!("flip at byte {pos}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn intents_past_the_committed_frontier_are_discarded() {
    let dir = temp_dir("uncommitted");
    let (_, ends) = build_log(&dir, 8);
    // Only 5 of the 8 intents ever committed to the WAL: recovery must
    // drop the uncommitted suffix — an orphan kept in the file could
    // alias into a false ack once its WAL sequence is reused.
    for committed in 0..=8usize {
        let (bytes, _) = (std::fs::read(dir.join(DEDUP_NAME)).unwrap(), ());
        write_log(&dir, &bytes); // restore full log each round
        assert_recovers(
            &dir,
            committed as u64,
            committed,
            &ends,
            &format!("committed={committed}"),
        );
        // assert_recovers appended one "fresh" entry; rebuild.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        build_log(&dir, 8);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_token_retries_keep_the_latest_ack() {
    let dir = temp_dir("latest");
    let (mut log, _) = DedupLog::open(&dir, 0).unwrap();
    log.append("alice", 1, 1).unwrap();
    log.append("bob", 1, 2).unwrap();
    log.append("alice", 2, 3).unwrap();
    drop(log);
    let (_, index) = DedupLog::open(&dir, 3).unwrap();
    assert_eq!(index.len(), 2);
    let a = index.get("alice").unwrap();
    assert_eq!((a.client_seq, a.wal_seq), (2, 3));
    let b = index.get("bob").unwrap();
    assert_eq!((b.client_seq, b.wal_seq), (1, 2));
    let _ = std::fs::remove_dir_all(&dir);
}
