//! Laptop-scale stand-ins for the paper's six real-life datasets.
//!
//! Each stand-in keeps the original's edge/node ratio and a power-law
//! degree exponent typical of its type, scaled down ~500–1000× so the
//! full experiment suite runs on one machine in minutes. The `scale`
//! knob multiplies the node count (keeping the ratio) for the
//! scalability experiment (paper Exp-3 / Fig. 7(j–l)).

use incgraph_graph::gen::{power_law, temporal, TemporalGraph};
use incgraph_graph::{DynamicGraph, Weight};

/// Label alphabet size used throughout (the paper's synthetic graphs draw
/// labels "from an alphabet of 5 labels").
pub const ALPHABET: u32 = 5;

/// Maximum edge weight for SSSP workloads.
pub const MAX_WEIGHT: Weight = 100;

/// One of the paper's datasets, as a parameterized stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// LiveJournal: social network, 4.8M nodes / 68.9M edges.
    LiveJournal,
    /// DBPedia: knowledge base, 4.9M nodes / 54M edges.
    DbPedia,
    /// Orkut: social network, 3.1M nodes / 117M edges.
    Orkut,
    /// Twitter-2010: social network, 41.6M nodes / 1.4B edges.
    Twitter,
    /// Friendster: gaming network, 65.6M nodes / 1.8B edges.
    Friendster,
    /// Wiki-DE: temporal hyperlink graph, 2.1M nodes / 86.3M edges.
    WikiDe,
}

impl Dataset {
    /// All six datasets, in the paper's listing order.
    pub const ALL: [Dataset; 6] = [
        Dataset::LiveJournal,
        Dataset::DbPedia,
        Dataset::Orkut,
        Dataset::Twitter,
        Dataset::Friendster,
        Dataset::WikiDe,
    ];

    /// The paper's abbreviation (LJ, DP, OKT, TW, FS, WD).
    pub fn tag(self) -> &'static str {
        match self {
            Dataset::LiveJournal => "LJ",
            Dataset::DbPedia => "DP",
            Dataset::Orkut => "OKT",
            Dataset::Twitter => "TW",
            Dataset::Friendster => "FS",
            Dataset::WikiDe => "WD",
        }
    }

    /// Stand-in base parameters: (nodes, edges, degree exponent, seed).
    fn params(self) -> (usize, usize, f64, u64) {
        match self {
            Dataset::LiveJournal => (8_000, 114_000, 2.4, 0x11),
            Dataset::DbPedia => (8_000, 88_000, 2.2, 0x22),
            Dataset::Orkut => (5_000, 188_000, 2.5, 0x33),
            Dataset::Twitter => (12_000, 400_000, 2.1, 0x44),
            Dataset::Friendster => (16_000, 440_000, 2.5, 0x55),
            Dataset::WikiDe => (4_000, 160_000, 2.3, 0x66),
        }
    }

    /// Stand-in node count at scale 1.
    pub fn nodes(self) -> usize {
        self.params().0
    }

    /// Stand-in edge budget at scale 1.
    pub fn edges(self) -> usize {
        self.params().1
    }

    /// Generates the stand-in graph. `directed` selects the orientation
    /// required by the query class (SSSP/Sim/DFS: directed; CC/LCC:
    /// undirected); `scale` multiplies the size for Exp-3.
    pub fn graph(self, directed: bool, scale: f64) -> DynamicGraph {
        // Dataset generation dominates bench startup; the span makes it
        // separable from the measured phases in `--metrics` output.
        let _span = incgraph_obs::span("workload.gen");
        let (n, m, gamma, seed) = self.params();
        let n = ((n as f64 * scale) as usize).max(16);
        let m = ((m as f64 * scale) as usize).max(32);
        power_law(n, m, gamma, directed, MAX_WEIGHT, ALPHABET, seed)
    }

    /// The Wiki-DE style temporal stand-in: the base graph plus
    /// `windows` monthly update windows, each `window_pct` of |G| with
    /// the paper's 81%/19% insert/delete mix. `directed` selects the base
    /// orientation (the paper replays Wiki-DE directed; undirected bases
    /// admit LCC/BC standing queries). Every unit update carries an
    /// admission tick in `TemporalGraph::timestamps`.
    pub fn temporal(
        self,
        directed: bool,
        windows: usize,
        window_pct: f64,
        scale: f64,
    ) -> TemporalGraph {
        let (n, m, _gamma, seed) = self.params();
        let n = ((n as f64 * scale) as usize).max(16);
        let m = ((m as f64 * scale) as usize).max(32);
        let window_size = (((n + m) as f64) * window_pct / 100.0) as usize;
        temporal(
            n,
            m,
            windows,
            window_size.max(1),
            0.81,
            directed,
            MAX_WEIGHT,
            ALPHABET,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_the_paper() {
        // Edge/node ratios of the stand-ins stay close to the originals.
        let paper = [
            (Dataset::LiveJournal, 68.9e6 / 4.8e6),
            (Dataset::DbPedia, 54.0e6 / 4.9e6),
            (Dataset::Orkut, 117.0e6 / 3.1e6),
            (Dataset::Twitter, 1.4e9 / 41.6e6),
            (Dataset::Friendster, 1.8e9 / 65.6e6),
            (Dataset::WikiDe, 86.3e6 / 2.1e6),
        ];
        for (d, ratio) in paper {
            let ours = d.edges() as f64 / d.nodes() as f64;
            assert!(
                (ours - ratio).abs() / ratio < 0.25,
                "{}: stand-in ratio {ours:.1} vs paper {ratio:.1}",
                d.tag()
            );
        }
    }

    #[test]
    fn graphs_are_generated_at_size() {
        let g = Dataset::WikiDe.graph(true, 0.25);
        assert_eq!(g.node_count(), 1000);
        assert!(g.edge_count() > 30_000);
        assert!(g.is_directed());
        let u = Dataset::WikiDe.graph(false, 0.25);
        assert!(!u.is_directed());
    }

    #[test]
    fn scaling_scales() {
        let small = Dataset::LiveJournal.graph(true, 0.1);
        let large = Dataset::LiveJournal.graph(true, 0.2);
        assert_eq!(large.node_count(), 2 * small.node_count());
    }

    #[test]
    fn temporal_windows_follow_the_mix() {
        let t = Dataset::WikiDe.temporal(true, 5, 1.9, 0.1);
        assert_eq!(t.windows.len(), 5);
        let (mut ins, mut del) = (0usize, 0usize);
        for w in &t.windows {
            for u in w.updates() {
                if u.is_insert() {
                    ins += 1;
                } else {
                    del += 1;
                }
            }
        }
        let frac = ins as f64 / (ins + del) as f64;
        assert!((frac - 0.81).abs() < 0.06, "mix {frac}");
    }

    #[test]
    fn tags_are_the_papers() {
        let tags: Vec<_> = Dataset::ALL.iter().map(|d| d.tag()).collect();
        assert_eq!(tags, vec!["LJ", "DP", "OKT", "TW", "FS", "WD"]);
    }
}
