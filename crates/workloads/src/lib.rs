//! Experiment workloads: dataset stand-ins, update-batch generation and
//! query sampling, mirroring the paper's §6 experimental setting.
//!
//! The paper evaluates on six real-life graphs (LiveJournal, DBPedia,
//! Orkut, Twitter-2010, Friendster, Wiki-DE, up to 1.8 billion edges) and
//! synthetic graphs up to 2.2 billion nodes+edges. This reproduction
//! substitutes laptop-scale synthetic stand-ins that preserve the
//! properties the experiments actually exercise — degree skew (power-law
//! exponents like the originals), the edge/node ratio of each dataset,
//! label alphabet of 5, and for Wiki-DE the timestamped update mix (81%
//! insertions / 19% deletions per monthly window). See DESIGN.md §5 for
//! the substitution rationale.

pub mod datasets;
pub mod queries;
pub mod updates;

pub use datasets::Dataset;
pub use queries::{random_pattern, sample_sources};
pub use updates::{clustered_batch, random_batch, random_batch_pct};
