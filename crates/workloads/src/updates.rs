//! Random update-batch generation, mirroring the paper's setup: "random
//! updates controlled by the size |ΔG| ... comprised of equal amounts of
//! edge insertions and deletions, unless stated otherwise".
//!
//! Every generated unit update is *effective* on the graph at its point
//! in the sequence: deletions target live edges, insertions absent ones.
//! The generator works on a scratch copy so the caller's graph is not
//! modified; apply the returned batch explicitly.

use incgraph_graph::ids::Weight;
use incgraph_graph::rng::SplitMix64;
use incgraph_graph::{DynamicGraph, NodeId, UpdateBatch};

/// Generates a batch of `count` unit updates against `g`, a fraction
/// `insert_frac` of which are insertions. Deterministic in `seed`.
pub fn random_batch(
    g: &DynamicGraph,
    count: usize,
    insert_frac: f64,
    max_weight: Weight,
    seed: u64,
) -> UpdateBatch {
    assert!((0.0..=1.0).contains(&insert_frac));
    let n = g.node_count();
    assert!(n >= 2, "graph too small for updates");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut live = g.clone();
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let mut batch = UpdateBatch::new();
    for _ in 0..count {
        let insert = rng.gen_bool(insert_frac) || edges.is_empty();
        if insert {
            for _ in 0..128 {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u == v || live.has_edge(u, v) {
                    continue;
                }
                let w = rng.gen_range(1..=max_weight);
                live.insert_edge(u, v, w);
                edges.push((u, v));
                batch.insert(u, v, w);
                break;
            }
        } else {
            let i = rng.gen_range(0..edges.len());
            let (u, v) = edges.swap_remove(i);
            live.delete_edge(u, v);
            batch.delete(u, v);
        }
    }
    batch
}

/// Generates a batch sized as `pct` percent of `|G| = |V| + |E|` with the
/// paper's default equal insert/delete mix.
pub fn random_batch_pct(g: &DynamicGraph, pct: f64, max_weight: Weight, seed: u64) -> UpdateBatch {
    let count = ((g.size() as f64) * pct / 100.0).round() as usize;
    random_batch(g, count.max(1), 0.5, max_weight, seed)
}

/// Generates a *clustered* batch: all updates touch the `radius`-hop ball
/// around `center`. Real update streams are rarely uniform (a flash sale,
/// an editing spree, a road closure cluster); locality is the best case
/// for relative boundedness, and the `abl-local` experiment contrasts it
/// with the uniform batches above.
pub fn clustered_batch(
    g: &DynamicGraph,
    count: usize,
    insert_frac: f64,
    max_weight: Weight,
    center: NodeId,
    radius: usize,
    seed: u64,
) -> UpdateBatch {
    assert!((0.0..=1.0).contains(&insert_frac));
    let mut rng = SplitMix64::seed_from_u64(seed);

    // BFS ball around the center (both edge directions so directed
    // graphs get a meaningful neighborhood).
    let mut ball: Vec<NodeId> = vec![center];
    let mut seen = std::collections::HashSet::from([center]);
    let mut frontier = vec![center];
    for _ in 0..radius {
        let mut next = Vec::new();
        for &v in &frontier {
            for &(w, _) in g.out_neighbors(v) {
                if seen.insert(w) {
                    ball.push(w);
                    next.push(w);
                }
            }
            for &(w, _) in g.in_neighbors(v) {
                if seen.insert(w) {
                    ball.push(w);
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    if ball.len() < 2 {
        // Degenerate center: fall back to uniform sampling.
        return random_batch(g, count, insert_frac, max_weight, seed);
    }

    let mut live = g.clone();
    let mut ball_edges: Vec<(NodeId, NodeId)> = g
        .edges()
        .filter(|&(u, v, _)| seen.contains(&u) && seen.contains(&v))
        .map(|(u, v, _)| (u, v))
        .collect();
    let mut batch = UpdateBatch::new();
    for _ in 0..count {
        let insert = rng.gen_bool(insert_frac) || ball_edges.is_empty();
        if insert {
            for _ in 0..128 {
                let u = ball[rng.gen_range(0..ball.len())];
                let v = ball[rng.gen_range(0..ball.len())];
                if u == v || live.has_edge(u, v) {
                    continue;
                }
                let w = rng.gen_range(1..=max_weight);
                live.insert_edge(u, v, w);
                ball_edges.push((u, v));
                batch.insert(u, v, w);
                break;
            }
        } else {
            let i = rng.gen_range(0..ball_edges.len());
            let (u, v) = ball_edges.swap_remove(i);
            live.delete_edge(u, v);
            batch.delete(u, v);
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_fully_effective() {
        let g = incgraph_graph::gen::uniform(100, 500, true, 10, 5, 1);
        let batch = random_batch(&g, 300, 0.5, 10, 9);
        assert_eq!(batch.len(), 300);
        let mut h = g.clone();
        let applied = batch.apply(&mut h);
        assert_eq!(applied.len(), 300, "every unit update must take effect");
    }

    #[test]
    fn insert_fraction_respected() {
        let g = incgraph_graph::gen::uniform(200, 2000, true, 10, 5, 2);
        let batch = random_batch(&g, 1000, 0.8, 10, 3);
        let ins = batch.updates().iter().filter(|u| u.is_insert()).count();
        assert!((ins as f64 / 1000.0 - 0.8).abs() < 0.05);
    }

    #[test]
    fn pct_sizing() {
        let g = incgraph_graph::gen::uniform(100, 900, true, 10, 5, 4);
        let batch = random_batch_pct(&g, 10.0, 10, 5);
        assert_eq!(batch.len(), 100, "10% of |V|+|E| = 1000");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = incgraph_graph::gen::uniform(100, 500, true, 10, 5, 1);
        let a = random_batch(&g, 100, 0.5, 10, 7);
        let b = random_batch(&g, 100, 0.5, 10, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_batches_stay_in_the_ball() {
        let g = incgraph_graph::gen::uniform(300, 1200, true, 10, 5, 6);
        let batch = clustered_batch(&g, 80, 0.5, 10, 7, 2, 13);
        // Recompute the ball and check every op's endpoints are inside.
        let mut seen = std::collections::HashSet::from([7u32]);
        let mut frontier = vec![7u32];
        for _ in 0..2 {
            let mut next = Vec::new();
            for &v in &frontier {
                for &(w, _) in g.out_neighbors(v) {
                    if seen.insert(w) {
                        next.push(w);
                    }
                }
                for &(w, _) in g.in_neighbors(v) {
                    if seen.insert(w) {
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        for u in batch.updates() {
            assert!(seen.contains(&u.src()), "src {} left the ball", u.src());
            assert!(seen.contains(&u.dst()), "dst {} left the ball", u.dst());
        }
        // And all effective.
        let mut h = g.clone();
        let applied = batch.apply(&mut h);
        assert_eq!(applied.len(), batch.len());
    }

    #[test]
    fn clustered_batch_on_isolated_center_falls_back() {
        let g = DynamicGraph::new(true, 50);
        let batch = clustered_batch(&g, 10, 1.0, 5, 3, 2, 1);
        assert_eq!(batch.len(), 10, "uniform fallback still generates");
    }

    #[test]
    fn caller_graph_is_untouched() {
        let g = incgraph_graph::gen::uniform(50, 200, true, 10, 5, 1);
        let before: Vec<_> = g.edges().collect();
        let _ = random_batch(&g, 100, 0.5, 10, 11);
        let after: Vec<_> = g.edges().collect();
        assert_eq!(before, after);
    }
}
