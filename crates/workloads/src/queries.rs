//! Query sampling: SSSP source nodes and Sim patterns, as in the paper's
//! setup ("we sampled 20 source nodes from each graph to create SSSP
//! queries; for Sim, we constructed 5 patterns ... with labels drawn from
//! the data graphs", fixing `|Q| = (4, 6)`).

use incgraph_graph::rng::SplitMix64;
use incgraph_graph::{DynamicGraph, Label, NodeId, Pattern};

/// Samples `k` distinct source nodes with non-zero out-degree (sources
/// with no outgoing edges make degenerate SSSP queries).
pub fn sample_sources(g: &DynamicGraph, k: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = g.node_count();
    let mut out = Vec::with_capacity(k);
    let mut attempts = 0;
    while out.len() < k && attempts < 100 * k.max(1) {
        attempts += 1;
        let v = rng.gen_range(0..n) as NodeId;
        if g.out_degree(v) > 0 && !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Builds a random weakly-connected directed pattern with `nodes` nodes
/// and `edges` edges (the paper fixes `(4, 6)`), labels drawn from the
/// data graph's label alphabet. Deterministic in `seed`.
pub fn random_pattern(g: &DynamicGraph, nodes: usize, edges: usize, seed: u64) -> Pattern {
    assert!(nodes >= 2, "pattern needs at least two nodes");
    assert!(edges >= nodes - 1, "pattern must be connectable");
    assert!(
        edges <= nodes * (nodes - 1),
        "too many edges for a simple pattern"
    );
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Labels drawn from the data graph so matches exist.
    let labels: Vec<Label> = (0..nodes)
        .map(|_| {
            let v = rng.gen_range(0..g.node_count()) as NodeId;
            g.label(v)
        })
        .collect();
    let mut set = std::collections::HashSet::new();
    let mut list = Vec::with_capacity(edges);
    // Spanning arborescence-ish backbone for weak connectivity.
    for i in 1..nodes {
        let j = rng.gen_range(0..i);
        let (a, b) = if rng.gen_bool(0.5) { (j, i) } else { (i, j) };
        set.insert((a, b));
        list.push((a, b));
    }
    let mut attempts = 0;
    while list.len() < edges && attempts < 1000 {
        attempts += 1;
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a != b && set.insert((a, b)) {
            list.push((a, b));
        }
    }
    Pattern::new(labels, &list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_have_out_edges() {
        let g = incgraph_graph::gen::power_law(500, 2000, 2.3, true, 10, 5, 3);
        let sources = sample_sources(&g, 20, 4);
        assert_eq!(sources.len(), 20);
        for &s in &sources {
            assert!(g.out_degree(s) > 0);
        }
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "sources are distinct");
    }

    #[test]
    fn patterns_have_requested_shape() {
        let g = incgraph_graph::gen::uniform(100, 400, true, 1, 5, 7);
        let p = random_pattern(&g, 4, 6, 11);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 6);
        // Labels come from the data alphabet.
        for u in 0..4 {
            assert!(p.label(u) < 5);
        }
    }

    #[test]
    fn patterns_are_weakly_connected() {
        let g = incgraph_graph::gen::uniform(100, 400, true, 1, 5, 7);
        for seed in 0..10 {
            let p = random_pattern(&g, 4, 6, seed);
            // Union-find over undirected closure.
            let mut parent: Vec<usize> = (0..4).collect();
            fn find(p: &mut Vec<usize>, x: usize) -> usize {
                if p[x] != x {
                    let r = find(p, p[x]);
                    p[x] = r;
                }
                p[x]
            }
            for (a, b) in p.edges() {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                parent[ra] = rb;
            }
            let root = find(&mut parent, 0);
            for x in 1..4 {
                assert_eq!(find(&mut parent, x), root, "seed {seed} disconnected");
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = incgraph_graph::gen::uniform(100, 400, true, 1, 5, 7);
        let a = random_pattern(&g, 4, 6, 42);
        let b = random_pattern(&g, 4, 6, 42);
        assert_eq!(a, b);
        assert_eq!(sample_sources(&g, 5, 1), sample_sources(&g, 5, 1));
    }
}
