//! `DynDij`: batch shortest-path-tree maintenance after Chan & Yang \[17\]
//! — the paper's batch-update SSSP baseline.
//!
//! Unlike `RR`, the state includes an explicit shortest-path tree. A
//! batch update first *invalidates* the SPT subtrees hanging below every
//! deleted tree edge (a superset of the vertices whose distance can
//! grow), then runs one Dijkstra repair seeded with (a) the best boundary
//! in-edges of the invalidated region and (b) the heads of inserted
//! edges. The coarse subtree invalidation is the signature of this family
//! of algorithms — and the reason the deduced `IncSSSP`, which raises only
//! provably infeasible variables, tends to inspect less (paper Exp-2).

use incgraph_graph::ids::{Dist, INF_DIST};
use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// No-parent sentinel.
const NONE: NodeId = NodeId::MAX;

/// Batch-dynamic SSSP with an explicit shortest-path tree.
pub struct DynDij {
    source: NodeId,
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
}

impl DynDij {
    /// Initializes from a batch Dijkstra run on `g`.
    pub fn new(g: &DynamicGraph, source: NodeId) -> Self {
        let mut s = DynDij {
            source,
            dist: vec![INF_DIST; g.node_count()],
            parent: vec![NONE; g.node_count()],
        };
        s.dist[source as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, source)));
        s.dijkstra(g, heap);
        s
    }

    /// Current distances.
    pub fn distances(&self) -> &[Dist] {
        &self.dist
    }

    /// SPT parent of `v` (`NodeId::MAX` for the source / unreachable).
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Processes a whole batch. `g` must already be `G ⊕ ΔG`.
    pub fn apply_batch(&mut self, g: &DynamicGraph, applied: &AppliedBatch) {
        let _span = incgraph_obs::span("baseline.update");
        self.ensure_size(g);

        // 1) Suspect roots: heads of deleted SPT tree edges.
        let mut suspects: Vec<NodeId> = Vec::new();
        for (u, v, _) in applied.deleted() {
            if self.parent[v as usize] == u {
                suspects.push(v);
            }
            if !g.is_directed() && self.parent[u as usize] == v {
                suspects.push(u);
            }
        }

        let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();

        if !suspects.is_empty() {
            // 2) Children lists, then collect the invalidated region M.
            let n = self.dist.len();
            let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
            for v in 0..n {
                let p = self.parent[v];
                if p != NONE {
                    children[p as usize].push(v as NodeId);
                }
            }
            let mut in_m = vec![false; n];
            let mut stack = suspects;
            while let Some(x) = stack.pop() {
                if std::mem::replace(&mut in_m[x as usize], true) {
                    continue;
                }
                stack.extend(children[x as usize].iter().copied());
            }
            // 3) Invalidate M and seed from the unaffected boundary.
            for (x, &m) in in_m.iter().enumerate() {
                if m {
                    self.dist[x] = INF_DIST;
                    self.parent[x] = NONE;
                }
            }
            for x in 0..n {
                if !in_m[x] {
                    continue;
                }
                if x == self.source as usize {
                    self.dist[x] = 0;
                    heap.push(Reverse((0, x as NodeId)));
                    continue;
                }
                let mut best = INF_DIST;
                let mut best_p = NONE;
                for &(y, wy) in g.in_neighbors(x as NodeId) {
                    if !in_m[y as usize] && self.dist[y as usize] != INF_DIST {
                        let cand = self.dist[y as usize] + wy as Dist;
                        if cand < best {
                            best = cand;
                            best_p = y;
                        }
                    }
                }
                if best < INF_DIST {
                    self.dist[x] = best;
                    self.parent[x] = best_p;
                    heap.push(Reverse((best, x as NodeId)));
                }
            }
        }

        // 4) Seed lowering from inserted edges. A batch may insert and
        // later delete (or reweight) the same edge, so seeds are taken
        // from the *final* graph's adjacency, not the op's payload.
        for (u, v, _) in applied.inserted() {
            let both = [(u, v), (v, u)];
            let dirs = if g.is_directed() {
                &both[..1]
            } else {
                &both[..]
            };
            for &(a, b) in dirs {
                let Some(w) = g.edge_weight(a, b) else {
                    continue;
                };
                if self.dist[a as usize] != INF_DIST {
                    let cand = self.dist[a as usize] + w as Dist;
                    if cand < self.dist[b as usize] {
                        self.dist[b as usize] = cand;
                        self.parent[b as usize] = a;
                        heap.push(Reverse((cand, b)));
                    }
                }
            }
        }

        // 5) One Dijkstra repair pass.
        self.dijkstra(g, heap);
    }

    /// Resident bytes (Fig. 8): distances plus the explicit SPT — the
    /// space this family trades for update speed.
    pub fn space_bytes(&self) -> usize {
        self.dist.capacity() * 8 + self.parent.capacity() * std::mem::size_of::<NodeId>()
    }

    fn dijkstra(&mut self, g: &DynamicGraph, mut heap: BinaryHeap<Reverse<(Dist, NodeId)>>) {
        while let Some(Reverse((d, x))) = heap.pop() {
            if d > self.dist[x as usize] {
                continue;
            }
            for &(y, wy) in g.out_neighbors(x) {
                let nd = d + wy as Dist;
                if nd < self.dist[y as usize] {
                    self.dist[y as usize] = nd;
                    self.parent[y as usize] = x;
                    heap.push(Reverse((nd, y)));
                }
            }
        }
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        if g.node_count() > self.dist.len() {
            self.dist.resize(g.node_count(), INF_DIST);
            self.parent.resize(g.node_count(), NONE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn reference(g: &DynamicGraph, s: NodeId) -> Vec<Dist> {
        DynDij::new(g, s).dist
    }

    #[test]
    fn spt_parents_are_tight() {
        let g = incgraph_graph::gen::uniform(100, 500, true, 10, 5, 77);
        let d = DynDij::new(&g, 0);
        for v in 0..100u32 {
            let p = d.parent(v);
            if p != NONE {
                let w = g.edge_weight(p, v).expect("tree edge exists") as Dist;
                assert_eq!(d.distances()[p as usize] + w, d.distances()[v as usize]);
            }
        }
    }

    #[test]
    fn batch_with_tree_deletions_and_insertions() {
        let mut g = DynamicGraph::new(true, 6);
        for (u, v, w) in [(0u32, 1, 2u32), (1, 2, 2), (2, 3, 2), (0, 4, 9), (4, 3, 1)] {
            g.insert_edge(u, v, w);
        }
        let mut d = DynDij::new(&g, 0);
        assert_eq!(d.distances(), &[0, 2, 4, 6, 9, INF_DIST]);
        let mut batch = UpdateBatch::new();
        batch.delete(1, 2).insert(3, 5, 1);
        let applied = batch.apply(&mut g);
        d.apply_batch(&g, &applied);
        assert_eq!(d.distances(), reference(&g, 0).as_slice());
        assert_eq!(d.distances(), &[0, 2, INF_DIST, 10, 9, 11]);
    }

    #[test]
    fn random_batches_match_reference() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(200, 900, true, 10, 5, 14);
        let mut d = DynDij::new(&g, 5);
        let mut rng = SplitMix64::seed_from_u64(23);
        for round in 0..15 {
            let mut batch = UpdateBatch::new();
            for _ in 0..25 {
                let u = rng.gen_range(0..200) as NodeId;
                let v = rng.gen_range(0..200) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, rng.gen_range(1u32..=10));
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            d.apply_batch(&g, &applied);
            assert_eq!(
                d.distances(),
                reference(&g, 5).as_slice(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn undirected_batches() {
        let mut g = incgraph_graph::gen::grid(8, 8, 5, 2);
        let mut d = DynDij::new(&g, 0);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1).delete(0, 8).insert(0, 63, 3);
        let applied = batch.apply(&mut g);
        d.apply_batch(&g, &applied);
        assert_eq!(d.distances(), reference(&g, 0).as_slice());
    }

    #[test]
    fn deleting_source_subtree_root_edge() {
        let mut g = DynamicGraph::new(true, 3);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        let mut d = DynDij::new(&g, 0);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let applied = batch.apply(&mut g);
        d.apply_batch(&g, &applied);
        assert_eq!(d.distances(), &[0, INF_DIST, INF_DIST]);
    }
}
