//! Reimplementations of the fine-tuned dynamic/incremental baselines the
//! paper compares against (its §6 competitors), built from scratch on the
//! same graph substrate:
//!
//! | Baseline | Query class | Paper ref | This implementation |
//! |----------|-------------|-----------|---------------------|
//! | [`rr`] `RR` | SSSP, unit updates | Ramalingam–Reps \[39, 40\] | two-phase affected-vertex repair |
//! | [`dyndij`] `DynDij` | SSSP, batch updates | Chan–Yang \[17\] | shortest-path-tree subtree invalidation + Dijkstra repair |
//! | [`dyncc`] `DynCC` | connectivity | Holm–de Lichtenberg–Thorup \[27\] | HDT: Euler-tour forests per level, edge-level promotion, replacement search |
//! | [`incmatch`] `IncMatch` | graph simulation | Fan–Wang–Wu \[23\] | split insert/delete propagation with optimistic affected-area flooding |
//! | [`dyndfs`] `DynDFS` | depth-first search | Yang et al. \[50\] | violation detection + forest-suffix rebuild (simplified; see module docs) |
//! | [`dynlcc`] `DynLCC` | clustering coefficient | Ediger et al. \[19\] | per-edge triangle deltas, exact and Bloom-filter approximate modes |
//!
//! The baselines keep their own state layouts and update disciplines, as
//! in the original papers — they do *not* run on the `incgraph-core`
//! fixpoint engine. That contrast is the point of the paper's
//! experiments: systematically deduced `Inc*` algorithms versus
//! individually engineered dynamic algorithms.

pub mod dyncc;
pub mod dyndfs;
pub mod dyndij;
pub mod dynlcc;
pub mod incmatch;
pub mod rr;

pub use dyncc::DynCc;
pub use dyndfs::DynDfs;
pub use dyndij::DynDij;
pub use dynlcc::{BloomLcc, DynLcc};
pub use incmatch::IncMatch;
pub use rr::RrSssp;
