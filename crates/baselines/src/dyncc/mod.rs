//! `DynCC`: fully dynamic connectivity after Holm, de Lichtenberg and
//! Thorup \[27\] — the paper's CC baseline.
//!
//! The structure keeps a hierarchy of Euler-tour spanning forests
//! `F_0 ⊇ F_1 ⊇ … ⊇ F_L` (`L = ⌈log₂ n⌉`); every edge carries a *level*,
//! tree edges of level `≥ i` form `F_i`, and non-tree edges are stored in
//! per-level per-vertex sets. Deleting a tree edge at level `ℓ` searches
//! levels `ℓ, ℓ−1, …, 0` for a replacement: the smaller side's level-`i`
//! tree edges are first promoted to level `i+1` (amortizing future
//! searches), then its level-`i` non-tree edges are examined — an edge
//! crossing to the other side reconnects the forests, anything else is
//! promoted. Amortized cost `O(log² n)` per update.
//!
//! This is a faithful from-scratch reimplementation of the algorithm the
//! paper obtained from an external codebase \[7\]. Its profile in the
//! paper's experiments — fast unit deletions, poor batch behaviour (it
//! processes updates one by one), and a memory footprint that blows up on
//! large graphs — follows directly from this design: per-edge hash
//! entries plus `O(log n)` forests of splay nodes.

pub mod ett;

use ett::{EulerForest, Id};
use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId};
use std::collections::{HashMap, HashSet};

#[derive(Debug)]
enum EdgeInfo {
    /// A spanning-forest edge present in forests `0..=level`;
    /// `arcs[j]` are its arc handles in forest `j`.
    Tree { level: usize, arcs: Vec<(Id, Id)> },
    /// A non-tree edge stored at one level.
    NonTree { level: usize },
}

/// HDT fully dynamic connectivity with min-id component labelling.
pub struct DynCc {
    levels: Vec<EulerForest>,
    /// `nontree[i][v]`: endpoints of level-`i` non-tree edges at `v`.
    nontree: Vec<Vec<HashSet<NodeId>>>,
    edges: HashMap<(NodeId, NodeId), EdgeInfo>,
    max_level: usize,
}

fn key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl DynCc {
    /// Builds the structure over all edges of `g` (treated undirected).
    pub fn new(g: &DynamicGraph) -> Self {
        let n = g.node_count();
        let mut s = Self::with_capacity(n);
        for (u, v, _) in g.edges() {
            s.insert_edge(u, v);
        }
        s
    }

    /// Empty structure over `n` isolated vertices.
    pub fn with_capacity(n: usize) -> Self {
        let max_level = usize::BITS as usize - n.max(2).leading_zeros() as usize; // ⌈log₂ n⌉
        let levels = (0..=max_level).map(|_| EulerForest::new(n)).collect();
        let nontree = (0..=max_level).map(|_| vec![HashSet::new(); n]).collect();
        DynCc {
            levels,
            nontree,
            edges: HashMap::new(),
            max_level,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.levels[0].num_vertices()
    }

    /// Whether `u` and `v` are connected.
    pub fn connected(&mut self, u: NodeId, v: NodeId) -> bool {
        self.levels[0].connected(u, v)
    }

    /// Component id (minimum node id of the component) of `v`.
    pub fn component_id(&mut self, v: NodeId) -> NodeId {
        self.levels[0].component_id(v)
    }

    /// Component ids of all vertices — the CC query output.
    pub fn components(&mut self) -> Vec<NodeId> {
        (0..self.num_vertices() as NodeId)
            .map(|v| self.component_id(v))
            .collect()
    }

    /// Inserts edge `(u, v)`. Returns `false` if it already exists.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let k = key(u, v);
        if self.edges.contains_key(&k) {
            return false;
        }
        if self.levels[0].connected(u, v) {
            self.add_nontree(0, u, v);
            self.edges.insert(k, EdgeInfo::NonTree { level: 0 });
        } else {
            let arcs = self.levels[0].link(u, v);
            self.edges.insert(
                k,
                EdgeInfo::Tree {
                    level: 0,
                    arcs: vec![arcs],
                },
            );
            // Level-0 tree edges are marked in forest 0 for promotion scans.
            self.levels[0].set_mark(arcs.0, true);
        }
        true
    }

    /// Deletes edge `(u, v)`. Returns `false` if absent.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let k = key(u, v);
        let Some(info) = self.edges.remove(&k) else {
            return false;
        };
        match info {
            EdgeInfo::NonTree { level } => {
                self.remove_nontree(level, k.0, k.1);
            }
            EdgeInfo::Tree { level, arcs } => {
                for (j, &(a1, a2)) in arcs.iter().enumerate() {
                    // Clear the promotion mark before recycling the arcs.
                    if j == level {
                        self.levels[j].set_mark(a1, false);
                    }
                    self.levels[j].cut(a1, a2);
                }
                self.search_replacement(k.0, k.1, level);
            }
        }
        true
    }

    /// Processes one effective unit update.
    pub fn apply_unit(&mut self, inserted: bool, u: NodeId, v: NodeId) {
        if inserted {
            self.insert_edge(u, v);
        } else {
            self.delete_edge(u, v);
        }
    }

    /// Processes a batch by replaying its unit updates one by one — the
    /// behaviour the paper observes (and penalizes) in Exp-2.
    pub fn apply_batch(&mut self, applied: &AppliedBatch) {
        let _span = incgraph_obs::span("baseline.update");
        for op in applied.ops() {
            self.apply_unit(op.inserted, op.src, op.dst);
        }
    }

    /// Resident bytes (Fig. 8): forests, non-tree sets, edge map.
    pub fn space_bytes(&self) -> usize {
        let forests: usize = self.levels.iter().map(|f| f.space_bytes()).sum();
        let sets: usize = self
            .nontree
            .iter()
            .flat_map(|lvl| lvl.iter())
            .map(|s| {
                s.capacity() * std::mem::size_of::<NodeId>()
                    + std::mem::size_of::<HashSet<NodeId>>()
            })
            .sum();
        let map = self.edges.capacity()
            * (std::mem::size_of::<(NodeId, NodeId)>() + std::mem::size_of::<EdgeInfo>());
        forests + sets + map
    }

    fn add_nontree(&mut self, level: usize, u: NodeId, v: NodeId) {
        for (a, b) in [(u, v), (v, u)] {
            let set = &mut self.nontree[level][a as usize];
            let was_empty = set.is_empty();
            set.insert(b);
            if was_empty {
                self.levels[level].set_nontree_flag(a, true);
            }
        }
    }

    fn remove_nontree(&mut self, level: usize, u: NodeId, v: NodeId) {
        for (a, b) in [(u, v), (v, u)] {
            let set = &mut self.nontree[level][a as usize];
            set.remove(&b);
            if set.is_empty() {
                self.levels[level].set_nontree_flag(a, false);
            }
        }
    }

    /// HDT replacement search after deleting a tree edge of level `ℓ`
    /// whose endpoints were `u` / `v`.
    fn search_replacement(&mut self, u: NodeId, v: NodeId, lvl: usize) {
        for i in (0..=lvl).rev() {
            // Smaller side of the split at level i.
            let su = self.levels[i].tree_size(u);
            let sv = self.levels[i].tree_size(v);
            let small = if su <= sv { u } else { v };

            // 1) Promote the smaller side's level-i tree edges to i+1.
            while let Some((arc, (a, b))) = self.levels[i].find_marked_arc(small) {
                debug_assert!(i < self.max_level, "HDT level overflow");
                self.levels[i].set_mark(arc, false);
                let new_arcs = self.levels[i + 1].link(a, b);
                self.levels[i + 1].set_mark(new_arcs.0, true);
                match self.edges.get_mut(&key(a, b)) {
                    Some(EdgeInfo::Tree { level, arcs }) => {
                        debug_assert_eq!(*level, i);
                        *level = i + 1;
                        arcs.push(new_arcs);
                    }
                    other => unreachable!("marked arc without tree entry: {other:?}"),
                }
            }

            // 2) Scan the smaller side's level-i non-tree edges.
            while let Some(x) = self.levels[i].find_nontree_vertex(small) {
                let y = *self.nontree[i][x as usize]
                    .iter()
                    .next()
                    .expect("flagged vertex has an edge");
                self.remove_nontree(i, x, y);
                if self.levels[i].connected(x, y) {
                    // Both endpoints on the smaller side: promote.
                    debug_assert!(i < self.max_level, "HDT level overflow");
                    self.add_nontree(i + 1, x, y);
                    match self.edges.get_mut(&key(x, y)) {
                        Some(EdgeInfo::NonTree { level }) => *level = i + 1,
                        other => unreachable!("non-tree scan hit tree edge: {other:?}"),
                    }
                } else {
                    // Replacement found: (x, y) becomes a tree edge at
                    // level i, linked into forests 0..=i.
                    let mut arcs = Vec::with_capacity(i + 1);
                    for j in 0..=i {
                        arcs.push(self.levels[j].link(x, y));
                    }
                    self.levels[i].set_mark(arcs[i].0, true);
                    self.edges
                        .insert(key(x, y), EdgeInfo::Tree { level: i, arcs });
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_components(adj: &[HashSet<NodeId>]) -> Vec<NodeId> {
        let n = adj.len();
        let mut label = vec![NodeId::MAX; n];
        for s in 0..n {
            if label[s] != NodeId::MAX {
                continue;
            }
            let mut st = vec![s];
            label[s] = s as NodeId;
            while let Some(x) = st.pop() {
                for &y in &adj[x] {
                    if label[y as usize] == NodeId::MAX {
                        label[y as usize] = s as NodeId;
                        st.push(y as usize);
                    }
                }
            }
        }
        label
    }

    #[test]
    fn insert_and_query() {
        let mut cc = DynCc::with_capacity(5);
        assert!(!cc.connected(0, 4));
        cc.insert_edge(0, 1);
        cc.insert_edge(1, 4);
        assert!(cc.connected(0, 4));
        assert_eq!(cc.components(), vec![0, 0, 2, 3, 0]);
    }

    #[test]
    fn tree_edge_deletion_finds_replacement() {
        // Cycle 0-1-2-3-0: deleting any edge keeps everything connected.
        let mut cc = DynCc::with_capacity(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            cc.insert_edge(u, v);
        }
        cc.delete_edge(0, 1);
        assert!(cc.connected(0, 1), "replacement via 0-3-2-1");
        cc.delete_edge(2, 3);
        assert!(!cc.connected(1, 3), "now split into {{0,3}} and {{1,2}}");
        assert_eq!(cc.components(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn duplicate_and_missing_edges_are_noops() {
        let mut cc = DynCc::with_capacity(3);
        assert!(cc.insert_edge(0, 1));
        assert!(!cc.insert_edge(1, 0), "normalized duplicate");
        assert!(cc.delete_edge(1, 0));
        assert!(!cc.delete_edge(0, 1));
        assert!(!cc.insert_edge(2, 2), "self loop ignored");
    }

    #[test]
    fn randomized_against_bfs_oracle() {
        use incgraph_graph::rng::SplitMix64;
        let n = 50usize;
        let mut rng = SplitMix64::seed_from_u64(2024);
        let mut cc = DynCc::with_capacity(n);
        let mut adj: Vec<HashSet<NodeId>> = vec![HashSet::new(); n];
        let mut live: Vec<(NodeId, NodeId)> = Vec::new();
        for step in 0..600 {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if u != v && rng.gen_bool(0.55) {
                if cc.insert_edge(u, v) {
                    adj[u as usize].insert(v);
                    adj[v as usize].insert(u);
                    live.push(key(u, v));
                }
            } else if !live.is_empty() {
                let i = rng.gen_range(0..live.len());
                let (a, b) = live.swap_remove(i);
                assert!(cc.delete_edge(a, b));
                adj[a as usize].remove(&b);
                adj[b as usize].remove(&a);
            }
            if step % 20 == 0 {
                assert_eq!(
                    cc.components(),
                    reference_components(&adj),
                    "divergence at step {step}"
                );
            }
        }
        assert_eq!(cc.components(), reference_components(&adj));
    }

    #[test]
    fn dense_then_teardown() {
        // Build a clique on 12 vertices, then delete every edge; each
        // deletion exercises replacement search through the levels.
        let n = 12u32;
        let mut cc = DynCc::with_capacity(n as usize);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                cc.insert_edge(u, v);
                edges.push((u, v));
            }
        }
        assert_eq!(cc.components(), vec![0; 12]);
        for (i, &(u, v)) in edges.iter().enumerate() {
            assert!(cc.delete_edge(u, v), "edge {i}");
        }
        let expect: Vec<NodeId> = (0..n).collect();
        assert_eq!(cc.components(), expect);
    }

    #[test]
    fn from_graph_constructor() {
        let g = incgraph_graph::gen::uniform(40, 80, false, 1, 1, 6);
        let mut cc = DynCc::new(&g);
        let mut adj: Vec<HashSet<NodeId>> = vec![HashSet::new(); 40];
        for (u, v, _) in g.edges() {
            adj[u as usize].insert(v);
            adj[v as usize].insert(u);
        }
        assert_eq!(cc.components(), reference_components(&adj));
    }

    #[test]
    fn space_is_reported_and_substantial() {
        let g = incgraph_graph::gen::uniform(200, 800, false, 1, 1, 6);
        let cc = DynCc::new(&g);
        // The hierarchy carries log-many forests: space far exceeds the
        // plain graph, which is the paper's OOM observation in miniature.
        assert!(cc.space_bytes() > g.space_bytes());
    }
}
