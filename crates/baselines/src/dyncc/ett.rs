//! Euler-tour forest over splay trees: the balanced-tree backbone of the
//! HDT dynamic-connectivity structure.
//!
//! Each tree of the forest is represented by the Euler tour of its arcs,
//! stored as a splay tree (amortized `O(log n)` per operation) in tour
//! order. Every vertex contributes one *self node* `(v, v)` and every
//! tree edge two *arc nodes* `(u, v)` and `(v, u)`. Splay nodes aggregate,
//! over their subtree:
//!
//! * the number of self nodes (= tree size, for HDT's smaller-side rule),
//! * the minimum vertex id among self nodes (= component id for CC),
//! * an OR of "this vertex has non-tree edges at this level" flags,
//! * an OR of "this arc's edge lives at exactly this level" marks,
//!
//! which lets HDT find replacement-edge candidates and promotable tree
//! edges by descending the aggregate flags in `O(log n)`.

use incgraph_graph::NodeId;

/// Splay-node handle.
pub type Id = u32;
/// Null handle.
pub const NIL: Id = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    l: Id,
    r: Id,
    p: Id,
    /// `(v, v)` for self nodes, `(u, v)` with `u != v` for arc nodes.
    u: NodeId,
    v: NodeId,
    /// Own flag: vertex has non-tree edges at this level (self nodes only).
    own_nontree: bool,
    /// Own flag: this arc's tree edge lives at exactly this level.
    own_mark: bool,
    agg_size: u32,
    agg_min_vertex: NodeId,
    agg_nontree: bool,
    agg_mark: bool,
}

impl Node {
    fn new(u: NodeId, v: NodeId) -> Self {
        let is_self = u == v;
        Node {
            l: NIL,
            r: NIL,
            p: NIL,
            u,
            v,
            own_nontree: false,
            own_mark: false,
            agg_size: is_self as u32,
            agg_min_vertex: if is_self { u } else { NodeId::MAX },
            agg_nontree: false,
            agg_mark: false,
        }
    }
}

/// An Euler-tour forest over `n` vertices.
pub struct EulerForest {
    nodes: Vec<Node>,
    free: Vec<Id>,
    /// The self node of each vertex.
    vnode: Vec<Id>,
}

impl EulerForest {
    /// Forest of `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        let mut nodes = Vec::with_capacity(2 * n);
        let vnode = (0..n as NodeId)
            .map(|v| {
                nodes.push(Node::new(v, v));
                (nodes.len() - 1) as Id
            })
            .collect();
        EulerForest {
            nodes,
            free: Vec::new(),
            vnode,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vnode.len()
    }

    /// Adds an isolated vertex.
    pub fn add_vertex(&mut self) -> NodeId {
        let v = self.vnode.len() as NodeId;
        let id = self.alloc(Node::new(v, v));
        self.vnode.push(id);
        v
    }

    /// Approximate resident bytes (Fig. 8 space accounting).
    pub fn space_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>() + self.vnode.capacity() * 4
    }

    fn alloc(&mut self, node: Node) -> Id {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as Id
        }
    }

    #[inline]
    fn pull(&mut self, x: Id) {
        let (l, r) = {
            let n = &self.nodes[x as usize];
            (n.l, n.r)
        };
        let mut size = (self.nodes[x as usize].u == self.nodes[x as usize].v) as u32;
        let mut minv = if size == 1 {
            self.nodes[x as usize].u
        } else {
            NodeId::MAX
        };
        let mut nontree = self.nodes[x as usize].own_nontree;
        let mut mark = self.nodes[x as usize].own_mark;
        for c in [l, r] {
            if c != NIL {
                let cn = &self.nodes[c as usize];
                size += cn.agg_size;
                minv = minv.min(cn.agg_min_vertex);
                nontree |= cn.agg_nontree;
                mark |= cn.agg_mark;
            }
        }
        let n = &mut self.nodes[x as usize];
        n.agg_size = size;
        n.agg_min_vertex = minv;
        n.agg_nontree = nontree;
        n.agg_mark = mark;
    }

    fn rotate(&mut self, x: Id) {
        let p = self.nodes[x as usize].p;
        debug_assert_ne!(p, NIL);
        let g = self.nodes[p as usize].p;
        let left_child = self.nodes[p as usize].l == x;
        // Move the inner subtree of x across to p.
        let inner = if left_child {
            let inner = self.nodes[x as usize].r;
            self.nodes[p as usize].l = inner;
            self.nodes[x as usize].r = p;
            inner
        } else {
            let inner = self.nodes[x as usize].l;
            self.nodes[p as usize].r = inner;
            self.nodes[x as usize].l = p;
            inner
        };
        if inner != NIL {
            self.nodes[inner as usize].p = p;
        }
        self.nodes[p as usize].p = x;
        self.nodes[x as usize].p = g;
        if g != NIL {
            if self.nodes[g as usize].l == p {
                self.nodes[g as usize].l = x;
            } else {
                self.nodes[g as usize].r = x;
            }
        }
        self.pull(p);
        self.pull(x);
    }

    /// Splays `x` to the root of its splay tree.
    fn splay(&mut self, x: Id) {
        while self.nodes[x as usize].p != NIL {
            let p = self.nodes[x as usize].p;
            let g = self.nodes[p as usize].p;
            if g != NIL {
                let zigzig = (self.nodes[g as usize].l == p) == (self.nodes[p as usize].l == x);
                if zigzig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
    }

    /// Root of the splay tree containing `x` (splays `x` for amortization).
    pub fn splay_root(&mut self, x: Id) -> Id {
        self.splay(x);
        x
    }

    /// Whether vertices `u` and `v` are in the same tree.
    pub fn connected(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        let a = self.vnode[u as usize];
        let b = self.vnode[v as usize];
        self.splay(a);
        self.splay(b);
        // If they share a tree, splaying b placed a somewhere under b.
        self.nodes[a as usize].p != NIL
    }

    /// Size (vertex count) of the tree containing vertex `v`.
    pub fn tree_size(&mut self, v: NodeId) -> u32 {
        let x = self.vnode[v as usize];
        self.splay(x);
        self.nodes[x as usize].agg_size
    }

    /// Minimum vertex id in the tree containing `v` — the component id.
    pub fn component_id(&mut self, v: NodeId) -> NodeId {
        let x = self.vnode[v as usize];
        self.splay(x);
        self.nodes[x as usize].agg_min_vertex
    }

    /// Sets the "has non-tree edges at this level" flag of vertex `v`.
    pub fn set_nontree_flag(&mut self, v: NodeId, on: bool) {
        let x = self.vnode[v as usize];
        self.splay(x);
        self.nodes[x as usize].own_nontree = on;
        self.pull(x);
    }

    /// Sets the level mark on a tree-edge arc.
    pub fn set_mark(&mut self, arc: Id, on: bool) {
        self.splay(arc);
        self.nodes[arc as usize].own_mark = on;
        self.pull(arc);
    }

    /// Finds a vertex with the non-tree flag set in the tree containing
    /// `v`, if any.
    pub fn find_nontree_vertex(&mut self, v: NodeId) -> Option<NodeId> {
        let root = self.splay_root(self.vnode[v as usize]);
        if !self.nodes[root as usize].agg_nontree {
            return None;
        }
        let mut x = root;
        loop {
            let n = &self.nodes[x as usize];
            let (l, r, own) = (n.l, n.r, n.own_nontree);
            if own {
                return Some(self.nodes[x as usize].u);
            }
            if l != NIL && self.nodes[l as usize].agg_nontree {
                x = l;
            } else {
                debug_assert!(r != NIL && self.nodes[r as usize].agg_nontree);
                x = r;
            }
        }
    }

    /// Finds a level-marked arc in the tree containing `v`, if any;
    /// returns the arc's `(handle, (u, v))`.
    pub fn find_marked_arc(&mut self, v: NodeId) -> Option<(Id, (NodeId, NodeId))> {
        let root = self.splay_root(self.vnode[v as usize]);
        if !self.nodes[root as usize].agg_mark {
            return None;
        }
        let mut x = root;
        loop {
            let n = &self.nodes[x as usize];
            let (l, r, own) = (n.l, n.r, n.own_mark);
            if own {
                let n = &self.nodes[x as usize];
                return Some((x, (n.u, n.v)));
            }
            if l != NIL && self.nodes[l as usize].agg_mark {
                x = l;
            } else {
                debug_assert!(r != NIL && self.nodes[r as usize].agg_mark);
                x = r;
            }
        }
    }

    /// Joins two splay trees (`a` entirely before `b`). Either may be NIL.
    fn join(&mut self, a: Id, b: Id) -> Id {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        // Splay the rightmost node of a, attach b.
        let mut x = a;
        while self.nodes[x as usize].r != NIL {
            x = self.nodes[x as usize].r;
        }
        self.splay(x);
        self.nodes[x as usize].r = b;
        self.nodes[b as usize].p = x;
        self.pull(x);
        x
    }

    /// Splits the tour before `x`: returns `(left, right)` with `x` the
    /// first element of `right`.
    fn split_before(&mut self, x: Id) -> (Id, Id) {
        self.splay(x);
        let l = self.nodes[x as usize].l;
        if l != NIL {
            self.nodes[l as usize].p = NIL;
            self.nodes[x as usize].l = NIL;
            self.pull(x);
        }
        (l, x)
    }

    /// Splits the tour after `x`: returns `(left, right)` with `x` the
    /// last element of `left`.
    fn split_after(&mut self, x: Id) -> (Id, Id) {
        self.splay(x);
        let r = self.nodes[x as usize].r;
        if r != NIL {
            self.nodes[r as usize].p = NIL;
            self.nodes[x as usize].r = NIL;
            self.pull(x);
        }
        (x, r)
    }

    /// Rotates the tour of `v`'s tree so it starts at `v`'s self node.
    fn reroot(&mut self, v: NodeId) -> Id {
        let x = self.vnode[v as usize];
        let (l, r) = self.split_before(x);
        self.join(r, l)
    }

    /// Links the trees of `u` and `v` with a tree edge, returning the two
    /// arc handles `((u→v), (v→u))`. The vertices must be in different
    /// trees.
    pub fn link(&mut self, u: NodeId, v: NodeId) -> (Id, Id) {
        debug_assert!(!self.connected(u, v), "link would create a cycle");
        let tu = self.reroot(u);
        let tv = self.reroot(v);
        let auv = self.alloc(Node::new(u, v));
        let avu = self.alloc(Node::new(v, u));
        // Tour: [u ...] (u,v) [v ...] (v,u)
        let t = self.join(tu, auv);
        let t = self.join(t, tv);
        self.join(t, avu);
        (auv, avu)
    }

    /// Cuts the tree edge with arc handles `(a1, a2)` (in either order),
    /// separating the subtree between them.
    pub fn cut(&mut self, a1: Id, a2: Id) {
        // Order the arcs along the tour: splay a1, then check whether a2
        // ended up in its left subtree (a2 precedes a1) or right.
        let (first, second) = {
            self.splay(a1);
            self.splay(a2);
            // After splaying a2 to the root, a1 is a descendant. Walk up
            // from a1: if we arrive from the left side, a1 precedes a2.
            let mut x = a1;
            let mut from_left = false;
            while self.nodes[x as usize].p != NIL {
                let p = self.nodes[x as usize].p;
                from_left = self.nodes[p as usize].l == x;
                x = p;
            }
            debug_assert_eq!(x, a2);
            if from_left {
                (a1, a2)
            } else {
                (a2, a1)
            }
        };
        // Tour: X ++ [first] ++ MID ++ [second] ++ Z
        let (x_part, _) = self.split_before(first);
        let (first_alone, _) = self.split_after(first);
        debug_assert_eq!(first_alone, first);
        let (_, z_part) = self.split_after(second);
        // Detach `second` from MID's end; MID stays behind as its own
        // root: it is the separated subtree's tour.
        let (_mid, second_alone) = self.split_before(second);
        debug_assert_eq!(second_alone, second);
        self.join(x_part, z_part);
        // Recycle the arc nodes.
        for a in [first, second] {
            self.nodes[a as usize] = Node::new(0, 0);
            self.nodes[a as usize].agg_size = 0; // not a real self node
            self.nodes[a as usize].agg_min_vertex = NodeId::MAX;
            self.free.push(a);
        }
    }

    /// The tour vertices of `v`'s tree (self nodes in tour order); test
    /// and debugging helper, O(size).
    pub fn tree_vertices(&mut self, v: NodeId) -> Vec<NodeId> {
        let root = self.splay_root(self.vnode[v as usize]);
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            if x == NIL {
                continue;
            }
            let n = &self.nodes[x as usize];
            stack.push(n.l);
            stack.push(n.r);
            if n.u == n.v {
                out.push(n.u);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_forest_is_disconnected() {
        let mut f = EulerForest::new(4);
        assert!(!f.connected(0, 1));
        assert!(f.connected(2, 2));
        assert_eq!(f.tree_size(3), 1);
        assert_eq!(f.component_id(3), 3);
    }

    #[test]
    fn link_connects_and_cut_disconnects() {
        let mut f = EulerForest::new(5);
        let (a, b) = f.link(0, 1);
        let _ = f.link(1, 2);
        assert!(f.connected(0, 2));
        assert_eq!(f.tree_size(0), 3);
        assert_eq!(f.component_id(2), 0);
        f.cut(a, b);
        assert!(!f.connected(0, 1));
        assert!(f.connected(1, 2));
        assert_eq!(f.component_id(2), 1);
        assert_eq!(f.tree_size(0), 1);
    }

    #[test]
    fn cut_with_arcs_in_either_order() {
        let mut f = EulerForest::new(3);
        let (a, b) = f.link(0, 1);
        f.cut(b, a); // reversed handles
        assert!(!f.connected(0, 1));
    }

    #[test]
    fn long_chain_and_random_cuts_match_oracle() {
        use incgraph_graph::rng::SplitMix64;
        let n = 60usize;
        let mut rng = SplitMix64::seed_from_u64(42);
        let mut f = EulerForest::new(n);
        // Maintain a parallel naive forest as oracle.
        let mut edges: Vec<(NodeId, NodeId, (Id, Id))> = Vec::new();
        let mut adj = vec![std::collections::HashSet::new(); n];
        let oracle_connected = |adj: &Vec<std::collections::HashSet<usize>>, a: usize, b: usize| {
            let mut seen = vec![false; adj.len()];
            let mut st = vec![a];
            seen[a] = true;
            while let Some(x) = st.pop() {
                if x == b {
                    return true;
                }
                for &y in &adj[x] {
                    if !seen[y] {
                        seen[y] = true;
                        st.push(y);
                    }
                }
            }
            a == b
        };
        for _ in 0..400 {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if u == v {
                continue;
            }
            if rng.gen_bool(0.6) {
                if !f.connected(u, v) {
                    let arcs = f.link(u, v);
                    edges.push((u, v, arcs));
                    adj[u as usize].insert(v as usize);
                    adj[v as usize].insert(u as usize);
                }
            } else if !edges.is_empty() {
                let i = rng.gen_range(0..edges.len());
                let (a, b, arcs) = edges.swap_remove(i);
                f.cut(arcs.0, arcs.1);
                adj[a as usize].remove(&(b as usize));
                adj[b as usize].remove(&(a as usize));
            }
            // Spot-check connectivity against the oracle.
            for _ in 0..5 {
                let x = rng.gen_range(0..n);
                let y = rng.gen_range(0..n);
                assert_eq!(
                    f.connected(x as NodeId, y as NodeId),
                    oracle_connected(&adj, x, y),
                    "connectivity({x},{y}) diverged"
                );
            }
        }
    }

    #[test]
    fn aggregates_track_min_vertex_and_size() {
        let mut f = EulerForest::new(6);
        f.link(5, 3);
        f.link(3, 4);
        assert_eq!(f.component_id(4), 3);
        assert_eq!(f.tree_size(5), 3);
        f.link(4, 1);
        assert_eq!(f.component_id(5), 1);
        assert_eq!(f.tree_size(1), 4);
    }

    #[test]
    fn nontree_flags_are_searchable() {
        let mut f = EulerForest::new(5);
        f.link(0, 1);
        f.link(1, 2);
        assert_eq!(f.find_nontree_vertex(0), None);
        f.set_nontree_flag(2, true);
        assert_eq!(f.find_nontree_vertex(0), Some(2));
        // Flag in a different tree must not leak.
        assert_eq!(f.find_nontree_vertex(3), None);
        f.set_nontree_flag(2, false);
        assert_eq!(f.find_nontree_vertex(0), None);
    }

    #[test]
    fn marks_are_searchable_per_tree() {
        let mut f = EulerForest::new(4);
        let (a01, _) = f.link(0, 1);
        let _ = f.link(2, 3);
        f.set_mark(a01, true);
        let found = f.find_marked_arc(1).expect("mark in tree of 1");
        assert_eq!(found.1, (0, 1));
        assert_eq!(f.find_marked_arc(2), None);
    }

    #[test]
    fn tour_vertices_enumerates_tree() {
        let mut f = EulerForest::new(6);
        f.link(0, 2);
        f.link(2, 4);
        assert_eq!(f.tree_vertices(4), vec![0, 2, 4]);
        assert_eq!(f.tree_vertices(1), vec![1]);
    }

    #[test]
    fn add_vertex_extends_forest() {
        let mut f = EulerForest::new(2);
        let v = f.add_vertex();
        assert_eq!(v, 2);
        f.link(0, v);
        assert!(f.connected(0, 2));
        assert_eq!(f.tree_size(2), 2);
    }

    #[test]
    fn link_cut_reuse_recycles_nodes() {
        let mut f = EulerForest::new(3);
        let before = f.nodes.len();
        let (a, b) = f.link(0, 1);
        f.cut(a, b);
        let (a2, b2) = f.link(1, 2);
        // The freed arc nodes should have been reused.
        assert_eq!(f.nodes.len(), before + 2);
        f.cut(a2, b2);
    }
}
