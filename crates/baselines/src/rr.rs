//! `RR`: the Ramalingam–Reps dynamic SSSP algorithm \[39, 40\] for **unit**
//! updates — the paper's unit-update SSSP baseline (Exp-1).
//!
//! The algorithm maintains the distance array only. An insertion triggers
//! a Dijkstra-style *lowering* phase from the new edge's head. A deletion
//! runs the classic two phases: (1) identify the **affected vertices** —
//! those whose every remaining shortest path went through the deleted
//! edge — by peeling vertices that lose all their tight supports, in
//! distance order; (2) re-run Dijkstra restricted to the affected set,
//! seeded with the best boundary edges from unaffected vertices.

use incgraph_graph::ids::{Dist, INF_DIST};
use incgraph_graph::{DynamicGraph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Dynamic SSSP state à la Ramalingam–Reps.
pub struct RrSssp {
    source: NodeId,
    dist: Vec<Dist>,
}

impl RrSssp {
    /// Initializes from a batch Dijkstra run on `g`.
    pub fn new(g: &DynamicGraph, source: NodeId) -> Self {
        let mut s = RrSssp {
            source,
            dist: vec![INF_DIST; g.node_count()],
        };
        s.dist[source as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > s.dist[u as usize] {
                continue;
            }
            for &(v, w) in g.out_neighbors(u) {
                let nd = d + w as Dist;
                if nd < s.dist[v as usize] {
                    s.dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        s
    }

    /// Current distances.
    pub fn distances(&self) -> &[Dist] {
        &self.dist
    }

    /// Handles one unit update. `g` must already reflect the update.
    /// For undirected graphs the edge is processed in both directions.
    pub fn apply_unit(
        &mut self,
        g: &DynamicGraph,
        inserted: bool,
        u: NodeId,
        v: NodeId,
        w: Weight,
    ) {
        self.ensure_size(g);
        if inserted {
            self.inserted(g, u, v, w);
            if !g.is_directed() {
                self.inserted(g, v, u, w);
            }
        } else {
            self.deleted(g, u, v);
            if !g.is_directed() {
                self.deleted(g, v, u);
            }
        }
    }

    /// Resident bytes (Fig. 8).
    pub fn space_bytes(&self) -> usize {
        self.dist.capacity() * 8
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        if g.node_count() > self.dist.len() {
            self.dist.resize(g.node_count(), INF_DIST);
        }
    }

    /// Lowering phase after inserting `(u, v, w)`.
    fn inserted(&mut self, g: &DynamicGraph, u: NodeId, v: NodeId, w: Weight) {
        if self.dist[u as usize] == INF_DIST {
            return;
        }
        let cand = self.dist[u as usize] + w as Dist;
        if cand >= self.dist[v as usize] {
            return;
        }
        self.dist[v as usize] = cand;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((cand, v)));
        while let Some(Reverse((d, x))) = heap.pop() {
            if d > self.dist[x as usize] {
                continue;
            }
            for &(y, wy) in g.out_neighbors(x) {
                let nd = d + wy as Dist;
                if nd < self.dist[y as usize] {
                    self.dist[y as usize] = nd;
                    heap.push(Reverse((nd, y)));
                }
            }
        }
    }

    /// Two-phase repair after deleting `(u, v)` (`g` no longer has it).
    fn deleted(&mut self, g: &DynamicGraph, _u: NodeId, v: NodeId) {
        if self.dist[v as usize] == INF_DIST {
            return;
        }
        // Phase 1: peel affected vertices in distance order. A vertex is
        // affected when none of its remaining in-edges supports its
        // current distance through an unaffected tail.
        let mut affected: HashSet<NodeId> = HashSet::new();
        let mut work: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
        work.push(Reverse((self.dist[v as usize], v)));
        let mut enqueued: HashSet<NodeId> = HashSet::from([v]);
        while let Some(Reverse((d, x))) = work.pop() {
            if d != self.dist[x as usize] || affected.contains(&x) {
                continue;
            }
            let supported = g.in_neighbors(x).iter().any(|&(y, wy)| {
                !affected.contains(&y)
                    && self.dist[y as usize] != INF_DIST
                    && self.dist[y as usize] + wy as Dist == self.dist[x as usize]
            });
            if supported {
                continue;
            }
            affected.insert(x);
            for &(z, wz) in g.out_neighbors(x) {
                if self.dist[x as usize] != INF_DIST
                    && self.dist[z as usize] == self.dist[x as usize] + wz as Dist
                    && enqueued.insert(z)
                {
                    work.push(Reverse((self.dist[z as usize], z)));
                }
            }
        }
        if affected.is_empty() {
            return;
        }
        // Phase 2: Dijkstra over the affected set, seeded from the
        // unaffected boundary.
        let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
        for &a in &affected {
            self.dist[a as usize] = INF_DIST;
        }
        for &a in &affected {
            let mut best = INF_DIST;
            for &(y, wy) in g.in_neighbors(a) {
                if !affected.contains(&y) && self.dist[y as usize] != INF_DIST {
                    best = best.min(self.dist[y as usize] + wy as Dist);
                }
            }
            if a == self.source {
                best = 0;
            }
            if best < INF_DIST {
                self.dist[a as usize] = best;
                heap.push(Reverse((best, a)));
            }
        }
        while let Some(Reverse((d, x))) = heap.pop() {
            if d > self.dist[x as usize] {
                continue;
            }
            for &(y, wy) in g.out_neighbors(x) {
                let nd = d + wy as Dist;
                if nd < self.dist[y as usize] {
                    self.dist[y as usize] = nd;
                    heap.push(Reverse((nd, y)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn dijkstra(g: &DynamicGraph, s: NodeId) -> Vec<Dist> {
        RrSssp::new(g, s).dist
    }

    #[test]
    fn insertion_lowers_distances() {
        let mut g = DynamicGraph::new(true, 4);
        g.insert_edge(0, 1, 10);
        g.insert_edge(1, 2, 10);
        let mut rr = RrSssp::new(&g, 0);
        assert_eq!(rr.distances(), &[0, 10, 20, INF_DIST]);
        g.insert_edge(0, 2, 5);
        rr.apply_unit(&g, true, 0, 2, 5);
        assert_eq!(rr.distances(), &[0, 10, 5, INF_DIST]);
    }

    #[test]
    fn deletion_repairs_affected_region() {
        let mut g = DynamicGraph::new(true, 5);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        g.insert_edge(2, 3, 1);
        g.insert_edge(0, 3, 10);
        g.insert_edge(3, 4, 1);
        let mut rr = RrSssp::new(&g, 0);
        assert_eq!(rr.distances(), &[0, 1, 2, 3, 4]);
        g.delete_edge(1, 2);
        rr.apply_unit(&g, false, 1, 2, 1);
        assert_eq!(rr.distances(), dijkstra(&g, 0).as_slice());
        assert_eq!(rr.distances(), &[0, 1, INF_DIST, 10, 11]);
    }

    #[test]
    fn deletion_of_redundant_edge_is_cheap() {
        let mut g = DynamicGraph::new(true, 3);
        g.insert_edge(0, 1, 1);
        g.insert_edge(0, 2, 1);
        g.insert_edge(1, 2, 1); // redundant for distances
        let mut rr = RrSssp::new(&g, 0);
        g.delete_edge(1, 2);
        rr.apply_unit(&g, false, 1, 2, 1);
        assert_eq!(rr.distances(), &[0, 1, 1]);
    }

    #[test]
    fn random_unit_sequence_matches_dijkstra() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(150, 700, true, 10, 5, 55);
        let mut rr = RrSssp::new(&g, 3);
        let mut rng = SplitMix64::seed_from_u64(4);
        for step in 0..120 {
            let u = rng.gen_range(0..150) as NodeId;
            let v = rng.gen_range(0..150) as NodeId;
            let mut batch = UpdateBatch::new();
            if rng.gen_bool(0.5) {
                batch.insert(u, v, rng.gen_range(1u32..=10));
            } else {
                batch.delete(u, v);
            }
            let applied = batch.apply(&mut g);
            for op in applied.ops() {
                rr.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
            }
            assert_eq!(
                rr.distances(),
                dijkstra(&g, 3).as_slice(),
                "divergence at step {step}"
            );
        }
    }

    #[test]
    fn undirected_updates_propagate_both_ways() {
        let mut g = incgraph_graph::gen::grid(5, 5, 4, 8);
        let mut rr = RrSssp::new(&g, 0);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let applied = batch.apply(&mut g);
        for op in applied.ops() {
            rr.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
        }
        assert_eq!(rr.distances(), dijkstra(&g, 0).as_slice());
    }

    #[test]
    fn disconnecting_the_source_region() {
        let mut g = DynamicGraph::new(true, 3);
        g.insert_edge(0, 1, 2);
        g.insert_edge(1, 2, 2);
        let mut rr = RrSssp::new(&g, 0);
        g.delete_edge(0, 1);
        rr.apply_unit(&g, false, 0, 1, 2);
        assert_eq!(rr.distances(), &[0, INF_DIST, INF_DIST]);
    }
}
