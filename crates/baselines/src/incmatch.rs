//! `IncMatch`: incremental graph simulation after Fan, Wang and Wu \[23\]
//! — the paper's Sim baseline.
//!
//! In contrast to the deduced `IncSim` (one uniform scope function for
//! the whole batch), `IncMatch` follows the classic split design of \[23\]:
//! **deletions** are handled by direct false-propagation (retract every
//! match whose simulation condition fails, pushing retraction to pattern
//! predecessors), and **insertions** by discovering the *affected area* —
//! the false, label-compatible pairs backward-reachable from the inserted
//! edges through dependency edges — optimistically raising it, and
//! re-running the downward fixpoint over it. Both phases operate on the
//! match relation only; no timestamps or anchor orders are kept.

use incgraph_graph::{AppliedBatch, DynamicGraph, NodeId, Pattern};
use std::collections::VecDeque;

/// Incremental simulation state: the match matrix for one pattern.
pub struct IncMatch {
    q: Pattern,
    matches: Vec<bool>,
}

impl IncMatch {
    /// Computes the maximum simulation of `q` in `g` from scratch.
    pub fn new(g: &DynamicGraph, q: Pattern) -> Self {
        let nq = q.node_count();
        let matches = vec![false; g.node_count() * nq];
        let mut s = IncMatch { q, matches };
        s.recompute(g);
        s
    }

    /// Whether `v` matches pattern node `u`.
    pub fn matches(&self, v: NodeId, u: usize) -> bool {
        self.matches[v as usize * self.q.node_count() + u]
    }

    /// The match matrix in `(v, u)` row-major order.
    pub fn relation(&self) -> &[bool] {
        &self.matches
    }

    /// Number of matching pairs.
    pub fn match_count(&self) -> usize {
        self.matches.iter().filter(|&&b| b).count()
    }

    /// Processes a batch: deletion phase then insertion phase, both on
    /// the updated graph.
    pub fn apply_batch(&mut self, g: &DynamicGraph, applied: &AppliedBatch) {
        let _span = incgraph_obs::span("baseline.update");
        self.ensure_size(g);
        let nq = self.q.node_count();

        // ---- Deletion phase: false-propagation. ----
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (a, _b, _) in applied.deleted() {
            for u in 0..nq {
                let x = a as usize * nq + u;
                if self.matches[x] {
                    queue.push_back(x);
                }
            }
        }
        while let Some(x) = queue.pop_front() {
            if !self.matches[x] || self.condition(g, x) {
                continue;
            }
            self.matches[x] = false;
            let (v, u) = (x / nq, x % nq);
            for &(vp, _) in g.in_neighbors(v as NodeId) {
                for &up in self.q.in_neighbors(u) {
                    let y = vp as usize * nq + up;
                    if self.matches[y] {
                        queue.push_back(y);
                    }
                }
            }
        }

        // ---- Insertion phase: affected-area discovery + local fixpoint. ----
        let mut region: Vec<usize> = Vec::new();
        let mut in_region = vec![false; self.matches.len()];
        let mut stack: Vec<usize> = Vec::new();
        for (a, _b, _) in applied.inserted() {
            for u in 0..nq {
                let x = a as usize * nq + u;
                if !self.matches[x] && self.label_ok(g, x) && !in_region[x] {
                    in_region[x] = true;
                    stack.push(x);
                }
            }
        }
        while let Some(x) = stack.pop() {
            region.push(x);
            let (v, u) = (x / nq, x % nq);
            for &(vp, _) in g.in_neighbors(v as NodeId) {
                for &up in self.q.in_neighbors(u) {
                    let y = vp as usize * nq + up;
                    if !self.matches[y] && !in_region[y] && self.label_ok(g, y) {
                        in_region[y] = true;
                        stack.push(y);
                    }
                }
            }
        }
        if region.is_empty() {
            return;
        }
        // Optimistically raise the region, then tighten downward.
        for &x in &region {
            self.matches[x] = true;
        }
        let mut queue: VecDeque<usize> = region.iter().copied().collect();
        while let Some(x) = queue.pop_front() {
            if !self.matches[x] || self.condition(g, x) {
                continue;
            }
            self.matches[x] = false;
            let (v, u) = (x / nq, x % nq);
            for &(vp, _) in g.in_neighbors(v as NodeId) {
                for &up in self.q.in_neighbors(u) {
                    let y = vp as usize * nq + up;
                    if self.matches[y] {
                        queue.push_back(y);
                    }
                }
            }
        }
    }

    /// Resident bytes (Fig. 8).
    pub fn space_bytes(&self) -> usize {
        self.matches.capacity()
    }

    fn label_ok(&self, g: &DynamicGraph, x: usize) -> bool {
        let nq = self.q.node_count();
        g.label((x / nq) as NodeId) == self.q.label(x % nq)
    }

    /// The simulation condition for pair `x` under the current relation.
    fn condition(&self, g: &DynamicGraph, x: usize) -> bool {
        let nq = self.q.node_count();
        let (v, u) = ((x / nq) as NodeId, x % nq);
        if g.label(v) != self.q.label(u) {
            return false;
        }
        'succ: for &un in self.q.out_neighbors(u) {
            for &(vn, _) in g.out_neighbors(v) {
                if self.matches[vn as usize * nq + un] {
                    continue 'succ;
                }
            }
            return false;
        }
        true
    }

    /// Full recompute: the standard downward fixpoint from label matches.
    fn recompute(&mut self, g: &DynamicGraph) {
        let nq = self.q.node_count();
        for x in 0..self.matches.len() {
            self.matches[x] = self.label_ok(g, x);
        }
        let mut queue: VecDeque<usize> = (0..self.matches.len())
            .filter(|&x| self.matches[x])
            .collect();
        while let Some(x) = queue.pop_front() {
            if !self.matches[x] || self.condition(g, x) {
                continue;
            }
            self.matches[x] = false;
            let (v, u) = (x / nq, x % nq);
            for &(vp, _) in g.in_neighbors(v as NodeId) {
                for &up in self.q.in_neighbors(u) {
                    let y = vp as usize * nq + up;
                    if self.matches[y] {
                        queue.push_back(y);
                    }
                }
            }
        }
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        let need = g.node_count() * self.q.node_count();
        if need > self.matches.len() {
            let nq = self.q.node_count();
            let old = self.matches.len();
            self.matches.resize(need, false);
            for x in old..need {
                self.matches[x] = g.label((x / nq) as NodeId) == self.q.label(x % nq);
            }
            // Fresh label-matching rows start optimistic; tighten them.
            let mut queue: VecDeque<usize> = (old..need).filter(|&x| self.matches[x]).collect();
            while let Some(x) = queue.pop_front() {
                if !self.matches[x] || self.condition(g, x) {
                    continue;
                }
                self.matches[x] = false;
                let (v, u) = (x / nq, x % nq);
                for &(vp, _) in g.in_neighbors(v as NodeId) {
                    for &up in self.q.in_neighbors(u) {
                        let y = vp as usize * nq + up;
                        if self.matches[y] {
                            queue.push_back(y);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn reference(g: &DynamicGraph, q: &Pattern) -> Vec<bool> {
        IncMatch::new(g, q.clone()).matches
    }

    fn tri_pattern() -> Pattern {
        Pattern::new(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 1)])
    }

    #[test]
    fn fresh_computation_matches_naive() {
        let mut g = DynamicGraph::with_labels(true, vec![0, 1, 2, 1, 2]);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 3)] {
            g.insert_edge(u, v, 1);
        }
        let s = IncMatch::new(&g, tri_pattern());
        assert!(s.matches(0, 0));
        assert!(s.matches(3, 1) && s.matches(4, 2));
    }

    #[test]
    fn deletion_phase_retracts_chains() {
        let mut g = DynamicGraph::with_labels(true, vec![0, 1, 2, 1]);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 2)] {
            g.insert_edge(u, v, 1);
        }
        let mut s = IncMatch::new(&g, tri_pattern());
        assert!(s.matches(0, 0));
        let mut batch = UpdateBatch::new();
        batch.delete(1, 2);
        let applied = batch.apply(&mut g);
        s.apply_batch(&g, &applied);
        assert_eq!(s.relation(), reference(&g, &tri_pattern()).as_slice());
        assert!(!s.matches(0, 0));
        assert!(s.matches(2, 2), "self-sustaining cycle survives");
    }

    #[test]
    fn insertion_phase_discovers_new_matches() {
        let mut g = DynamicGraph::with_labels(true, vec![0, 1, 2, 1]);
        g.insert_edge(0, 1, 1);
        g.insert_edge(2, 3, 1);
        g.insert_edge(3, 2, 1);
        let mut s = IncMatch::new(&g, tri_pattern());
        assert!(!s.matches(0, 0));
        let mut batch = UpdateBatch::new();
        batch.insert(1, 2, 1);
        let applied = batch.apply(&mut g);
        s.apply_batch(&g, &applied);
        assert_eq!(s.relation(), reference(&g, &tri_pattern()).as_slice());
        assert!(s.matches(0, 0));
    }

    #[test]
    fn mixed_random_batches_match_reference() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(60, 240, true, 1, 3, 91);
        let q = tri_pattern();
        let mut s = IncMatch::new(&g, q.clone());
        let mut rng = SplitMix64::seed_from_u64(6);
        for round in 0..25 {
            let mut batch = UpdateBatch::new();
            for _ in 0..8 {
                let u = rng.gen_range(0..60) as NodeId;
                let v = rng.gen_range(0..60) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            s.apply_batch(&g, &applied);
            assert_eq!(
                s.relation(),
                reference(&g, &q).as_slice(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn cyclic_pattern_cyclic_data() {
        use incgraph_graph::rng::SplitMix64;
        let q = Pattern::new(vec![1, 2], &[(0, 1), (1, 0)]);
        let mut g = DynamicGraph::with_labels(true, (0..30).map(|i| 1 + (i % 2) as u32).collect());
        for i in 0..30u32 {
            g.insert_edge(i, (i + 1) % 30, 1);
        }
        let mut s = IncMatch::new(&g, q.clone());
        let mut rng = SplitMix64::seed_from_u64(18);
        for round in 0..20 {
            let mut batch = UpdateBatch::new();
            for _ in 0..4 {
                let u = rng.gen_range(0..30) as NodeId;
                let v = rng.gen_range(0..30) as NodeId;
                if rng.gen_bool(0.5) {
                    batch.insert(u, v, 1);
                } else {
                    batch.delete(u, v);
                }
            }
            let applied = batch.apply(&mut g);
            s.apply_batch(&g, &applied);
            assert_eq!(
                s.relation(),
                reference(&g, &q).as_slice(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn vertex_growth_is_supported() {
        let mut g = DynamicGraph::with_labels(true, vec![0, 1]);
        g.insert_edge(0, 1, 1);
        let mut s = IncMatch::new(&g, tri_pattern());
        let v = g.add_node(2);
        let mut batch = UpdateBatch::new();
        batch.insert(1, v, 1).insert(v, 1, 1);
        let applied = batch.apply(&mut g);
        s.apply_batch(&g, &applied);
        assert_eq!(s.relation(), reference(&g, &tri_pattern()).as_slice());
        assert!(s.matches(0, 0));
    }
}
