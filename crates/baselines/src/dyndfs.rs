//! `DynDFS`: dynamic DFS-tree maintenance in the style of Yang, Wen, Qin,
//! Zhang, Wang and Lin \[50\] — the paper's DFS baseline.
//!
//! The state is *some* valid DFS forest (unlike the deduced `IncDFS`,
//! which must reproduce the canonical batch traversal). Each unit update
//! is classified:
//!
//! * deleting a **non-tree** edge, or inserting an edge that creates no
//!   forward-cross violation (`¬(u.last < v.first)`), leaves the forest
//!   valid — an `O(1)` no-op;
//! * anything else (tree-edge deletion, violating insertion) triggers a
//!   **suffix rebuild**: the forest is re-traversed from the earliest
//!   affected forest root onward, keeping the closed prefix.
//!
//! This simplifies \[50\] — the original maintains the tree with finer
//! subtree surgery — but preserves the behaviour the paper's experiments
//! exercise: insertions are mostly free, structural deletions cost a
//! large fraction of a full traversal, and on one giant component the
//! rebuild approaches batch cost (which is why the deduced `IncDFS` beats
//! it by a wide margin there).

use incgraph_graph::{DynamicGraph, NodeId};

/// Parent sentinel for forest roots.
pub const ROOT: NodeId = NodeId::MAX;

/// A maintained (valid, not canonical) DFS forest.
pub struct DynDfs {
    first: Vec<u32>,
    last: Vec<u32>,
    parent: Vec<NodeId>,
    visited_mark: Vec<u32>,
    epoch: u32,
}

impl DynDfs {
    /// Builds a DFS forest of `g` from scratch.
    pub fn new(g: &DynamicGraph) -> Self {
        let n = g.node_count();
        let mut s = DynDfs {
            first: vec![0; n],
            last: vec![0; n],
            parent: vec![ROOT; n],
            visited_mark: vec![0; n],
            epoch: 0,
        };
        s.rebuild_from(g, 0);
        s
    }

    /// Entry timestamp of `v`.
    pub fn first(&self, v: NodeId) -> u32 {
        self.first[v as usize]
    }

    /// Exit timestamp of `v`.
    pub fn last(&self, v: NodeId) -> u32 {
        self.last[v as usize]
    }

    /// DFS-tree parent of `v` ([`ROOT`] for forest roots).
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Applies one unit update; `g` must already reflect it. Returns the
    /// number of nodes re-traversed (0 for the no-op cases).
    pub fn apply_unit(&mut self, g: &DynamicGraph, inserted: bool, u: NodeId, v: NodeId) -> usize {
        self.ensure_size(g);
        if inserted {
            // Valid unless the new edge is forward-cross: for directed
            // graphs `u.last < v.first`; for undirected graphs any
            // disjointness of the two intervals (an undirected DFS leaves
            // only back edges).
            let fwd = self.last[u as usize] < self.first[v as usize];
            let bwd = self.last[v as usize] < self.first[u as usize];
            if fwd || (!g.is_directed() && bwd) {
                let anchor = if fwd { u } else { v };
                let t = self.root_time_of(anchor);
                return self.rebuild_from(g, t);
            }
            0
        } else {
            if self.parent[v as usize] == u || (!g.is_directed() && self.parent[u as usize] == v) {
                let anchor = if self.parent[v as usize] == u { u } else { v };
                let t = self.root_time_of(anchor);
                return self.rebuild_from(g, t);
            }
            0
        }
    }

    /// Resident bytes (Fig. 8).
    pub fn space_bytes(&self) -> usize {
        (self.first.capacity() + self.last.capacity() + self.visited_mark.capacity()) * 4
            + self.parent.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Entry time of the forest root whose subtree contains `v`.
    fn root_time_of(&self, v: NodeId) -> u32 {
        let mut x = v;
        while self.parent[x as usize] != ROOT {
            x = self.parent[x as usize];
        }
        self.first[x as usize]
    }

    /// Re-traverses every subtree entered at time `>= t0`, keeping the
    /// closed prefix. Returns the number of nodes re-traversed.
    fn rebuild_from(&mut self, g: &DynamicGraph, t0: u32) -> usize {
        let n = g.node_count();
        self.epoch += 1;
        let epoch = self.epoch;
        // Mark the kept prefix as visited.
        for x in 0..n {
            if self.first[x] < t0 && self.last[x] < t0 {
                self.visited_mark[x] = epoch;
            }
        }
        let mut time = t0;
        let mut redone = 0usize;
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for r in 0..n as NodeId {
            if self.visited_mark[r as usize] == epoch {
                continue;
            }
            self.enter(r, ROOT, &mut time, epoch);
            redone += 1;
            stack.push((r, 0));
            'frames: while let Some(&(x, idx0)) = stack.last() {
                let adj = g.out_neighbors(x);
                let mut idx = idx0;
                while idx < adj.len() {
                    let w = adj[idx].0;
                    idx += 1;
                    if self.visited_mark[w as usize] == epoch {
                        continue;
                    }
                    stack.last_mut().expect("frame").1 = idx;
                    self.enter(w, x, &mut time, epoch);
                    redone += 1;
                    stack.push((w, 0));
                    continue 'frames;
                }
                self.last[x as usize] = time;
                time += 1;
                stack.pop();
            }
        }
        redone
    }

    fn enter(&mut self, v: NodeId, p: NodeId, time: &mut u32, epoch: u32) {
        self.first[v as usize] = *time;
        self.parent[v as usize] = p;
        self.visited_mark[v as usize] = epoch;
        *time += 1;
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        let n = g.node_count();
        if n > self.first.len() {
            self.first.resize(n, u32::MAX);
            self.last.resize(n, u32::MAX);
            self.parent.resize(n, ROOT);
            self.visited_mark.resize(n, 0);
        }
    }
}

/// Validates that a `(first, last, parent)` labelling is a genuine DFS
/// forest of `g`: timestamps form a permutation, intervals nest along
/// tree edges that exist in the graph, and no graph edge is
/// forward-cross. Shared with the integration tests.
pub fn is_valid_dfs_forest(g: &DynamicGraph, s: &DynDfs) -> Result<(), String> {
    let n = g.node_count();
    let mut seen = vec![false; 2 * n];
    for v in 0..n as NodeId {
        let (f, l) = (s.first(v), s.last(v));
        if f >= l || l as usize >= 2 * n {
            return Err(format!("bad interval [{f},{l}] at {v}"));
        }
        for t in [f, l] {
            if std::mem::replace(&mut seen[t as usize], true) {
                return Err(format!("timestamp {t} reused at {v}"));
            }
        }
        let p = s.parent(v);
        if p != ROOT {
            if !g.has_edge(p, v) {
                return Err(format!("tree edge ({p},{v}) not in graph"));
            }
            if !(s.first(p) < f && l < s.last(p)) {
                return Err(format!("child {v} not nested in parent {p}"));
            }
        }
    }
    for (x, y, _) in g.edges() {
        if s.last(x) < s.first(y) {
            return Err(format!("forward-cross edge ({x},{y})"));
        }
        if !g.is_directed() && s.last(y) < s.first(x) {
            return Err(format!("forward-cross edge ({y},{x})"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    #[test]
    fn initial_forest_is_valid() {
        let g = incgraph_graph::gen::uniform(120, 500, true, 1, 1, 3);
        let s = DynDfs::new(&g);
        is_valid_dfs_forest(&g, &s).expect("valid");
    }

    #[test]
    fn non_violating_insert_is_noop() {
        let mut g = DynamicGraph::new(true, 4);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        let mut s = DynDfs::new(&g);
        // Back edge 2 -> 0: 0.first < 2.last, never forward-cross.
        g.insert_edge(2, 0, 1);
        assert_eq!(s.apply_unit(&g, true, 2, 0), 0);
        is_valid_dfs_forest(&g, &s).expect("valid");
    }

    #[test]
    fn violating_insert_triggers_rebuild() {
        let mut g = DynamicGraph::new(true, 4);
        g.insert_edge(0, 1, 1);
        // Components {0,1}, {2}, {3}: 2 and 3 are later roots.
        let mut s = DynDfs::new(&g);
        assert!(s.last(1) < s.first(3));
        g.insert_edge(1, 3, 1);
        let redone = s.apply_unit(&g, true, 1, 3);
        assert!(redone > 0, "forward-cross edge must force a rebuild");
        is_valid_dfs_forest(&g, &s).expect("valid");
        assert_eq!(s.parent(3), 1);
    }

    #[test]
    fn tree_edge_deletion_triggers_rebuild() {
        let mut g = DynamicGraph::new(true, 5);
        for i in 0..4u32 {
            g.insert_edge(i, i + 1, 1);
        }
        let mut s = DynDfs::new(&g);
        g.delete_edge(1, 2);
        let redone = s.apply_unit(&g, false, 1, 2);
        assert!(redone > 0);
        is_valid_dfs_forest(&g, &s).expect("valid");
        assert_eq!(s.parent(2), ROOT, "2 becomes a new forest root");
    }

    #[test]
    fn random_stream_stays_valid() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(80, 300, true, 1, 1, 44);
        let mut s = DynDfs::new(&g);
        let mut rng = SplitMix64::seed_from_u64(9);
        for step in 0..150 {
            let u = rng.gen_range(0..80) as NodeId;
            let v = rng.gen_range(0..80) as NodeId;
            if u == v {
                continue;
            }
            let mut batch = UpdateBatch::new();
            if rng.gen_bool(0.5) {
                batch.insert(u, v, 1);
            } else {
                batch.delete(u, v);
            }
            let applied = batch.apply(&mut g);
            for op in applied.ops() {
                s.apply_unit(&g, op.inserted, op.src, op.dst);
            }
            is_valid_dfs_forest(&g, &s).unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }

    #[test]
    fn undirected_stream_stays_valid() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::grid(6, 6, 1, 1);
        let mut s = DynDfs::new(&g);
        let mut rng = SplitMix64::seed_from_u64(10);
        for step in 0..100 {
            let u = rng.gen_range(0..36) as NodeId;
            let v = rng.gen_range(0..36) as NodeId;
            if u == v {
                continue;
            }
            let mut batch = UpdateBatch::new();
            if rng.gen_bool(0.5) {
                batch.insert(u, v, 1);
            } else {
                batch.delete(u, v);
            }
            let applied = batch.apply(&mut g);
            for op in applied.ops() {
                s.apply_unit(&g, op.inserted, op.src, op.dst);
            }
            is_valid_dfs_forest(&g, &s).unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }
}
