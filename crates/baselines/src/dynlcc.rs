//! `DynLCC`: streaming clustering-coefficient maintenance after Ediger,
//! Jiang, Riedy and Bader \[19\] — the paper's LCC baseline.
//!
//! The streaming approach applies a **per-edge triangle delta**: when
//! `(u, v)` is inserted (deleted), the common neighborhood
//! `N(u) ∩ N(v)` gives exactly the triangles created (destroyed), so
//! `λ_u`, `λ_v` gain (lose) its size and each common neighbor gains
//! (loses) one. [`DynLcc`] does the intersection exactly on the sorted
//! adjacency lists; [`BloomLcc`] is the paper's "massive streaming"
//! variant, which approximates membership with a Bloom filter to trade
//! accuracy for locality — the space/accuracy trade-off the original
//! paper was about (and the reason Fig. 8 shows DynLCC as the one
//! baseline *smaller* than its batch counterpart).

use incgraph_graph::{DynamicGraph, NodeId, Weight};

/// Exact streaming LCC state.
pub struct DynLcc {
    degree: Vec<u64>,
    triangles: Vec<u64>,
}

impl DynLcc {
    /// Initializes from a full triangle count over `g` (undirected).
    pub fn new(g: &DynamicGraph) -> Self {
        assert!(!g.is_directed(), "LCC is defined on undirected graphs");
        let n = g.node_count();
        let mut s = DynLcc {
            degree: vec![0; n],
            triangles: vec![0; n],
        };
        for v in 0..n as NodeId {
            s.degree[v as usize] = g.degree(v) as u64;
            let nv = g.out_neighbors(v);
            let mut twice = 0u64;
            for &(a, _) in nv {
                twice += intersect_count(nv, g.out_neighbors(a));
            }
            s.triangles[v as usize] = twice / 2;
        }
        s
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> u64 {
        self.degree[v as usize]
    }

    /// Triangle count of `v`.
    pub fn triangles(&self, v: NodeId) -> u64 {
        self.triangles[v as usize]
    }

    /// Clustering coefficient of `v`.
    pub fn coefficient(&self, v: NodeId) -> f64 {
        let d = self.degree[v as usize];
        if d < 2 {
            0.0
        } else {
            2.0 * self.triangles[v as usize] as f64 / (d as f64 * (d - 1) as f64)
        }
    }

    /// Applies one unit update; `g` must already reflect it. The common
    /// neighborhood of `u` and `v` is identical before and after the
    /// update (the edge `(u,v)` itself is never a *common* neighbor), so
    /// both directions can be computed on the post-update graph.
    pub fn apply_unit(
        &mut self,
        g: &DynamicGraph,
        inserted: bool,
        u: NodeId,
        v: NodeId,
        _w: Weight,
    ) {
        self.ensure_size(g);
        let nu = g.out_neighbors(u);
        let nv = g.out_neighbors(v);
        let mut common = Vec::new();
        intersect_into(nu, nv, &mut common);
        let t = common.len() as u64;
        if inserted {
            self.degree[u as usize] += 1;
            self.degree[v as usize] += 1;
            self.triangles[u as usize] += t;
            self.triangles[v as usize] += t;
            for w in common {
                self.triangles[w as usize] += 1;
            }
        } else {
            self.degree[u as usize] -= 1;
            self.degree[v as usize] -= 1;
            self.triangles[u as usize] -= t;
            self.triangles[v as usize] -= t;
            for w in common {
                self.triangles[w as usize] -= 1;
            }
        }
    }

    /// Resident bytes (Fig. 8).
    pub fn space_bytes(&self) -> usize {
        (self.degree.capacity() + self.triangles.capacity()) * 8
    }

    fn ensure_size(&mut self, g: &DynamicGraph) {
        if g.node_count() > self.degree.len() {
            self.degree.resize(g.node_count(), 0);
            self.triangles.resize(g.node_count(), 0);
        }
    }
}

fn intersect_count(a: &[(NodeId, Weight)], b: &[(NodeId, Weight)]) -> u64 {
    let (mut i, mut j, mut n) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

fn intersect_into(a: &[(NodeId, Weight)], b: &[(NodeId, Weight)], out: &mut Vec<NodeId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i].0);
                i += 1;
                j += 1;
            }
        }
    }
}

/// A fixed-size Bloom filter over node ids (two hash functions), as used
/// by the approximate mode of \[19\].
struct Bloom {
    bits: Vec<u64>,
    mask: u64,
}

impl Bloom {
    fn new(capacity: usize) -> Self {
        // ~8 bits per element, rounded up to a power of two.
        let nbits = (capacity.max(8) * 8).next_power_of_two();
        Bloom {
            bits: vec![0; nbits / 64],
            mask: (nbits - 1) as u64,
        }
    }

    fn hashes(&self, x: NodeId) -> (u64, u64) {
        // Two cheap multiplicative hashes (splitmix-style).
        let x = x as u64;
        let h1 = x.wrapping_mul(0x9e3779b97f4a7c15) ^ (x >> 16);
        let h2 = x.wrapping_mul(0xc2b2ae3d27d4eb4f).rotate_left(31);
        (h1 & self.mask, h2 & self.mask)
    }

    fn insert(&mut self, x: NodeId) {
        let (a, b) = self.hashes(x);
        self.bits[(a / 64) as usize] |= 1 << (a % 64);
        self.bits[(b / 64) as usize] |= 1 << (b % 64);
    }

    fn maybe_contains(&self, x: NodeId) -> bool {
        let (a, b) = self.hashes(x);
        self.bits[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
    }
}

/// Approximate streaming LCC: intersections are estimated by probing one
/// adjacency list against a Bloom filter of the other, as in the
/// "massive streaming" mode of \[19\]. Counts are upper-bound estimates
/// (false positives only).
pub struct BloomLcc {
    degree: Vec<u64>,
    triangles: Vec<i64>,
}

impl BloomLcc {
    /// Initializes with exact counts (the stream then drifts within the
    /// filter's false-positive rate, as in the original system).
    pub fn new(g: &DynamicGraph) -> Self {
        let exact = DynLcc::new(g);
        BloomLcc {
            degree: exact.degree,
            triangles: exact.triangles.iter().map(|&t| t as i64).collect(),
        }
    }

    /// Approximate triangle count of `v` (clamped at zero).
    pub fn triangles(&self, v: NodeId) -> u64 {
        self.triangles[v as usize].max(0) as u64
    }

    /// Degree of `v` (exact; degrees need no estimation).
    pub fn degree(&self, v: NodeId) -> u64 {
        self.degree[v as usize]
    }

    /// Approximate coefficient of `v`.
    pub fn coefficient(&self, v: NodeId) -> f64 {
        let d = self.degree[v as usize];
        if d < 2 {
            0.0
        } else {
            2.0 * self.triangles(v) as f64 / (d as f64 * (d - 1) as f64)
        }
    }

    /// Applies one unit update using Bloom-filter membership probes.
    pub fn apply_unit(
        &mut self,
        g: &DynamicGraph,
        inserted: bool,
        u: NodeId,
        v: NodeId,
        _w: Weight,
    ) {
        if g.node_count() > self.degree.len() {
            self.degree.resize(g.node_count(), 0);
            self.triangles.resize(g.node_count(), 0);
        }
        let nu = g.out_neighbors(u);
        let nv = g.out_neighbors(v);
        // Filter over the smaller list, probe with the larger.
        let (small, large) = if nu.len() <= nv.len() {
            (nu, nv)
        } else {
            (nv, nu)
        };
        let mut bloom = Bloom::new(small.len());
        for &(x, _) in small {
            bloom.insert(x);
        }
        let mut est = 0i64;
        let delta: i64 = if inserted { 1 } else { -1 };
        for &(x, _) in large {
            if bloom.maybe_contains(x) {
                est += 1;
                self.triangles[x as usize] += delta;
            }
        }
        self.triangles[u as usize] += delta * est;
        self.triangles[v as usize] += delta * est;
        if inserted {
            self.degree[u as usize] += 1;
            self.degree[v as usize] += 1;
        } else {
            self.degree[u as usize] -= 1;
            self.degree[v as usize] -= 1;
        }
    }

    /// Resident bytes (Fig. 8): the stream state only — no adjacency
    /// mirror, which is the "trades runtime for space" observation.
    pub fn space_bytes(&self) -> usize {
        (self.degree.capacity() + self.triangles.capacity()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incgraph_graph::UpdateBatch;

    fn reference(g: &DynamicGraph) -> Vec<(u64, u64)> {
        let s = DynLcc::new(g);
        (0..g.node_count())
            .map(|v| (s.degree[v], s.triangles[v]))
            .collect()
    }

    #[test]
    fn unit_stream_tracks_reference() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::uniform(70, 300, false, 1, 1, 66);
        let mut s = DynLcc::new(&g);
        let mut rng = SplitMix64::seed_from_u64(17);
        for step in 0..200 {
            let u = rng.gen_range(0..70) as NodeId;
            let v = rng.gen_range(0..70) as NodeId;
            let mut batch = UpdateBatch::new();
            if rng.gen_bool(0.5) {
                batch.insert(u, v, 1);
            } else {
                batch.delete(u, v);
            }
            let applied = batch.apply(&mut g);
            for op in applied.ops() {
                s.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
            }
            for (v, &(d, t)) in reference(&g).iter().enumerate() {
                assert_eq!(s.degree(v as NodeId), d, "step {step} degree {v}");
                assert_eq!(s.triangles(v as NodeId), t, "step {step} triangles {v}");
            }
        }
    }

    #[test]
    fn triangle_insert_delete_roundtrip() {
        let mut g = DynamicGraph::new(false, 3);
        g.insert_edge(0, 1, 1);
        g.insert_edge(1, 2, 1);
        let mut s = DynLcc::new(&g);
        g.insert_edge(0, 2, 1);
        s.apply_unit(&g, true, 0, 2, 1);
        assert_eq!(s.triangles(0), 1);
        assert_eq!(s.coefficient(1), 1.0);
        g.delete_edge(0, 2);
        s.apply_unit(&g, false, 0, 2, 1);
        assert_eq!(s.triangles(0), 0);
        assert_eq!(s.triangles(1), 0);
    }

    #[test]
    fn bloom_mode_overestimates_within_bound() {
        use incgraph_graph::rng::SplitMix64;
        let mut g = incgraph_graph::gen::power_law(120, 600, 2.3, false, 1, 1, 5);
        let mut approx = BloomLcc::new(&g);
        let mut exact = DynLcc::new(&g);
        let mut rng = SplitMix64::seed_from_u64(31);
        for _ in 0..150 {
            let u = rng.gen_range(0..120) as NodeId;
            let v = rng.gen_range(0..120) as NodeId;
            let mut batch = UpdateBatch::new();
            if rng.gen_bool(0.5) {
                batch.insert(u, v, 1);
            } else {
                batch.delete(u, v);
            }
            let applied = batch.apply(&mut g);
            for op in applied.ops() {
                approx.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
                exact.apply_unit(&g, op.inserted, op.src, op.dst, op.weight);
            }
        }
        // Bloom probes only produce false positives, so the per-update
        // deltas are biased upward for insertions and downward for
        // deletions; after a mixed stream the totals must stay close.
        let (mut total_err, mut total) = (0i64, 0i64);
        for v in 0..120u32 {
            assert_eq!(approx.degree(v), exact.degree(v), "degrees are exact");
            total_err += (approx.triangles[v as usize] - exact.triangles(v) as i64).abs();
            total += exact.triangles(v) as i64;
        }
        assert!(
            total_err * 10 <= total.max(50),
            "approximation drifted: err {total_err} vs total {total}"
        );
    }

    #[test]
    fn bloom_basics() {
        let mut b = Bloom::new(16);
        for x in [3u32, 99, 1000] {
            b.insert(x);
        }
        assert!(b.maybe_contains(3));
        assert!(b.maybe_contains(99));
        assert!(b.maybe_contains(1000));
        let fp = (0..10_000u32).filter(|&x| b.maybe_contains(x)).count();
        assert!(fp < 500, "false-positive rate too high: {fp}/10000");
    }
}
