//! E-commerce recommendation via graph pattern matching (the paper's Sim
//! motivation, §1): maintain the maximum simulation of a small behaviour
//! pattern over a social/interaction graph while follow/unfollow events
//! stream in — the workload where "item clicking, buying and refunding
//! trigger millions of edge insertions and deletions everyday".
//!
//! ```sh
//! cargo run --release --example social_recommendation
//! ```

use incgraph::algos::SimState;
use incgraph::graph::gen::power_law;
use incgraph::graph::{Pattern, UpdateBatch};
use incgraph::workloads::random_batch;
use std::time::Instant;

fn main() {
    // Labels: 0 = influencer, 1 = reviewer, 2 = buyer.
    // Pattern: an influencer pointing at a reviewer who interacts in a
    // feedback loop with a buyer (cyclic — the hard case for anchors).
    let pattern = Pattern::new(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 1)]);

    // A power-law interaction network (the realistic degree skew).
    let mut g = power_law(30_000, 240_000, 2.3, true, 1, 3, 42);

    let t = Instant::now();
    let (mut sim, _) = SimState::batch(&g, pattern);
    println!(
        "batch Sim_fp over |V|={}, |E|={}: {:?}, {} matching pairs",
        g.node_count(),
        g.edge_count(),
        t.elapsed(),
        sim.match_count()
    );

    // Stream event windows: 0.2% of |G| follows/unfollows each.
    let mut inc_total = std::time::Duration::ZERO;
    for window in 0..10 {
        let events = random_batch(&g, g.size() / 500, 0.5, 1, 1000 + window);
        let applied = events.apply(&mut g);
        let t = Instant::now();
        let report = sim.update(&g, &applied);
        inc_total += t.elapsed();
        println!(
            "window {window}: {} events -> {} matches (inspected {:.3}% of the match matrix)",
            applied.len(),
            sim.match_count(),
            100.0 * report.aff_fraction()
        );
    }

    let t = Instant::now();
    let (fresh, _) = SimState::batch(&g, sim.pattern().clone());
    let recompute = t.elapsed();
    assert_eq!(fresh.match_count(), sim.match_count());
    println!(
        "\n10 windows maintained in {:?}; one recompute costs {:?} — {:.1}x per window",
        inc_total,
        recompute,
        recompute.as_secs_f64() / (inc_total.as_secs_f64() / 10.0)
    );

    // A concrete recommendation query: which nodes currently play the
    // "reviewer in a feedback loop" role?
    let reviewers = fresh.relation().iter().filter(|&&(_, u)| u == 1).count();
    println!("nodes matching the reviewer role right now: {reviewers}");
    let _ = UpdateBatch::new(); // (re-exported API surface used above)
}
