//! Quickstart: deduce an incremental algorithm from a batch fixpoint run
//! and keep its result fresh under a stream of edge updates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use incgraph::algos::{CcState, SsspState};
use incgraph::graph::{DynamicGraph, UpdateBatch};

fn main() {
    // The paper's running example graph (Fig. 2(a)): 8 nodes, weighted,
    // directed; node 0 is the SSSP source.
    let mut g = DynamicGraph::new(true, 8);
    for (u, v, w) in [
        (0u32, 1u32, 6u32),
        (0, 2, 1),
        (2, 1, 4),
        (1, 4, 1),
        (1, 5, 1),
        (2, 5, 1),
        (4, 3, 1),
        (3, 1, 1),
        (4, 5, 1),
        (4, 6, 4),
        (5, 6, 1),
        (6, 7, 1),
        (2, 7, 4),
    ] {
        g.insert_edge(u, v, w);
    }

    // Batch phase: run Dijkstra-as-a-fixpoint once.
    let (mut sssp, stats) = SsspState::batch(&g, 0);
    println!("batch SSSP from node 0: {:?}", sssp.distances());
    println!(
        "  (engine: {} pops, {} value changes)",
        stats.pops, stats.changes
    );

    // The paper's ΔG (Example 4): delete the bold edge (5,6), insert the
    // dotted edge (5,3).
    let mut delta = UpdateBatch::new();
    delta.delete(5, 6).insert(5, 3, 1);
    let applied = delta.apply(&mut g);

    // Incremental phase: IncSSSP adjusts the old fixpoint via the initial
    // scope function h and resumes the unchanged step function.
    let report = sssp.update(&g, &applied);
    println!("after ΔG = {{-(5,6), +(5,3)}}: {:?}", sssp.distances());
    println!(
        "  scope |H⁰| = {}, variables inspected = {} of {} (AFF fraction {:.2}%)",
        report.scope_size,
        report.inspected_vars,
        report.total_vars,
        100.0 * report.aff_fraction()
    );

    // The same two-phase shape works for every query class; e.g. CC.
    let mut ug = DynamicGraph::new(false, 6);
    for (u, v) in [(0u32, 1u32), (1, 2), (3, 4)] {
        ug.insert_edge(u, v, 1);
    }
    let (mut cc, _) = CcState::batch(&ug);
    println!("\nbatch CC components: {:?}", cc.components());
    let mut delta = UpdateBatch::new();
    delta.insert(2, 3, 1).delete(0, 1);
    let applied = delta.apply(&mut ug);
    cc.update(&ug, &applied);
    println!("after ΔG = {{+(2,3), -(0,1)}}: {:?}", cc.components());
}
