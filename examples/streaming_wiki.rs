//! Temporal-graph maintenance (the paper's Exp-2(2) setting): replay the
//! Wiki-DE style timestamped edge history month by month, keeping
//! connected components and local clustering coefficients fresh — the
//! kind of signals anomaly-detection systems watch on evolving graphs.
//!
//! ```sh
//! cargo run --release --example streaming_wiki
//! ```

use incgraph::algos::{CcState, LccState};
use incgraph::graph::DynamicGraph;
use incgraph::workloads::Dataset;
use std::time::Instant;

fn main() {
    // The WD stand-in: 5 monthly windows, each ~1.9% of |G|, with the
    // real dataset's 81% insert / 19% delete mix.
    let temporal = Dataset::WikiDe.temporal(true, 5, 1.9, 1.0);
    println!(
        "Wiki-DE stand-in: |V|={}, |E|={}, {} monthly windows",
        temporal.initial.node_count(),
        temporal.initial.edge_count(),
        temporal.windows.len()
    );

    // CC runs on the undirected view; rebuild it alongside.
    let mut gd = temporal.initial.clone();
    let mut gu = undirected_view(&gd);

    let (mut cc, _) = CcState::batch(&gu);
    let (mut lcc, _) = LccState::batch(&gu);
    println!(
        "initial: {} components, mean clustering {:.4}\n",
        cc.component_count(),
        mean(&lcc.coefficients())
    );

    for (month, window) in temporal.windows.iter().enumerate() {
        // Mirror the directed update stream onto the undirected view.
        let mut mirror = incgraph::graph::UpdateBatch::new();
        for u in window.updates() {
            match *u {
                incgraph::graph::Update::Insert { src, dst, weight } => {
                    mirror.insert(src, dst, weight);
                }
                incgraph::graph::Update::Delete { src, dst } => {
                    mirror.delete(src, dst);
                }
            }
        }
        window.apply(&mut gd);
        let applied = mirror.apply(&mut gu);

        let t = Instant::now();
        let cc_report = cc.update(&gu, &applied);
        let lcc_report = lcc.update(&gu, &applied);
        let el = t.elapsed();
        println!(
            "month {}: {:4} updates in {:?} | components: {:4} | mean γ: {:.4} | AFF: CC {:.2}%, LCC {:.2}%",
            month + 1,
            applied.len(),
            el,
            cc.component_count(),
            mean(&lcc.coefficients()),
            100.0 * cc_report.aff_fraction(),
            100.0 * lcc_report.aff_fraction(),
        );
    }

    // Verify against recomputation on the final graph.
    let (cc_fresh, _) = CcState::batch(&gu);
    let (lcc_fresh, _) = LccState::batch(&gu);
    assert_eq!(cc_fresh.components(), cc.components());
    assert_eq!(lcc_fresh.coefficients(), lcc.coefficients());
    println!("\nverified: maintained CC and LCC equal recomputation");
}

fn undirected_view(g: &DynamicGraph) -> DynamicGraph {
    let labels = (0..g.node_count()).map(|v| g.label(v as u32)).collect();
    let mut u = DynamicGraph::with_labels(false, labels);
    for (a, b, w) in g.edges() {
        u.insert_edge(a, b, w);
    }
    u
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
