//! Network-reliability monitoring with incremental biconnectivity: track
//! the single points of failure (articulation points) and critical links
//! (bridges) of an evolving mesh network — the BC extension class layered
//! on the incremental DFS substrate.
//!
//! ```sh
//! cargo run --release --example network_reliability
//! ```

use incgraph::algos::BcState;
use incgraph::graph::gen::power_law;
use incgraph::workloads::random_batch;
use std::time::Instant;

fn main() {
    // A mesh-ish network: dense power-law undirected graph (plenty of
    // redundant links, so most failures are structurally harmless).
    let mut g = power_law(20_000, 160_000, 2.4, false, 1, 1, 11);

    let t = Instant::now();
    let (mut bc, _) = BcState::batch(&g);
    println!(
        "batch BC over |V|={}, |E|={}: {:?}",
        g.node_count(),
        g.edge_count(),
        t.elapsed()
    );
    println!(
        "initially: {} articulation points, {} bridges",
        bc.articulation_points(&g).len(),
        bc.bridges(&g).len()
    );

    // Stream link failures and repairs one event at a time — the
    // monitoring regime: audit reliability after every event.
    let mut inc_total = std::time::Duration::ZERO;
    let mut events = 0usize;
    for round in 0..10u64 {
        let churn = random_batch(&g, 40, 0.5, 1, 500 + round);
        let mut round_aff = 0.0;
        for unit in churn.as_units() {
            let applied = unit.apply(&mut g);
            if applied.is_empty() {
                continue;
            }
            let t = Instant::now();
            let report = bc.update(&g, &applied);
            inc_total += t.elapsed();
            round_aff += report.aff_fraction();
            events += 1;
        }
        let aps = bc.articulation_points(&g);
        let bridges = bc.bridges(&g);
        println!(
            "round {round}: 40 events | {:4} cut nodes, {:4} bridges | mean AFF {:.3}%",
            aps.len(),
            bridges.len(),
            100.0 * round_aff / 40.0,
        );
    }

    let t = Instant::now();
    let (fresh, _) = BcState::batch(&g);
    let recompute = t.elapsed();
    assert_eq!(fresh.articulation_points(&g), bc.articulation_points(&g));
    assert_eq!(fresh.bridges(&g), bc.bridges(&g));
    println!(
        "\n{events} events maintained in {inc_total:?} (avg {:.3}ms/event); one recompute costs {recompute:?} — {:.1}x per event",
        1e3 * inc_total.as_secs_f64() / events as f64,
        recompute.as_secs_f64() / (inc_total.as_secs_f64() / events as f64)
    );
    println!("verified: maintained BC equals recomputation");
}
