//! Road-network analysis (the paper's SSSP motivation, §1): maintain
//! shortest travel times from a depot over a road grid while road
//! closures and openings stream in, comparing the deduced `IncSSSP`
//! against recomputation from scratch.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use incgraph::algos::SsspState;
use incgraph::graph::gen::grid;
use incgraph::graph::ids::INF_DIST;
use incgraph::graph::rng::SplitMix64;
use incgraph::graph::UpdateBatch;
use std::time::Instant;

fn main() {
    // A 200×200 road grid (40k intersections), weights = travel minutes.
    let (rows, cols) = (200usize, 200usize);
    let mut g = grid(rows, cols, 30, 7);
    let depot = 0u32;

    let t = Instant::now();
    let (mut sssp, _) = SsspState::batch(&g, depot);
    let batch_time = t.elapsed();
    let reachable = sssp.distances().iter().filter(|&&d| d != INF_DIST).count();
    println!(
        "batch Dijkstra over {} intersections: {:?} ({} reachable)",
        g.node_count(),
        batch_time,
        reachable
    );

    // Stream 20 rounds of road closures/openings (0.1% of |G| each).
    let mut rng = SplitMix64::seed_from_u64(99);
    let mut inc_total = std::time::Duration::ZERO;
    let mut inspected_total = 0u64;
    for round in 0..20 {
        let mut delta = UpdateBatch::new();
        for _ in 0..g.size() / 1000 {
            let r = rng.gen_range(0..rows);
            let c = rng.gen_range(0..cols);
            let v = (r * cols + c) as u32;
            let u = if rng.gen_bool(0.5) && c + 1 < cols {
                v + 1
            } else if r + 1 < rows {
                v + cols as u32
            } else {
                continue;
            };
            if rng.gen_bool(0.5) {
                delta.delete(v, u); // closure
            } else {
                delta.insert(v, u, rng.gen_range(1u32..=30)); // (re)opening
            }
        }
        let applied = delta.apply(&mut g);
        let t = Instant::now();
        let report = sssp.update(&g, &applied);
        inc_total += t.elapsed();
        inspected_total += report.inspected_vars;
        if round % 5 == 0 {
            println!(
                "round {round:2}: |ΔG| = {:4}, inspected {:5} of {} vars ({:.3}%)",
                applied.len(),
                report.inspected_vars,
                report.total_vars,
                100.0 * report.aff_fraction()
            );
        }
    }
    println!(
        "\n20 incremental rounds: {:?} total (avg inspected {:.0} vars/round)",
        inc_total,
        inspected_total as f64 / 20.0
    );
    println!(
        "one batch recompute:   {:?} — IncSSSP amortizes {:.1}x per round",
        batch_time,
        batch_time.as_secs_f64() / (inc_total.as_secs_f64() / 20.0)
    );

    // Sanity: the maintained result equals recomputation.
    let (fresh, _) = SsspState::batch(&g, depot);
    assert_eq!(fresh.distances(), sssp.distances());
    println!("verified: maintained distances equal recomputation");
}
