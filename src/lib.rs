//! # incgraph — Incrementalizing Graph Algorithms
//!
//! A Rust implementation of *"Incrementalizing Graph Algorithms"*
//! (Fan, Tian, Xu, Yin, Yu, Zhou — SIGMOD 2021): a systematic method for
//! deducing **incremental** graph algorithms from **batch** fixpoint
//! algorithms, with correctness and *relative boundedness* guarantees.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — the dynamic graph substrate (storage, `ΔG` update
//!   batches, generators).
//! * [`core`] — the paper's contribution: the fixpoint model
//!   ([`core::FixpointSpec`], [`core::engine::Engine`]) and the
//!   incrementalization machinery ([`core::bounded_scope`] — Fig. 4;
//!   [`core::pe_reset_scope`] — Theorem 1).
//! * [`algos`] — the five proof-of-concept query classes (SSSP, CC,
//!   Sim, DFS, LCC), each as a batch algorithm plus its deduced
//!   incremental algorithm, together with two extension classes: BC
//!   (biconnectivity — the sixth class the paper names) and Reach (the
//!   `docs/EXTENDING.md` template).
//! * [`baselines`] — reimplementations of the fine-tuned dynamic
//!   competitors (RR, DynDij, HDT connectivity, IncMatch, DynDFS,
//!   DynLCC).
//! * [`workloads`] — dataset stand-ins, update and query generation.
//!
//! ## Quickstart
//!
//! ```
//! use incgraph::algos::SsspState;
//! use incgraph::graph::{DynamicGraph, UpdateBatch};
//!
//! // A small weighted directed graph.
//! let mut g = DynamicGraph::new(true, 4);
//! g.insert_edge(0, 1, 5);
//! g.insert_edge(1, 2, 5);
//! g.insert_edge(0, 3, 2);
//!
//! // Batch run (Dijkstra as a fixpoint), then an incremental update.
//! let (mut sssp, _) = SsspState::batch(&g, 0);
//! assert_eq!(sssp.distance(2), 10);
//!
//! let mut delta = UpdateBatch::new();
//! delta.insert(3, 2, 1).delete(0, 1);
//! let applied = delta.apply(&mut g);
//! sssp.update(&g, &applied); // IncSSSP: reuses the old fixpoint
//! assert_eq!(sssp.distance(2), 3);
//! assert_eq!(sssp.distance(1), u64::MAX); // unreachable now
//! ```

pub use incgraph_algos as algos;
pub use incgraph_baselines as baselines;
pub use incgraph_core as core;
pub use incgraph_graph as graph;
pub use incgraph_workloads as workloads;
